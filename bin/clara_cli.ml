(** clara — command-line front-end for the Clara reproduction.

    Subcommands:
    - [list]                      corpus inventory
    - [show NF]                   pretty-print an element and its stats
    - [analyze NF]                print insights (train, or warm-start via --model)
    - [train --save DIR]          train once and persist the model bundle
    - [serve --socket PATH]       long-running insight service (see lib/serve)
    - [router --socket PATH]      scale-out front: spawn N workers and
                                  consistent-hash requests over them (lib/router)
    - [rollout ACTION]            drive a canary rollout on a running router
                                  (start / promote / rollback / status)
    - [query --socket PATH NF]    one request against a running service
    - [quality --socket PATH]     prediction-quality telemetry of a running service
    - [flight --socket PATH]      flight-recorder snapshot (optionally dump to a file)
    - [replay DUMP --model DIR]   re-issue a flight dump and byte-diff the replies
    - [port NF]                   measure naive vs Clara-configured port
    - [sweep NF]                  print the core-count sweep
    - [profile [NF]]              NF execution profile, or a running service's
                                  continuous-profiler flamegraph
    - [experiment ID...]          run paper experiments (or 'all') *)

open Cmdliner

let workload_conv =
  let parse s =
    match Serve.Server.workload_named s with Ok w -> Ok w | Error msg -> Error (`Msg msg)
  in
  let print fmt (w : Workload.spec) = Format.fprintf fmt "%s" w.Workload.name in
  Arg.conv (parse, print)

let workload_arg =
  Arg.(value & opt workload_conv Serve.Server.mixed_spec
       & info [ "w"; "workload" ] ~docv:"WORKLOAD" ~doc:"Traffic profile: mixed, large or small flows.")

let nf_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"NF" ~doc:"Corpus element name (see 'clara list').")

(** [Corpus.find] with a usable failure mode: unknown names exit 1 after
    logging what the corpus does contain. *)
let find_nf name =
  match Nf_lang.Corpus.find name with
  | elt -> elt
  | exception Failure _ ->
    Obs.Log.error
      ~fields:
        [ ("nf", Obs.Log.Str name);
          ("valid", Obs.Log.Str (String.concat ", " (Serve.Server.corpus_names ()))) ]
      "unknown NF";
    exit 1

(* Salvaging load: corrupt optional components are dropped (with a warning
   each), so a torn write degrades the bundle instead of failing it; [None]
   only when the manifest or a required model is unreadable. *)
let salvage_bundle dir =
  match Persist.Bundle.load_salvage ~dir with
  | Ok (b, dropped) ->
    List.iter
      (fun (file, e) ->
        Obs.Log.warn
          ~fields:
            [ ("bundle", Obs.Log.Str dir);
              ("file", Obs.Log.Str file);
              ("error", Obs.Log.Str (Persist.Wire.error_to_string e)) ]
          "dropped corrupt optional component")
      dropped;
    if b.Persist.Bundle.manifest.Persist.Bundle.corpus_hash <> Persist.Bundle.corpus_hash () then
      Obs.Log.warn
        ~fields:
          [ ("bundle", Obs.Log.Str dir);
            ("bundle_corpus_hash", Obs.Log.Str b.Persist.Bundle.manifest.Persist.Bundle.corpus_hash);
            ("current_corpus_hash", Obs.Log.Str (Persist.Bundle.corpus_hash ())) ]
        "bundle was trained against a different corpus";
    Some b
  | Error e ->
    Obs.Log.error
      ~fields:
        [ ("bundle", Obs.Log.Str dir);
          ("error", Obs.Log.Str (Persist.Wire.error_to_string e)) ]
      "cannot load model bundle";
    None

let load_bundle dir = match salvage_bundle dir with Some b -> b | None -> exit 1

let train_models ~full =
  Printf.printf "Training Clara (%s mode)...\n%!" (if full then "full" else "quick");
  Clara.Pipeline.train ~quick:(not full) ~with_colocation:true ()

let iso8601_now () =
  let t = Unix.gmtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (t.Unix.tm_year + 1900) (t.Unix.tm_mon + 1)
    t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min t.Unix.tm_sec

let full_arg = Arg.(value & flag & info [ "full" ] ~doc:"Use full-size training sets.")

(* -- observability plumbing -- *)

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record timed spans and write a Chrome-trace JSON file (open in chrome://tracing).")

let metrics_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Write accumulated counters/gauges/histograms as Prometheus-style text on exit.")

let telemetry_arg =
  Arg.(value & opt (some string) None
       & info [ "telemetry" ] ~docv:"FILE"
           ~doc:"Write per-epoch/per-round training loss series (Obs.Series) as JSON on exit.")

(** Enable span recording when [--trace] was given, run [f], then flush the
    requested trace/metrics/telemetry files (also on exceptions, so a
    crashed run still leaves its telemetry behind). *)
let with_obs ?telemetry ~trace ~metrics f =
  if trace <> None then Obs.Span.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Option.iter
        (fun path ->
          Obs.Span.write_chrome path;
          Obs.Log.info
            ~fields:
              [ ("path", Obs.Log.Str path);
                ("spans", Obs.Log.Int (List.length (Obs.Span.events ()))) ]
            "wrote trace")
        trace;
      Option.iter
        (fun path ->
          Obs.Runtime.sample ();
          Obs.Metrics.write_file path;
          Obs.Log.info ~fields:[ ("path", Obs.Log.Str path) ] "wrote metrics")
        metrics;
      Option.iter
        (fun path ->
          Obs.Series.write_file path;
          Obs.Log.info
            ~fields:
              [ ("path", Obs.Log.Str path);
                ("series", Obs.Log.Int (List.length (Obs.Series.names ()))) ]
            "wrote training telemetry")
        telemetry)
    f

let model_arg =
  Arg.(value & opt (some dir) None
       & info [ "model" ] ~docv:"DIR" ~doc:"Warm-start from a saved model bundle instead of training.")

let socket_arg =
  Arg.(value & opt string "/tmp/clara.sock"
       & info [ "socket" ] ~docv:"PATH" ~doc:"Unix domain socket path.")

(* Shared by the daemon verbs (serve, router). *)
let log_file_arg =
  Arg.(value & opt (some string) None
       & info [ "log" ] ~docv:"FILE"
           ~doc:"Write structured JSONL logs to FILE ('stderr'/'-' for stderr, 'off'/'none' to \
                 silence; default: \\$CLARA_LOG, else stderr).")

let log_level_arg =
  let level_conv =
    let parse s =
      match Obs.Log.level_of_string s with
      | Some l -> Ok l
      | None -> Error (`Msg (Printf.sprintf "unknown log level %S (debug|info|warn|error)" s))
    in
    Arg.conv (parse, fun fmt l -> Format.fprintf fmt "%s" (Obs.Log.level_name l))
  in
  Arg.(value & opt (some level_conv) None
       & info [ "log-level" ] ~docv:"LEVEL"
           ~doc:"Log threshold: debug, info, warn or error (default: \\$CLARA_LOG_LEVEL, else \
                 info).")

(* --log / --log-level win over the CLARA_LOG/CLARA_LOG_LEVEL environment
   defaults already applied at startup; returns the sink name for the
   startup log line. *)
let apply_log_opts log_file log_level =
  let sink_name =
    match log_file with
    | None -> "default"
    | Some ("stderr" | "-") ->
      Obs.Log.set_sink Obs.Log.Stderr;
      "stderr"
    | Some ("off" | "none") ->
      Obs.Log.set_sink Obs.Log.Off;
      "off"
    | Some path ->
      Obs.Log.set_sink (Obs.Log.File path);
      path
  in
  Option.iter Obs.Log.set_level log_level;
  sink_name

(* -- list -- *)

let list_cmd =
  let run () =
    Util.Table.print ~align:Util.Table.Left
      ~header:[ "name"; "LoC"; "stateful"; "structures" ]
      (List.map
         (fun e ->
           [ e.Nf_lang.Ast.name;
             string_of_int (Nf_lang.Pp.loc e);
             (if Nf_lang.Ast.is_stateful e then "yes" else "no");
             string_of_int (List.length e.Nf_lang.Ast.state) ])
         (Nf_lang.Corpus.all ()))
  in
  Cmd.v (Cmd.info "list" ~doc:"List the NF corpus") Term.(const run $ const ())

(* -- show -- *)

let show_cmd =
  let run name =
    let elt = find_nf name in
    print_endline (Nf_lang.Pp.to_string elt);
    let v = Clara.Vocab.create () in
    let prep = Clara.Prepare.prepare v elt in
    Printf.printf
      "\n; %d LoC, %d IR instructions (%d compute, %d stateful memory), %d API call sites, %d blocks\n"
      prep.Clara.Prepare.loc
      (Nf_ir.Ir.count_total prep.Clara.Prepare.ir)
      (Nf_ir.Ir.count_compute prep.Clara.Prepare.ir)
      (Nf_ir.Ir.count_stateful_mem prep.Clara.Prepare.ir)
      (Nf_ir.Ir.count_api prep.Clara.Prepare.ir)
      (List.length prep.Clara.Prepare.blocks)
  in
  Cmd.v (Cmd.info "show" ~doc:"Pretty-print an element and its IR statistics")
    Term.(const run $ nf_arg)

(* -- train -- *)

let train_cmd =
  let run save full trace metrics telemetry =
    with_obs ?telemetry ~trace ~metrics @@ fun () ->
    let models = train_models ~full in
    match save with
    | None -> print_endline "Training done (nothing persisted; pass --save DIR to keep it)."
    | Some dir ->
      let manifest =
        { Persist.Bundle.seed = 501;
          epochs = (if full then 10 else 4);
          corpus_hash = Persist.Bundle.corpus_hash ();
          built_at = iso8601_now () }
      in
      Persist.Bundle.save ~dir manifest models;
      Printf.printf "Saved model bundle to %s\n" dir
  in
  let save =
    Arg.(value & opt (some string) None
         & info [ "save" ] ~docv:"DIR" ~doc:"Persist the trained bundle to this directory.")
  in
  Cmd.v (Cmd.info "train" ~doc:"Train Clara's models and optionally persist them")
    Term.(const run $ save $ full_arg $ trace_arg $ metrics_arg $ telemetry_arg)

(* -- analyze -- *)

let analyze_cmd =
  let run name spec full model trace metrics =
    with_obs ~trace ~metrics @@ fun () ->
    let elt = find_nf name in
    let models =
      match model with
      | Some dir ->
        let b = load_bundle dir in
        Printf.printf "Loaded model bundle from %s (built %s)\n%!" dir
          b.Persist.Bundle.manifest.Persist.Bundle.built_at;
        b.Persist.Bundle.models
      | None -> train_models ~full
    in
    print_endline (Clara.Pipeline.report models elt spec);
    Printf.printf "\nPrediction quality vs the NIC compiler: WMAPE %.1f%%, memory accuracy %.1f%%\n"
      (100.0 *. Clara.Predictor.wmape_on_element models.Clara.Pipeline.predictor elt)
      (100.0 *. Clara.Predictor.memory_accuracy elt)
  in
  Cmd.v (Cmd.info "analyze" ~doc:"Generate offloading insights for an unported NF")
    Term.(const run $ nf_arg $ workload_arg $ full_arg $ model_arg $ trace_arg $ metrics_arg)

(* -- serve -- *)

let serve_cmd =
  let run model socket full cache_capacity shards http_port trace_requests slow_ms deadline_ms
      max_pending max_clients shadow_rate flight_capacity flight_dir profile_hz log_file
      log_level =
    if trace_requests then Obs.Span.set_enabled true;
    let log_sink_name = apply_log_opts log_file log_level in
    let models, bundle_version =
      match model with
      | Some dir -> (
        (* A long-running service prefers a cold start over refusing to
           start: an unreadable bundle (torn write, version skew) falls
           back to training. *)
        match salvage_bundle dir with
        | Some b ->
          let version = Persist.Bundle.version b.Persist.Bundle.manifest in
          Obs.Log.info
            ~fields:
              [ ("bundle", Obs.Log.Str dir);
                ("version", Obs.Log.Str version);
                ("built_at", Obs.Log.Str b.Persist.Bundle.manifest.Persist.Bundle.built_at) ]
            "warm-started from bundle";
          (b.Persist.Bundle.models, version)
        | None ->
          Obs.Log.warn
            ~fields:[ ("bundle", Obs.Log.Str dir) ]
            "bundle unreadable; cold-starting (training)";
          (train_models ~full, "trained"))
      | None -> (train_models ~full, "trained")
    in
    let slow_threshold_s = Option.map (fun ms -> ms /. 1000.0) slow_ms in
    let server =
      Serve.Server.create ~cache_capacity ~shards ?slow_threshold_s ?deadline_ms ~max_pending
        ~max_clients ?shadow_rate ?flight_capacity ?flight_dir ~version:bundle_version models
    in
    (* --profile HZ starts the continuous profiler; CLARA_PROF_HZ alone
       also turns it on (the env value supplies the rate). *)
    (match profile_hz with
    | Some hz -> Obs.Prof.start ~hz ()
    | None -> if Sys.getenv_opt "CLARA_PROF_HZ" <> None then Obs.Prof.start ());
    let started_s = Unix.gettimeofday () in
    (* The HTTP exporter runs on its own domain so a scrape never queues
       behind the socket select loop; the Runtime sampler keeps GC gauges
       fresh between scrapes. *)
    let http =
      Option.map
        (fun port ->
          let h =
            Serve.Http.create ~port
              ~quality:(fun () -> Serve.Server.quality_json server)
              ~health:(fun () ->
                Printf.sprintf
                  "{\"ok\":true,\"uptime_s\":%.1f,\"bundle\":\"%s\",\"shards\":%d,\"pid\":%d,\"draining\":%b}\n"
                  (Unix.gettimeofday () -. started_s)
                  bundle_version
                  (Serve.Server.shard_count server)
                  (Unix.getpid ())
                  (Serve.Server.draining server))
              ~flight:(fun () -> Serve.Server.flight_json server)
              ()
          in
          Obs.Runtime.start ();
          (h, Domain.spawn (fun () -> Serve.Http.run h)))
        http_port
    in
    Obs.Log.info
      ~fields:
        ([ ("socket", Obs.Log.Str socket);
           ("jobs", Obs.Log.Int (Util.Pool.size ()));
           ("cache_capacity", Obs.Log.Int cache_capacity);
           ("cache_shards", Obs.Log.Int shards);
           ("shadow_rate", Obs.Log.Num (Serve.Quality.rate (Serve.Server.quality server)));
           ("log_sink", Obs.Log.Str log_sink_name);
           ("log_level", Obs.Log.Str (Obs.Log.level_name (Obs.Log.level ())));
           ("tracing", Obs.Log.Bool (Obs.Span.enabled ()));
           ("flight_capacity",
            Obs.Log.Int (Obs.Flight.capacity (Serve.Server.flight server)));
           ("profiling", Obs.Log.Bool (Obs.Prof.enabled ())) ]
        @ match http with
          | Some (h, _) -> [ ("http_port", Obs.Log.Int (Serve.Http.port h)) ]
          | None -> [])
      "clara serve starting";
    Serve.Server.run server ~socket_path:socket;
    Obs.Prof.stop ();
    Option.iter
      (fun (h, d) ->
        Serve.Http.stop h;
        Domain.join d;
        Obs.Runtime.stop ())
      http;
    Obs.Log.info
      ~fields:
        [ ("served", Obs.Log.Int (Serve.Server.served server));
          ("cache_hits", Obs.Log.Int (Serve.Server.cache_hits server));
          ("cache_misses", Obs.Log.Int (Serve.Server.cache_misses server)) ]
      "clara serve stopped"
  in
  let cache_capacity =
    Arg.(value & opt int 64
         & info [ "cache" ] ~docv:"N"
             ~doc:"Flow-cache capacity (total entries across shards; 0 disables caching).")
  in
  let shards =
    Arg.(value & opt int 8
         & info [ "shards" ] ~docv:"N"
             ~doc:"Flow-cache shard count (one lock and one serving lane per shard).")
  in
  let http_port =
    Arg.(value & opt (some int) None
         & info [ "http" ] ~docv:"PORT"
             ~doc:"Also serve GET /metrics, /healthz and /trace.json over HTTP on 127.0.0.1:PORT \
                   (0 picks an ephemeral port).")
  in
  let trace_requests =
    Arg.(value & flag
         & info [ "trace-requests" ]
             ~doc:"Record spans for every request so the 'trace' command (and /trace.json) can \
                   return per-request span subtrees.")
  in
  let slow_ms =
    Arg.(value & opt (some float) None
         & info [ "slow-ms" ] ~docv:"MS"
             ~doc:"Log requests slower than this threshold (default: \\$CLARA_SLOW_MS, else 1000).")
  in
  let deadline_ms =
    Arg.(value & opt (some float) None
         & info [ "deadline-ms" ] ~docv:"MS"
             ~doc:"Default per-request time budget; overrun requests get a deadline_exceeded \
                   reply.  A request's own \"deadline_ms\" field wins (default: \
                   \\$CLARA_DEADLINE_MS, else unlimited).")
  in
  let max_pending =
    Arg.(value & opt int 256
         & info [ "max-pending" ] ~docv:"N"
             ~doc:"Request lines admitted per batch; the rest are shed with an overloaded reply.")
  in
  let max_clients =
    Arg.(value & opt int 64
         & info [ "max-clients" ] ~docv:"N"
             ~doc:"Concurrent connections held; extra connections get one overloaded reply and \
                   are closed.")
  in
  let shadow_rate =
    Arg.(value & opt (some float) None
         & info [ "shadow-rate" ] ~docv:"R"
             ~doc:"Shadow-evaluate this fraction of analyze answers (0..1) against the cheap \
                   simulator ground truth, feeding the 'quality' telemetry (default: \
                   \\$CLARA_SHADOW_RATE, else 0 = off).")
  in
  let flight_capacity =
    Arg.(value & opt (some int) None
         & info [ "flight" ] ~docv:"N"
             ~doc:"Flight-recorder slots per shard (default: \\$CLARA_FLIGHT, else 64; 0 \
                   disables recording).")
  in
  let flight_dir =
    Arg.(value & opt (some string) None
         & info [ "flight-dir" ] ~docv:"DIR"
             ~doc:"Write triggered flight dumps (slow requests, deadline overruns, faults, \
                   exceptions) into DIR as JSONL; without it triggers only count.  SIGQUIT \
                   dumps always write (temp dir fallback).  Default: \\$CLARA_FLIGHT_DIR.")
  in
  let profile_hz =
    Arg.(value & opt (some float) None
         & info [ "profile" ] ~docv:"HZ"
             ~doc:"Start the sampling continuous profiler at HZ samples/s (see 'clara profile' \
                   and GET /profile.folded).  Default: off, or \\$CLARA_PROF_HZ.")
  in
  Cmd.v (Cmd.info "serve" ~doc:"Run the long-lived insight service on a Unix socket")
    Term.(const run $ model_arg $ socket_arg $ full_arg $ cache_capacity $ shards $ http_port
          $ trace_requests $ slow_ms $ deadline_ms $ max_pending $ max_clients $ shadow_rate
          $ flight_capacity $ flight_dir $ profile_hz $ log_file_arg $ log_level_arg)

(* -- query -- *)

let query_cmd =
  let run socket name wname deadline_ms retries timeout_s =
    (* The retrying client owns the failure modes: connect errors,
       timeouts, disconnects and overloaded replies are re-attempted with
       jittered backoff before we give up. *)
    let client = Serve.Client.create ~timeout_s ~retries ~socket_path:socket () in
    let fields =
      Serve.Jsonl.
        [ ("cmd", Str "analyze"); ("nf", Str name); ("workload", Str wname) ]
      @ match deadline_ms with Some ms -> [ ("deadline_ms", Serve.Jsonl.Num ms) ] | None -> []
    in
    let outcome = Serve.Client.request client fields in
    Serve.Client.close client;
    match outcome with
    | Error err ->
      Obs.Log.error
        ~fields:
          [ ("socket", Obs.Log.Str socket);
            ("error", Obs.Log.Str (Serve.Client.error_to_string err));
            ("attempts", Obs.Log.Int (Serve.Client.attempts client)) ]
        "query failed (is 'clara serve' running?)";
      exit 1
    | Ok j -> (
      match Serve.Jsonl.member "ok" j with
      | Some (Serve.Jsonl.Bool true) ->
        (match Serve.Jsonl.str_member "report" j with
        | Some report -> print_string report
        | None -> print_endline (Serve.Jsonl.to_string j));
        (match Serve.Jsonl.member "cached" j with
        | Some (Serve.Jsonl.Bool c) ->
          let via =
            match Serve.Jsonl.str_member "path" j with
            | Some p -> Printf.sprintf " via the %s path" p
            | None -> ""
          in
          Printf.printf "\n; served %s%s\n"
            (if c then "from cache" else "freshly analyzed")
            via
        | _ -> ())
      | _ ->
        let msg =
          Option.value (Serve.Jsonl.str_member "error" j)
            ~default:(Serve.Jsonl.to_string j)
        in
        let valid =
          match Serve.Jsonl.member "valid" j with
          | Some (Serve.Jsonl.Arr names) ->
            [ ("valid",
               Obs.Log.Str
                 (String.concat ", "
                    (List.filter_map
                       (function Serve.Jsonl.Str s -> Some s | _ -> None)
                       names))) ]
          | _ -> []
        in
        Obs.Log.error ~fields:(("error", Obs.Log.Str msg) :: valid) "server error";
        exit 1)
  in
  let wname =
    Arg.(value & opt string "mixed"
         & info [ "w"; "workload" ] ~docv:"WORKLOAD" ~doc:"Traffic profile: mixed, large or small.")
  in
  let deadline_ms =
    Arg.(value & opt (some float) None
         & info [ "deadline-ms" ] ~docv:"MS"
             ~doc:"Per-request time budget; the server answers deadline_exceeded when it runs out.")
  in
  let retries =
    Arg.(value & opt int 4
         & info [ "retries" ] ~docv:"N"
             ~doc:"Retry budget for overloaded replies and transient I/O errors (jittered \
                   exponential backoff).")
  in
  let timeout_s =
    Arg.(value & opt float 10.0
         & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Per-attempt round-trip timeout.")
  in
  Cmd.v (Cmd.info "query" ~doc:"Query a running insight service for one NF")
    Term.(const run $ socket_arg $ nf_arg $ wname $ deadline_ms $ retries $ timeout_s)

(* -- router -- *)

let router_cmd =
  let run model socket full workers vnodes tenant_quota health_period_s forward_timeout_s
      max_clients http_port worker_cache worker_shards worker_max_pending worker_max_clients
      log_file log_level =
    let log_sink_name = apply_log_opts log_file log_level in
    (* Workers load their models from a bundle directory; without --model,
       train once here and persist a fleet bundle for them. *)
    let bundle_dir =
      match model with
      | Some dir -> dir
      | None ->
        let dir =
          Filename.concat (Filename.get_temp_dir_name ())
            (Printf.sprintf "clara-router-bundle-%d" (Unix.getpid ()))
        in
        let models = train_models ~full in
        let manifest =
          { Persist.Bundle.seed = 501;
            epochs = (if full then 10 else 4);
            corpus_hash = Persist.Bundle.corpus_hash ();
            built_at = iso8601_now () }
        in
        Persist.Bundle.save ~dir manifest models;
        Obs.Log.info ~fields:[ ("bundle", Obs.Log.Str dir) ] "trained and saved fleet bundle";
        dir
    in
    match Persist.Bundle.peek_version ~dir:bundle_dir with
    | Error e ->
      Obs.Log.error
        ~fields:
          [ ("bundle", Obs.Log.Str bundle_dir);
            ("error", Obs.Log.Str (Persist.Wire.error_to_string e)) ]
        "cannot read fleet bundle";
      exit 1
    | Ok version ->
      let spawned =
        List.init workers (fun k ->
            let name = Printf.sprintf "w%d" k in
            Router.Spawn.spawn ~quiet:false ~cache_capacity:worker_cache ~shards:worker_shards
              ~max_pending:worker_max_pending ~max_clients:worker_max_clients ~name
              ~socket_path:(Printf.sprintf "%s.%s" socket name) ~bundle:bundle_dir ())
      in
      let reap_all () =
        List.iter Router.Spawn.terminate spawned;
        List.iter Router.Spawn.wait spawned
      in
      if not (List.for_all (fun sp -> Router.Spawn.wait_ready sp) spawned) then begin
        Obs.Log.error ~fields:[ ("workers", Obs.Log.Int workers) ] "a worker never came up";
        List.iter Router.Spawn.kill spawned;
        List.iter Router.Spawn.wait spawned;
        exit 1
      end;
      let front =
        Router.Front.create ~vnodes ~tenant_quota ~forward_timeout_s ~health_period_s
          ~max_clients ~active_bundle:bundle_dir
          ~workers:
            (List.map (fun sp -> (sp.Router.Spawn.sp_name, sp.Router.Spawn.sp_socket)) spawned)
          ()
      in
      (* /healthz serves the aggregated fan-in document the router
         rebuilds after every round and probe sweep. *)
      let http =
        Option.map
          (fun port ->
            let h =
              Serve.Http.create ~port
                ~health:(fun () -> Router.Front.healthz_cached front ^ "\n")
                ()
            in
            Obs.Runtime.start ();
            (h, Domain.spawn (fun () -> Serve.Http.run h)))
          http_port
      in
      Obs.Log.info
        ~fields:
          ([ ("socket", Obs.Log.Str socket);
             ("workers", Obs.Log.Int workers);
             ("bundle", Obs.Log.Str bundle_dir);
             ("version", Obs.Log.Str version);
             ("tenant_quota", Obs.Log.Int tenant_quota);
             ("log_sink", Obs.Log.Str log_sink_name) ]
          @ match http with
            | Some (h, _) -> [ ("http_port", Obs.Log.Int (Serve.Http.port h)) ]
            | None -> [])
        "clara router starting";
      Router.Front.run front ~socket_path:socket;
      Option.iter
        (fun (h, d) ->
          Serve.Http.stop h;
          Domain.join d;
          Obs.Runtime.stop ())
        http;
      reap_all ();
      Obs.Log.info
        ~fields:
          [ ("served", Obs.Log.Int (Router.Front.served front));
            ("forwarded", Obs.Log.Int (Router.Front.forwarded front));
            ("unavailable", Obs.Log.Int (Router.Front.unavailable front));
            ("failovers", Obs.Log.Int (Router.Front.failovers front)) ]
        "clara router stopped"
  in
  let workers =
    Arg.(value & opt int 3
         & info [ "workers" ] ~docv:"N" ~doc:"Worker processes to spawn (each is one server).")
  in
  let vnodes =
    Arg.(value & opt int 64
         & info [ "vnodes" ] ~docv:"N" ~doc:"Virtual nodes per worker on the consistent-hash ring.")
  in
  let tenant_quota =
    Arg.(value & opt int 0
         & info [ "tenant-quota" ] ~docv:"N"
             ~doc:"Request lines admitted per tenant per round; over-quota lines are shed with \
                   a typed overloaded reply (0 = unlimited).")
  in
  let health_period_s =
    Arg.(value & opt float 0.5
         & info [ "health-period" ] ~docv:"SECONDS"
             ~doc:"Seconds between worker health sweeps (version/draining fan-in, failback).")
  in
  let forward_timeout_s =
    Arg.(value & opt float 5.0
         & info [ "forward-timeout" ] ~docv:"SECONDS"
             ~doc:"Per-round budget for a worker's replies; overruns mark it down.")
  in
  let max_clients =
    Arg.(value & opt int 64
         & info [ "max-clients" ] ~docv:"N"
             ~doc:"Concurrent router connections held; extra connections get one overloaded \
                   reply and are closed.")
  in
  let http_port =
    Arg.(value & opt (some int) None
         & info [ "http" ] ~docv:"PORT"
             ~doc:"Also serve the aggregated GET /healthz (and /metrics) over HTTP on \
                   127.0.0.1:PORT (0 picks an ephemeral port).")
  in
  let worker_cache =
    Arg.(value & opt int 64
         & info [ "worker-cache" ] ~docv:"N" ~doc:"Each worker's flow-cache capacity.")
  in
  let worker_shards =
    Arg.(value & opt int 8
         & info [ "worker-shards" ] ~docv:"N" ~doc:"Each worker's flow-cache shard count.")
  in
  let worker_max_pending =
    Arg.(value & opt int 256
         & info [ "worker-max-pending" ] ~docv:"N"
             ~doc:"Each worker's per-batch admission bound.")
  in
  let worker_max_clients =
    Arg.(value & opt int 64
         & info [ "worker-max-clients" ] ~docv:"N"
             ~doc:"Each worker's connection bound (the router holds one).")
  in
  Cmd.v
    (Cmd.info "router"
       ~doc:"Run the scale-out front: spawn worker processes and consistent-hash requests over \
             them")
    Term.(const run $ model_arg $ socket_arg $ full_arg $ workers $ vnodes $ tenant_quota
          $ health_period_s $ forward_timeout_s $ max_clients $ http_port $ worker_cache
          $ worker_shards $ worker_max_pending $ worker_max_clients $ log_file_arg
          $ log_level_arg)

(* -- rollout -- *)

let rollout_cmd =
  let run socket action bundle fraction seed retries timeout_s =
    let client = Serve.Client.create ~timeout_s ~retries ~socket_path:socket () in
    let fields =
      match action with
      | "start" -> (
        match bundle with
        | None ->
          Obs.Log.error "rollout start needs --bundle DIR";
          exit 1
        | Some dir ->
          Serve.Jsonl.
            [ ("cmd", Str "rollout"); ("bundle", Str dir); ("fraction", Num fraction) ]
          @ (match seed with
            | Some s -> [ ("seed", Serve.Jsonl.Num (float_of_int s)) ]
            | None -> []))
      | "promote" -> [ ("cmd", Serve.Jsonl.Str "promote") ]
      | "rollback" -> [ ("cmd", Serve.Jsonl.Str "rollback") ]
      | "status" -> [ ("cmd", Serve.Jsonl.Str "health") ]
      | other ->
        Obs.Log.error ~fields:[ ("action", Obs.Log.Str other) ]
          "unknown action (start|promote|rollback|status)";
        exit 1
    in
    let outcome = Serve.Client.request client fields in
    Serve.Client.close client;
    match outcome with
    | Error err ->
      Obs.Log.error
        ~fields:
          [ ("socket", Obs.Log.Str socket);
            ("error", Obs.Log.Str (Serve.Client.error_to_string err)) ]
        "rollout failed (is 'clara router' running?)";
      exit 1
    | Ok j -> (
      print_endline (Serve.Jsonl.to_string j);
      match Serve.Jsonl.member "ok" j with
      | Some (Serve.Jsonl.Bool true) -> ()
      | _ -> exit 1)
  in
  let action =
    Arg.(value & pos 0 string "status"
         & info [] ~docv:"ACTION"
             ~doc:"start (canary --bundle at --fraction), promote, rollback, or status.")
  in
  let bundle =
    Arg.(value & opt (some dir) None
         & info [ "bundle" ] ~docv:"DIR" ~doc:"Model-bundle directory to roll out.")
  in
  let fraction =
    Arg.(value & opt float 0.1
         & info [ "fraction" ] ~docv:"F" ~doc:"Keyspace fraction steered at the canaries (0..1].")
  in
  let seed =
    Arg.(value & opt (some int) None
         & info [ "seed" ] ~docv:"N" ~doc:"Canary-draw seed (default: the router's).")
  in
  let retries =
    Arg.(value & opt int 4
         & info [ "retries" ] ~docv:"N" ~doc:"Retry budget for transient failures.")
  in
  let timeout_s =
    Arg.(value & opt float 30.0
         & info [ "timeout" ] ~docv:"SECONDS"
             ~doc:"Per-attempt timeout (reloads recompile serving lanes; allow headroom).")
  in
  Cmd.v
    (Cmd.info "rollout"
       ~doc:"Drive a zero-downtime canary rollout against a running router")
    Term.(const run $ socket_arg $ action $ bundle $ fraction $ seed $ retries $ timeout_s)

(* -- quality -- *)

let quality_cmd =
  let run socket retries timeout_s =
    let client = Serve.Client.create ~timeout_s ~retries ~socket_path:socket () in
    let outcome = Serve.Client.request client [ ("cmd", Serve.Jsonl.Str "quality") ] in
    Serve.Client.close client;
    match outcome with
    | Error err ->
      Obs.Log.error
        ~fields:
          [ ("socket", Obs.Log.Str socket);
            ("error", Obs.Log.Str (Serve.Client.error_to_string err));
            ("attempts", Obs.Log.Int (Serve.Client.attempts client)) ]
        "quality query failed (is 'clara serve' running?)";
      exit 1
    | Ok j -> (
      match Serve.Jsonl.str_member "quality" j with
      | Some q -> print_endline q
      | None ->
        Obs.Log.error
          ~fields:[ ("reply", Obs.Log.Str (Serve.Jsonl.to_string j)) ]
          "server did not return quality telemetry";
        exit 1)
  in
  let retries =
    Arg.(value & opt int 4
         & info [ "retries" ] ~docv:"N"
             ~doc:"Retry budget for overloaded replies and transient I/O errors.")
  in
  let timeout_s =
    Arg.(value & opt float 10.0
         & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Per-attempt round-trip timeout.")
  in
  Cmd.v
    (Cmd.info "quality"
       ~doc:"Fetch prediction-quality telemetry (error sketches, drift, SLO burn rates) from a \
             running service")
    Term.(const run $ socket_arg $ retries $ timeout_s)

(* -- flight -- *)

let flight_cmd =
  let run socket dump retries timeout_s =
    let client = Serve.Client.create ~timeout_s ~retries ~socket_path:socket () in
    let fields =
      ("cmd", Serve.Jsonl.Str "flight")
      :: (match dump with Some path -> [ ("dump", Serve.Jsonl.Str path) ] | None -> [])
    in
    let outcome = Serve.Client.request client fields in
    Serve.Client.close client;
    match outcome with
    | Error err ->
      Obs.Log.error
        ~fields:
          [ ("socket", Obs.Log.Str socket);
            ("error", Obs.Log.Str (Serve.Client.error_to_string err));
            ("attempts", Obs.Log.Int (Serve.Client.attempts client)) ]
        "flight query failed (is 'clara serve' running?)";
      exit 1
    | Ok j -> (
      match Serve.Jsonl.str_member "flight" j with
      | Some doc -> (
        print_endline doc;
        match
          (Serve.Jsonl.str_member "dumped" j, Serve.Jsonl.str_member "dump_error" j)
        with
        | Some path, _ ->
          Obs.Log.info ~fields:[ ("path", Obs.Log.Str path) ] "server wrote flight dump"
        | None, Some msg ->
          Obs.Log.error ~fields:[ ("error", Obs.Log.Str msg) ] "server could not write dump";
          exit 1
        | None, None -> ())
      | None ->
        Obs.Log.error
          ~fields:[ ("reply", Obs.Log.Str (Serve.Jsonl.to_string j)) ]
          "server did not return a flight snapshot";
        exit 1)
  in
  let dump =
    Arg.(value & opt (some string) None
         & info [ "dump" ] ~docv:"PATH"
             ~doc:"Also have the server write its rings as a JSONL dump to PATH (server-side \
                   path; feed it to 'clara replay').")
  in
  let retries =
    Arg.(value & opt int 4
         & info [ "retries" ] ~docv:"N"
             ~doc:"Retry budget for overloaded replies and transient I/O errors.")
  in
  let timeout_s =
    Arg.(value & opt float 10.0
         & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Per-attempt round-trip timeout.")
  in
  Cmd.v
    (Cmd.info "flight"
       ~doc:"Fetch a running service's flight-recorder snapshot (and optionally dump it to a \
             file for 'clara replay')")
    Term.(const run $ socket_arg $ dump $ retries $ timeout_s)

(* -- replay -- *)

let replay_cmd =
  let run dump model shards cache json =
    let header, records =
      match Serve.Replay.load dump with
      | Ok hr -> hr
      | Error msg ->
        Obs.Log.error
          ~fields:[ ("dump", Obs.Log.Str dump); ("error", Obs.Log.Str msg) ]
          "cannot load flight dump";
        exit 1
    in
    let b = load_bundle model in
    let server =
      Serve.Replay.server_for ~shards ~cache_capacity:cache b.Persist.Bundle.models
    in
    let r = Serve.Replay.replay ~server records in
    if json then print_endline (Serve.Replay.to_json_string r)
    else begin
      Printf.printf
        "replayed %s (trigger %s, pid %d): %d records, %d compared, %d matched, %d diverged\n"
        dump header.Serve.Replay.h_trigger header.Serve.Replay.h_pid r.Serve.Replay.total
        r.Serve.Replay.compared r.Serve.Replay.matched
        (List.length r.Serve.Replay.diverged);
      if r.Serve.Replay.skipped_env + r.Serve.Replay.skipped_volatile
         + r.Serve.Replay.skipped_truncated > 0
      then
        Printf.printf "skipped: %d environmental, %d volatile-command, %d truncated\n"
          r.Serve.Replay.skipped_env r.Serve.Replay.skipped_volatile
          r.Serve.Replay.skipped_truncated;
      List.iter
        (fun (d : Serve.Replay.divergence) ->
          Printf.printf "DIVERGED seq %d\n  request:  %s\n  expected: %s\n  got:      %s\n"
            d.Serve.Replay.d_seq d.Serve.Replay.d_request d.Serve.Replay.d_expected
            d.Serve.Replay.d_got)
        r.Serve.Replay.diverged
    end;
    if r.Serve.Replay.diverged <> [] then exit 1
  in
  let dump =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"DUMP" ~doc:"A flight dump (JSONL) written by the server or 'clara flight --dump'.")
  in
  let model =
    Arg.(required & opt (some dir) None
         & info [ "model" ] ~docv:"DIR" ~doc:"Model bundle to replay against (see 'clara train --save').")
  in
  let shards =
    Arg.(value & opt int 8 & info [ "shards" ] ~docv:"N" ~doc:"Replay server's flow-cache shard count.")
  in
  let cache =
    Arg.(value & opt int 64 & info [ "cache" ] ~docv:"N" ~doc:"Replay server's flow-cache capacity.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the replay result as one JSON document.")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Deterministically re-issue a flight dump against a bundle and byte-diff the \
             replies (modulo the volatile id/trace/cached/path fields); exits 1 on divergence")
    Term.(const run $ dump $ model $ shards $ cache $ json)

(* -- port -- *)

let port_cmd =
  let run name spec =
    let elt = find_nf name in
    let naive = Nicsim.Nic.port elt spec in
    let placement, placed = Clara.Placement.apply elt spec in
    let packs, _ = Clara.Coalesce.apply elt spec in
    let config =
      { Nicsim.Nic.accel_apis = []; placement = Some placement; packs }
    in
    let clara = Nicsim.Nic.port ~config elt spec in
    let show label p =
      let peak = Nicsim.Nic.peak p in
      Printf.printf "%-12s peak %.2f Mpps at %d cores, latency %.2f us\n" label
        peak.Nicsim.Multicore.throughput_mpps peak.Nicsim.Multicore.cores
        peak.Nicsim.Multicore.latency_us
    in
    show "naive:" naive;
    ignore placed;
    show "clara:" clara;
    List.iter
      (fun (s, l) -> Printf.printf "  place %s -> %s\n" s (Nicsim.Mem.level_name l))
      placement;
    List.iter (fun p -> Printf.printf "  pack {%s}\n" (String.concat ", " p)) packs
  in
  Cmd.v (Cmd.info "port" ~doc:"Measure naive vs Clara-configured ports on the simulated NIC")
    Term.(const run $ nf_arg $ workload_arg)

(* -- sweep -- *)

let sweep_cmd =
  let run name spec =
    let ported = Nicsim.Nic.port (find_nf name) spec in
    Util.Table.print ~header:[ "cores"; "Th (Mpps)"; "Lat (us)"; "Th/Lat" ]
      (List.filter_map
         (fun (p : Nicsim.Multicore.point) ->
           if p.Nicsim.Multicore.cores mod 4 = 0 || p.Nicsim.Multicore.cores = 1 then
             Some
               [ string_of_int p.Nicsim.Multicore.cores;
                 Printf.sprintf "%.2f" p.Nicsim.Multicore.throughput_mpps;
                 Printf.sprintf "%.2f" p.Nicsim.Multicore.latency_us;
                 Printf.sprintf "%.1f"
                   (p.Nicsim.Multicore.throughput_mpps /. max 1e-9 p.Nicsim.Multicore.latency_us) ]
           else None)
         (Nicsim.Nic.sweep ported));
    Printf.printf "knee (max Th/Lat): %d cores\n" (Nicsim.Nic.optimal_cores ported)
  in
  Cmd.v (Cmd.info "sweep" ~doc:"Core-count sweep for an NF under a workload")
    Term.(const run $ nf_arg $ workload_arg)

(* -- profile -- *)

let profile_cmd =
  let run name spec socket json =
    match name with
    | Some name ->
      (* NF-interpreter profile: run the element over a workload. *)
      let elt = find_nf name in
      let interp = Nf_lang.Interp.create ~mode:Nf_lang.State.Nic elt in
      let profile = Nf_lang.Interp.run interp (Workload.generate spec) in
      print_string (Nf_lang.Profile_report.render elt profile)
    | None -> (
      (* No NF named: fetch the continuous profiler of a running service
         and print the collapsed flamegraph text (or the JSON document). *)
      let client = Serve.Client.create ~timeout_s:10.0 ~retries:4 ~socket_path:socket () in
      let outcome = Serve.Client.request client [ ("cmd", Serve.Jsonl.Str "profile") ] in
      Serve.Client.close client;
      match outcome with
      | Error err ->
        Obs.Log.error
          ~fields:
            [ ("socket", Obs.Log.Str socket);
              ("error", Obs.Log.Str (Serve.Client.error_to_string err)) ]
          "profile query failed (name an NF, or start 'clara serve --profile HZ')";
        exit 1
      | Ok j -> (
        let key = if json then "profile" else "folded" in
        match Serve.Jsonl.str_member key j with
        | Some doc -> print_string doc
        | None ->
          Obs.Log.error
            ~fields:[ ("reply", Obs.Log.Str (Serve.Jsonl.to_string j)) ]
            "server did not return profiler state";
          exit 1))
  in
  let nf_opt =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"NF"
             ~doc:"Corpus element to profile (see 'clara list').  Without it, fetch the \
                   continuous profiler of a running service instead.")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"With no NF: print the profiler's JSON document instead of collapsed \
                   flamegraph text.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Profile an NF over a workload, or fetch a running service's continuous-profiler \
             flamegraph")
    Term.(const run $ nf_opt $ workload_arg $ socket_arg $ json)

(* -- experiment -- *)

let experiment_cmd =
  let run ids =
    match ids with
    | [] | [ "all" ] -> Experiments.Registry.run_all ()
    | ids ->
      List.iter
        (fun id ->
          match Experiments.Registry.find id with
          | Some e -> e.Experiments.Registry.run ()
          | None -> Printf.printf "unknown experiment: %s\n" id)
        ids
  in
  let ids = Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (fig1..fig16, table1, table2) or 'all'.") in
  Cmd.v (Cmd.info "experiment" ~doc:"Run paper experiments") Term.(const run $ ids)

let () =
  (* Worker children re-exec this binary with a sentinel argv; in a
     worker this serves until shutdown and never returns. *)
  Router.Spawn.worker_main_if_requested ();
  let doc = "Clara: automated SmartNIC offloading insights (SOSP'21 reproduction)" in
  let info = Cmd.info "clara" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; show_cmd; train_cmd; analyze_cmd; serve_cmd; router_cmd; rollout_cmd;
            query_cmd; quality_cmd; flight_cmd; replay_cmd; port_cmd; sweep_cmd; profile_cmd;
            experiment_cmd ]))
