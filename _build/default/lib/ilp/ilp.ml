(** Exact 0/1 integer linear programming for generalized assignment.

    Clara's state-placement formulation (§4.3): place each of k data
    structures into one of t memory levels, minimizing total weighted
    access latency subject to per-level capacity.  Solved by depth-first
    branch-and-bound with an admissible bound (capacity-relaxed greedy),
    items ordered largest-first.  Problem sizes are tiny (k <= dozens), so
    exactness is cheap. *)

type problem = {
  n_items : int;
  n_bins : int;
  cost : int -> int -> float;  (** cost item bin; [infinity] = forbidden *)
  size : int -> int;
  capacity : int -> int;
}

type solution = { assignment : int array; objective : float }

exception Infeasible

(** Admissible lower bound for the unassigned suffix: each remaining item
    takes its cheapest bin, ignoring capacities. *)
let suffix_bound p order start =
  let acc = ref 0.0 in
  for k = start to p.n_items - 1 do
    let item = order.(k) in
    let best = ref infinity in
    for b = 0 to p.n_bins - 1 do
      best := min !best (p.cost item b)
    done;
    acc := !acc +. !best
  done;
  !acc

let solve (p : problem) : solution option =
  if p.n_items = 0 then Some { assignment = [||]; objective = 0.0 }
  else begin
    let order = Array.init p.n_items (fun i -> i) in
    Array.sort (fun a b -> compare (p.size b) (p.size a)) order;
    let remaining = Array.init p.n_bins p.capacity in
    let assignment = Array.make p.n_items (-1) in
    let best_obj = ref infinity in
    let best_assign = ref None in
    let rec go k cost_so_far =
      if cost_so_far +. suffix_bound p order k >= !best_obj then ()
      else if k = p.n_items then begin
        best_obj := cost_so_far;
        best_assign := Some (Array.copy assignment)
      end
      else begin
        let item = order.(k) in
        (* try bins cheapest-first for better pruning *)
        let bins = Array.init p.n_bins (fun b -> b) in
        Array.sort (fun a b -> compare (p.cost item a) (p.cost item b)) bins;
        Array.iter
          (fun b ->
            let c = p.cost item b in
            if c < infinity && remaining.(b) >= p.size item then begin
              remaining.(b) <- remaining.(b) - p.size item;
              assignment.(item) <- b;
              go (k + 1) (cost_so_far +. c);
              assignment.(item) <- -1;
              remaining.(b) <- remaining.(b) + p.size item
            end)
          bins
      end
    in
    go 0 0.0;
    match !best_assign with
    | Some a -> Some { assignment = a; objective = !best_obj }
    | None -> None
  end

(** Enumerate all feasible assignments (for expert-emulation exhaustive
    search, §5.8).  Only safe for small problems: bins^items candidates. *)
let enumerate (p : problem) : solution list =
  let results = ref [] in
  let remaining = Array.init p.n_bins p.capacity in
  let assignment = Array.make p.n_items (-1) in
  let rec go item cost_so_far =
    if item = p.n_items then
      results := { assignment = Array.copy assignment; objective = cost_so_far } :: !results
    else
      for b = 0 to p.n_bins - 1 do
        let c = p.cost item b in
        if c < infinity && remaining.(b) >= p.size item then begin
          remaining.(b) <- remaining.(b) - p.size item;
          assignment.(item) <- b;
          go (item + 1) (cost_so_far +. c);
          assignment.(item) <- -1;
          remaining.(b) <- remaining.(b) + p.size item
        end
      done
  in
  go 0 0.0;
  !results
