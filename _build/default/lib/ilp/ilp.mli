(** Exact 0/1 integer linear programming for generalized assignment —
    Clara's state-placement formulation (§4.3): place each item (data
    structure) into one bin (memory level) minimizing total cost subject
    to bin capacities.  Solved exactly by branch-and-bound with an
    admissible capacity-relaxed bound. *)

type problem = {
  n_items : int;
  n_bins : int;
  cost : int -> int -> float;  (** [cost item bin]; [infinity] forbids *)
  size : int -> int;
  capacity : int -> int;
}

type solution = { assignment : int array; objective : float }

exception Infeasible

(** Admissible lower bound of the unassigned suffix (each remaining item
    at its cheapest bin, capacities ignored).  Exposed for bound tests. *)
val suffix_bound : problem -> int array -> int -> float

(** The optimal assignment, or [None] when capacities cannot be
    satisfied. *)
val solve : problem -> solution option

(** Every feasible assignment — the §5.8 expert-emulation exhaustive
    search.  Only safe for small problems (bins^items candidates). *)
val enumerate : problem -> solution list
