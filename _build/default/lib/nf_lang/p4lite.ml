(** P4-lite: a match-action front-end (§6 "NF frameworks").

    The paper notes Clara would need framework-specific handling to cover
    P4/eBPF-style NFs.  This module provides a small match-action pipeline
    description — ordered tables with match keys, actions and defaults —
    and compiles it into a regular {!Ast.element}, after which the whole
    Clara pipeline (prediction, accelerator detection, placement,
    coalescing) applies unchanged.

    Compilation strategy: each table becomes a fixed-capacity hash map
    keyed by its match fields, whose value carries the matched action id
    and its parameter; [apply] becomes find / action-dispatch / default,
    with per-table hit/miss counters (the shape a P4 target compiler
    emits for exact-match tables). *)

open Ast

type action =
  | Forward of int  (** send out of port *)
  | Drop_packet
  | Set_field of header_field  (** set field to the entry's parameter *)
  | Decrement_ttl
  | Count of string  (** bump a named counter array, indexed by parameter *)
  | No_op

(* Entries select actions by their 1-based position in the table's action
   list; 0 selects the default action.  Positional ids keep two instances
   of the same constructor (Forward 1 vs Forward 2) distinct. *)

type table = {
  t_name : string;
  keys : header_field list;  (** exact-match keys *)
  actions : action list;  (** actions entries may select *)
  default_action : action;
  size : int;
}

type program = { p_name : string; pipeline : table list }

(** Emit the statements performing [act]; [param] is the local holding the
    matched entry's parameter. *)
let compile_action (act : action) ~(param : Ast.expr) : Ast.stmt list =
  let open Build in
  match act with
  | Forward port -> [ emit port ]
  | Drop_packet -> [ drop ]
  | Set_field f -> [ set_hdr f param ]
  | Decrement_ttl ->
    [ when_ (hdr Ip_ttl <= i 1) [ drop ]; set_hdr Ip_ttl (hdr Ip_ttl - i 1) ]
  | Count counter ->
    [ arr_set counter (param land i 255) (arr_get counter (param land i 255) + i 1) ]
  | No_op -> []

(** Dispatch over the entry's positional action id with an if-chain, the
    way P4 targets lower action selection. *)
let compile_dispatch (t : table) ~(aid : Ast.expr) ~(param : Ast.expr) : Ast.stmt list =
  let indexed = List.mapi (fun k act -> (Stdlib.( + ) k 1, act)) t.actions in
  let open Build in
  List.fold_left
    (fun acc (k, act) -> [ if_ (aid = i k) (compile_action act ~param) acc ])
    (compile_action t.default_action ~param)
    (List.rev indexed)

let table_state (t : table) : state_decl list =
  let counters =
    List.filter_map (function Count c -> Some (Build.array c 256) | _ -> None)
      (t.default_action :: t.actions)
  in
  Build.map_decl t.t_name
    ~key_widths:(List.map field_width t.keys)
    ~val_fields:[ ("action_id", 16); ("param", 32) ]
    ~capacity:t.size
  :: Build.scalar (t.t_name ^ "_hits")
  :: Build.scalar (t.t_name ^ "_misses")
  :: counters

let compile_table (t : table) : Ast.stmt list =
  let open Build in
  let key = List.map (fun f -> Ast.Hdr f) t.keys in
  let hit = t.t_name ^ "_hit" in
  let aid = t.t_name ^ "_aid" in
  let param = t.t_name ^ "_param" in
  [ map_find t.t_name key hit;
    if_
      (l hit <> i 0)
      ([ set_g (t.t_name ^ "_hits") (g (t.t_name ^ "_hits") + i 1);
         map_read t.t_name "action_id" aid;
         map_read t.t_name "param" param ]
      @ compile_dispatch t ~aid:(l aid) ~param:(l param))
      (set_g (t.t_name ^ "_misses") (g (t.t_name ^ "_misses") + i 1)
      :: compile_action t.default_action ~param:(i 0)) ]

(** Compile a pipeline into an element: tables apply in order; a packet
    that survives every table is forwarded out of port 0. *)
let compile (p : program) : Ast.element =
  let state = List.concat_map table_state p.pipeline in
  (* deduplicate counter arrays shared between tables *)
  let state =
    List.fold_left
      (fun acc d -> if List.exists (fun d' -> state_name d' = state_name d) acc then acc else d :: acc)
      [] state
    |> List.rev
  in
  let body = List.concat_map compile_table p.pipeline in
  Build.element p.p_name ~state (body @ [ Build.emit 0 ])

exception Unknown_action of string

(** Install a table entry into a compiled element's runtime state (the
    control-plane `table_add`).  [act] must be one of the table's declared
    actions in [program]. *)
let table_add (program : program) (interp : Interp.t) ~table ~(key : int list) (act : action)
    ~(param : int) =
  let t =
    match List.find_opt (fun t -> String.equal t.t_name table) program.pipeline with
    | Some t -> t
    | None -> raise (Unknown_action (Printf.sprintf "no table %s" table))
  in
  let rec index k = function
    | [] -> raise (Unknown_action (Printf.sprintf "action not declared by table %s" table))
    | a :: rest -> if a = act then k else index (k + 1) rest
  in
  let aid = index 1 t.actions in
  let m = State.map_of interp.Interp.state table in
  ignore (State.insert m (Array.of_list key) [| aid; param |])

(* -- a canned example program: a small L3 router -- *)

(** ACL (drop listed sources) -> LPM-ish next-hop table on dst -> egress
    port selection, with TTL handling and per-next-hop counters. *)
let simple_router =
  {
    p_name = "p4_router";
    pipeline =
      [ { t_name = "acl";
          keys = [ Ip_src ];
          actions = [ Drop_packet; No_op ];
          default_action = No_op;
          size = 1024 };
        { t_name = "ipv4_fwd";
          keys = [ Ip_dst ];
          actions = [ Set_field Ip_tos; Decrement_ttl; Count "nh_counters" ];
          default_action = Decrement_ttl;
          size = 4096 };
        { t_name = "egress";
          keys = [ Ip_dst ];
          actions = [ Forward 1; Forward 2 ];
          default_action = Forward 0;
          size = 4096 } ];
  }
