(** Smart constructors for building NF element ASTs.

    Every statement receives a unique [sid] from a process-global counter;
    corpus construction order is deterministic, so sids are reproducible.
    Corpus elements and the program synthesizer both build through this
    module. *)

open Ast

let counter = ref 0

let mk node =
  incr counter;
  { sid = !counter; node }

(* Expressions *)
let i n = Int n
let l name = Local name
let g name = Global name
let hdr f = Hdr f
let payload off = Payload_byte off
let pkt_len = Packet_len
let ( + ) a b = Bin (Add, a, b)
let ( - ) a b = Bin (Sub, a, b)
let ( * ) a b = Bin (Mul, a, b)
let ( land ) a b = Bin (BAnd, a, b)
let ( lor ) a b = Bin (BOr, a, b)
let ( lxor ) a b = Bin (BXor, a, b)
let ( lsl ) a b = Bin (Shl, a, b)
let ( lsr ) a b = Bin (Shr, a, b)
let ( = ) a b = Cmp (Eq, a, b)
let ( <> ) a b = Cmp (Ne, a, b)
let ( < ) a b = Cmp (Lt, a, b)
let ( <= ) a b = Cmp (Le, a, b)
let ( > ) a b = Cmp (Gt, a, b)
let ( >= ) a b = Cmp (Ge, a, b)
let ( && ) a b = And_also (a, b)
let ( || ) a b = Or_else (a, b)
let not_ e = Not e
let arr_get name idx = Arr_get (name, idx)
let vec_len name = Vec_len name
let api name args = Api_expr (name, args)

(* Statements *)
let let_ name e = mk (Let (name, e))
let set_g name e = mk (Set_global (name, e))
let set_hdr f e = mk (Set_hdr (f, e))
let set_payload off v = mk (Set_payload (off, v))
let arr_set name idx v = mk (Arr_set (name, idx, v))
let map_find map key dst = mk (Map_find (map, key, dst))
let map_read map field dst = mk (Map_read (map, field, dst))
let map_write map field v = mk (Map_write (map, field, v))
let map_insert map key vals = mk (Map_insert (map, key, vals))
let map_erase map = mk (Map_erase map)
let vec_append name v = mk (Vec_append (name, v))
let vec_get name idx dst = mk (Vec_get (name, idx, dst))
let vec_set name idx v = mk (Vec_set (name, idx, v))
let if_ c t f = mk (If (c, t, f))
let when_ c t = mk (If (c, t, []))
let while_ c body = mk (While (c, body))
let for_ var lo hi body = mk (For (var, lo, hi, body))
let api_stmt name args = mk (Api_stmt (name, args))
let emit port = mk (Emit port)
let drop = mk Drop
let call name = mk (Call_sub name)
let return_ = mk Return

(* State declarations *)
let scalar ?(init = 0) ?(width = 32) name = Scalar { name; width; init }
let array ?(width = 32) name length = Array { name; width; length }

let map_decl ?(capacity = 1024) name ~key_widths ~val_fields =
  Map { name; key_widths; val_fields; capacity }

let vector ?(capacity = 256) ?(elem_width = 32) name = Vector { name; elem_width; capacity }

let element ?(state = []) ?(subs = []) name handler = { name; state; subs; handler }
