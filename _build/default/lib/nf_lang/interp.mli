(** Host interpreter for NF elements: executes a handler over packets
    while profiling exactly what Clara's workload-specific analyses need —
    per-statement execution counts (mapped to IR blocks by the frontend),
    per-global access attribution (coalescing access vectors, placement
    frequencies), hash-map probe counts under Click or NIC data-structure
    semantics, API call counts, and verdicts. *)

(** Verdict of one packet. *)
type action = Emitted of int | Dropped

type profile = {
  stmt_counts : (int, int) Hashtbl.t;  (** sid -> executions *)
  global_reads : (string * int, int) Hashtbl.t;  (** (global, sid) -> reads *)
  global_writes : (string * int, int) Hashtbl.t;
  api_counts : (string, int) Hashtbl.t;
  cond_counts : (int, int) Hashtbl.t;
      (** While/For sid -> condition evaluations (iterations + entries);
          the execution count of the loop-header block in the lowered CFG *)
  map_ops : (string, int ref * int ref) Hashtbl.t;  (** map -> (ops, probes) *)
  mutable packets : int;
  mutable emitted : int;
  mutable dropped : int;
}

val new_profile : unit -> profile

(** Executions of statement [sid] (0 if never run). *)
val stmt_count : profile -> int -> int

(** Condition evaluations of loop [sid]. *)
val cond_count : profile -> int -> int

(** Total reads+writes of global [g]. *)
val global_accesses : profile -> string -> int

(** Accesses of global [g] attributed to statement [sid]. *)
val global_accesses_at : profile -> string -> int -> int

(** Mean probes per operation on a map; 1.0 when never used. *)
val mean_probes : profile -> string -> float

(** A running interpreter instance. *)
type t = {
  elt : Ast.element;
  state : State.t;
  profile : profile;
  mutable time : int;  (** virtual clock: packet sequence number *)
}

exception Handler_return

(** Raised when a loop exceeds its fuel (runaway While). *)
exception Fuel_exhausted of string

(** Fresh interpreter; [mode] selects Click ([State.Host]) or reverse-ported
    NIC ([State.Nic]) data-structure semantics (§3.3). *)
val create : ?mode:State.mode -> Ast.element -> t

val loop_fuel : int

(** Process one packet (mutating it) and return the verdict. *)
val push : t -> Packet.t -> action

(** Process a packet list; returns the accumulated profile. *)
val run : t -> Packet.t list -> profile
