(** Host interpreter for NF elements.

    Executes an element's handler over packets while profiling exactly the
    quantities Clara's workload-specific analyses need (§4.3–4.5):

    - per-statement execution counts (mapped to IR basic blocks by the
      frontend, giving block execution frequencies under a workload);
    - per-global read/write counts attributed to statements (access vectors
      for memory coalescing, access frequencies for state placement);
    - hash-map probe counts in either Click or NIC data-structure mode;
    - API call counts and packet verdicts. *)

open Ast

type action = Emitted of int | Dropped

type profile = {
  stmt_counts : (int, int) Hashtbl.t;  (** sid -> executions *)
  global_reads : (string * int, int) Hashtbl.t;  (** (global, sid) -> reads *)
  global_writes : (string * int, int) Hashtbl.t;
  api_counts : (string, int) Hashtbl.t;
  cond_counts : (int, int) Hashtbl.t;
      (** sid of a While/For -> number of condition evaluations, i.e. loop
          iterations + entries; this is the execution count of the loop
          header block in the lowered CFG *)
  map_ops : (string, int ref * int ref) Hashtbl.t;  (** map -> (ops, probes) *)
  mutable packets : int;
  mutable emitted : int;
  mutable dropped : int;
}

let new_profile () =
  {
    stmt_counts = Hashtbl.create 256;
    global_reads = Hashtbl.create 64;
    global_writes = Hashtbl.create 64;
    api_counts = Hashtbl.create 16;
    cond_counts = Hashtbl.create 32;
    map_ops = Hashtbl.create 8;
    packets = 0;
    emitted = 0;
    dropped = 0;
  }

let bump tbl key = Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let stmt_count p sid = Option.value ~default:0 (Hashtbl.find_opt p.stmt_counts sid)
let cond_count p sid = Option.value ~default:0 (Hashtbl.find_opt p.cond_counts sid)

(** Total accesses (reads + writes) to global [g], across all statements. *)
let global_accesses p g =
  let total tbl =
    Hashtbl.fold (fun (name, _) c acc -> if String.equal name g then acc + c else acc) tbl 0
  in
  total p.global_reads + total p.global_writes

(** Accesses to global [g] attributed to statement [sid]. *)
let global_accesses_at p g sid =
  Option.value ~default:0 (Hashtbl.find_opt p.global_reads (g, sid))
  + Option.value ~default:0 (Hashtbl.find_opt p.global_writes (g, sid))

(** Mean probes per operation for a map; 1.0 when the map was never used. *)
let mean_probes p map =
  match Hashtbl.find_opt p.map_ops map with
  | Some (ops, probes) when !ops > 0 -> float_of_int !probes /. float_of_int !ops
  | Some _ | None -> 1.0

type t = {
  elt : element;
  state : State.t;
  profile : profile;
  mutable time : int;  (** virtual clock: packet sequence number *)
}

exception Handler_return
exception Fuel_exhausted of string

let create ?(mode = State.Host) elt =
  { elt; state = State.create ~mode elt.state; profile = new_profile (); time = 0 }

let loop_fuel = 100_000

let record_map_op t map probes =
  let ops, total =
    match Hashtbl.find_opt t.profile.map_ops map with
    | Some pair -> pair
    | None ->
      let pair = (ref 0, ref 0) in
      Hashtbl.replace t.profile.map_ops map pair;
      pair
  in
  incr ops;
  total := !total + probes

let truth v = v <> 0

let rec eval t (locals : (string, int) Hashtbl.t) (pkt : Packet.t) ~sid e =
  let ev e = eval t locals pkt ~sid e in
  match e with
  | Int n -> n
  | Local v -> (
    (* locals are function-scope stack slots in the lowering; a read before
       any write sees a zero-initialized slot *)
    match Hashtbl.find_opt locals v with Some x -> x | None -> 0)
  | Global v ->
    bump t.profile.global_reads (v, sid);
    !(State.scalar_ref t.state v)
  | Hdr f -> Packet.get_field pkt f
  | Payload_byte off -> Packet.get_payload_byte pkt (ev off)
  | Packet_len -> Packet.length pkt
  | Bin (op, a, b) ->
    let x = ev a and y = ev b in
    (match op with
    | Add -> (x + y) land 0xffffffff
    | Sub -> (x - y) land 0xffffffff
    | Mul -> x * y land 0xffffffff
    | BAnd -> x land y
    | BOr -> x lor y
    | BXor -> x lxor y
    | Shl -> x lsl (y land 31) land 0xffffffff
    | Shr -> (x land 0xffffffff) lsr (y land 31))
  | Cmp (op, a, b) ->
    let x = ev a and y = ev b in
    let r =
      match op with
      | Eq -> x = y
      | Ne -> x <> y
      | Lt -> x < y
      | Le -> x <= y
      | Gt -> x > y
      | Ge -> x >= y
    in
    if r then 1 else 0
  | Not a -> if truth (ev a) then 0 else 1
  | And_also (a, b) -> if truth (ev a) then ev b else 0
  | Or_else (a, b) -> if truth (ev a) then 1 else ev b
  | Arr_get (name, idx) ->
    bump t.profile.global_reads (name, sid);
    let arr = State.array_of t.state name in
    let j = ev idx in
    if j >= 0 && j < Array.length arr then arr.(j) else 0
  | Vec_len name ->
    bump t.profile.global_reads (name, sid);
    State.vec_length (State.vec_of t.state name)
  | Api_expr (name, args) ->
    bump t.profile.api_counts name;
    Api.eval_expr ~time:t.time pkt name (List.map ev args)

and exec t locals pkt (s : stmt) =
  bump t.profile.stmt_counts s.sid;
  let sid = s.sid in
  let ev e = eval t locals pkt ~sid e in
  match s.node with
  | Let (v, e) -> Hashtbl.replace locals v (ev e)
  | Set_global (v, e) ->
    bump t.profile.global_writes (v, sid);
    State.scalar_ref t.state v := ev e
  | Set_hdr (f, e) -> Packet.set_field pkt f (ev e)
  | Set_payload (off, v) -> Packet.set_payload_byte pkt (ev off) (ev v)
  | Arr_set (name, idx, v) ->
    bump t.profile.global_writes (name, sid);
    let arr = State.array_of t.state name in
    let j = ev idx in
    if j >= 0 && j < Array.length arr then arr.(j) <- ev v
  | Map_find (map, key, dst) ->
    bump t.profile.global_reads (map, sid);
    bump t.profile.api_counts "map_find";
    let m = State.map_of t.state map in
    let found, probes = State.find m (Array.of_list (List.map ev key)) in
    record_map_op t map probes;
    Hashtbl.replace locals dst (if found then 1 else 0)
  | Map_read (map, field, dst) ->
    bump t.profile.global_reads (map, sid);
    bump t.profile.api_counts "map_read";
    Hashtbl.replace locals dst (State.read (State.map_of t.state map) field)
  | Map_write (map, field, e) ->
    bump t.profile.global_writes (map, sid);
    bump t.profile.api_counts "map_write";
    State.write (State.map_of t.state map) field (ev e)
  | Map_insert (map, key, vals) ->
    bump t.profile.global_writes (map, sid);
    bump t.profile.api_counts "map_insert";
    let m = State.map_of t.state map in
    let probes =
      State.insert m (Array.of_list (List.map ev key)) (Array.of_list (List.map ev vals))
    in
    record_map_op t map probes
  | Map_erase map ->
    bump t.profile.global_writes (map, sid);
    bump t.profile.api_counts "map_erase";
    State.erase (State.map_of t.state map)
  | Vec_append (name, e) ->
    bump t.profile.global_writes (name, sid);
    bump t.profile.api_counts "vec_append";
    State.vec_append (State.vec_of t.state name) (ev e)
  | Vec_get (name, idx, dst) ->
    bump t.profile.global_reads (name, sid);
    bump t.profile.api_counts "vec_get";
    Hashtbl.replace locals dst (State.vec_get (State.vec_of t.state name) (ev idx))
  | Vec_set (name, idx, e) ->
    bump t.profile.global_writes (name, sid);
    bump t.profile.api_counts "vec_set";
    State.vec_set (State.vec_of t.state name) (ev idx) (ev e)
  | If (c, th, el) -> exec_list t locals pkt (if truth (ev c) then th else el)
  | While (c, body) ->
    let fuel = ref loop_fuel in
    let check () =
      bump t.profile.cond_counts sid;
      truth (ev c)
    in
    while check () do
      decr fuel;
      if !fuel <= 0 then raise (Fuel_exhausted t.elt.name);
      exec_list t locals pkt body
    done
  | For (v, lo, hi, body) ->
    let lo_v = ev lo and hi_v = ev hi in
    let fuel = ref loop_fuel in
    let i = ref lo_v in
    let check () =
      bump t.profile.cond_counts sid;
      !i < hi_v
    in
    while check () do
      decr fuel;
      if !fuel <= 0 then raise (Fuel_exhausted t.elt.name);
      Hashtbl.replace locals v !i;
      exec_list t locals pkt body;
      (* the body may rebind the loop variable; the increment reads it back,
         matching C semantics *)
      i := 1 + Option.value ~default:!i (Hashtbl.find_opt locals v)
    done
  | Api_stmt (name, args) ->
    bump t.profile.api_counts name;
    Api.exec_stmt pkt name (List.map ev args)
  | Emit port ->
    bump t.profile.api_counts "send";
    Hashtbl.replace locals "__action" (1000 + port);
    raise Handler_return
  | Drop ->
    bump t.profile.api_counts "kill";
    Hashtbl.replace locals "__action" (-1);
    raise Handler_return
  | Call_sub name -> (
    match List.assoc_opt name t.elt.subs with
    | Some body -> exec_list t locals pkt body
    | None -> failwith (Printf.sprintf "Interp: %s: unknown subroutine %s" t.elt.name name))
  | Return -> raise Handler_return

and exec_list t locals pkt stmts = List.iter (exec t locals pkt) stmts

(** Process one packet; returns the verdict. *)
let push t pkt =
  let locals = Hashtbl.create 32 in
  t.profile.packets <- t.profile.packets + 1;
  t.time <- t.time + 1;
  (try exec_list t locals pkt t.elt.handler with Handler_return -> ());
  match Hashtbl.find_opt locals "__action" with
  | Some a when a >= 1000 ->
    t.profile.emitted <- t.profile.emitted + 1;
    Emitted (a - 1000)
  | Some _ | None ->
    t.profile.dropped <- t.profile.dropped + 1;
    Dropped

(** Process a whole packet list, returning the profile. *)
let run t pkts =
  List.iter (fun pkt -> ignore (push t pkt)) pkts;
  t.profile
