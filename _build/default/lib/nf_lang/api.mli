(** Framework API registry and host-side semantics — the Click library
    calls a cross-porting developer must replace with SmartNIC built-ins
    (§3.3). *)

(** API classification used by the frontend and reverse porting. *)
type kind =
  | Pure_helper  (** hash/crc helpers and engine lookups: expression-level *)
  | Header_accessor  (** ip_header()/tcp_header()-style parsing calls *)
  | Checksum  (** checksum computation or update *)
  | Data_structure  (** HashMap/Vector operations *)
  | Packet_io  (** send/drop *)

(** Expression-level helpers the interpreter and frontend recognize. *)
val expr_apis : string list

(** Statement-level framework calls. *)
val stmt_apis : string list

(** Classify a base API name.  @raise Failure on unknown names. *)
val classify : string -> kind

(** One FNV-style mixing step. *)
val mix32 : int -> int -> int

(** FNV-style hash of the argument list. *)
val hash32 : int list -> int

(** Bitwise CRC32 (reflected, poly 0xEDB88320) over a byte slice. *)
val crc32_bytes : Bytes.t -> int -> int -> int

(** Bitwise CRC16 over a byte slice. *)
val crc16_bytes : Bytes.t -> int -> int -> int

(** Host evaluation of an expression-level API call; [time] is the virtual
    clock.  @raise Failure on unknown name/arity. *)
val eval_expr : time:int -> Packet.t -> string -> int list -> int

(** Host execution of a statement-level API call. *)
val exec_stmt : Packet.t -> string -> int list -> unit
