(** P4-lite: a match-action front-end (§6 "NF frameworks").

    A pipeline of exact-match tables compiles into a regular
    {!Ast.element} — each table becomes a fixed-capacity hash map whose
    entries carry a positional action id and a parameter — after which the
    whole Clara pipeline applies unchanged. *)

(** P4-style actions.  Entries select actions by their 1-based position in
    the table's action list (0 = default), so two instances of the same
    constructor stay distinct. *)
type action =
  | Forward of int  (** send out of port *)
  | Drop_packet
  | Set_field of Ast.header_field  (** set the field to the entry's parameter *)
  | Decrement_ttl  (** TTL handling with expiry drop *)
  | Count of string  (** bump a named counter array, indexed by the parameter *)
  | No_op

type table = {
  t_name : string;
  keys : Ast.header_field list;  (** exact-match keys *)
  actions : action list;  (** actions entries may select *)
  default_action : action;
  size : int;
}

type program = { p_name : string; pipeline : table list }

(** Statements performing [act]; [param] holds the matched entry's
    parameter. *)
val compile_action : action -> param:Ast.expr -> Ast.stmt list

(** If-chain dispatch over the entry's positional action id. *)
val compile_dispatch : table -> aid:Ast.expr -> param:Ast.expr -> Ast.stmt list

(** State declarations a table compiles to (map + hit/miss counters +
    counter arrays). *)
val table_state : table -> Ast.state_decl list

(** The apply() statements of one table. *)
val compile_table : table -> Ast.stmt list

(** Compile a pipeline: tables apply in order; surviving packets leave on
    port 0. *)
val compile : program -> Ast.element

exception Unknown_action of string

(** Control-plane [table_add]: install an entry into a running
    interpreter's state.  [act] must be declared by the named table.
    @raise Unknown_action otherwise. *)
val table_add :
  program -> Interp.t -> table:string -> key:int list -> action -> param:int -> unit

(** A canned example: ACL -> next-hop table -> egress selection, with TTL
    handling and per-next-hop counters. *)
val simple_router : program
