(** Smart constructors for building NF element ASTs.  Every statement gets
    a unique [sid] from a process-global counter; corpus construction
    order is deterministic, so sids are reproducible.  Opening this module
    shadows the arithmetic and comparison operators with expression
    builders — open it locally. *)

val counter : int ref

(** Wrap a node with a fresh statement id. *)
val mk : Ast.node -> Ast.stmt

(** {1 Expressions} *)

val i : int -> Ast.expr
val l : string -> Ast.expr
val g : string -> Ast.expr
val hdr : Ast.header_field -> Ast.expr
val payload : Ast.expr -> Ast.expr
val pkt_len : Ast.expr
val ( + ) : Ast.expr -> Ast.expr -> Ast.expr
val ( - ) : Ast.expr -> Ast.expr -> Ast.expr
val ( * ) : Ast.expr -> Ast.expr -> Ast.expr
val ( land ) : Ast.expr -> Ast.expr -> Ast.expr
val ( lor ) : Ast.expr -> Ast.expr -> Ast.expr
val ( lxor ) : Ast.expr -> Ast.expr -> Ast.expr
val ( lsl ) : Ast.expr -> Ast.expr -> Ast.expr
val ( lsr ) : Ast.expr -> Ast.expr -> Ast.expr
val ( = ) : Ast.expr -> Ast.expr -> Ast.expr
val ( <> ) : Ast.expr -> Ast.expr -> Ast.expr
val ( < ) : Ast.expr -> Ast.expr -> Ast.expr
val ( <= ) : Ast.expr -> Ast.expr -> Ast.expr
val ( > ) : Ast.expr -> Ast.expr -> Ast.expr
val ( >= ) : Ast.expr -> Ast.expr -> Ast.expr
val ( && ) : Ast.expr -> Ast.expr -> Ast.expr
val ( || ) : Ast.expr -> Ast.expr -> Ast.expr
val not_ : Ast.expr -> Ast.expr
val arr_get : string -> Ast.expr -> Ast.expr
val vec_len : string -> Ast.expr
val api : string -> Ast.expr list -> Ast.expr

(** {1 Statements} *)

val let_ : string -> Ast.expr -> Ast.stmt
val set_g : string -> Ast.expr -> Ast.stmt
val set_hdr : Ast.header_field -> Ast.expr -> Ast.stmt
val set_payload : Ast.expr -> Ast.expr -> Ast.stmt
val arr_set : string -> Ast.expr -> Ast.expr -> Ast.stmt
val map_find : string -> Ast.expr list -> string -> Ast.stmt
val map_read : string -> string -> string -> Ast.stmt
val map_write : string -> string -> Ast.expr -> Ast.stmt
val map_insert : string -> Ast.expr list -> Ast.expr list -> Ast.stmt
val map_erase : string -> Ast.stmt
val vec_append : string -> Ast.expr -> Ast.stmt
val vec_get : string -> Ast.expr -> string -> Ast.stmt
val vec_set : string -> Ast.expr -> Ast.expr -> Ast.stmt
val if_ : Ast.expr -> Ast.stmt list -> Ast.stmt list -> Ast.stmt
val when_ : Ast.expr -> Ast.stmt list -> Ast.stmt
val while_ : Ast.expr -> Ast.stmt list -> Ast.stmt
val for_ : string -> Ast.expr -> Ast.expr -> Ast.stmt list -> Ast.stmt
val api_stmt : string -> Ast.expr list -> Ast.stmt
val emit : int -> Ast.stmt
val drop : Ast.stmt
val call : string -> Ast.stmt
val return_ : Ast.stmt

(** {1 State declarations and elements} *)

val scalar : ?init:int -> ?width:int -> string -> Ast.state_decl
val array : ?width:int -> string -> int -> Ast.state_decl

val map_decl :
  ?capacity:int -> string -> key_widths:int list -> val_fields:(string * int) list -> Ast.state_decl

val vector : ?capacity:int -> ?elem_width:int -> string -> Ast.state_decl

val element :
  ?state:Ast.state_decl list ->
  ?subs:(string * Ast.stmt list) list ->
  string ->
  Ast.stmt list ->
  Ast.element
