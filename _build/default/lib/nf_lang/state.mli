(** Runtime store for stateful NF data structures, with the paper's two
    framework semantics (§3.3): [Host] is Click (elastic maps with linear
    probing, growing vectors); [Nic] is Netronome (fixed buckets with
    bounded slots, mark-invalid deletes, capped vectors).  Every operation
    reports its memory probes for workload-specific cost attribution. *)

type mode = Host | Nic

type entry = { key : int array; mutable vals : int array; mutable valid : bool }

type map_state = {
  m_name : string;
  m_mode : mode;
  val_names : string array;
  mutable slots : entry option array;
  mutable m_size : int;
  mutable cursor : int;  (** slot of the last successful find/insert *)
  bucket_slots : int;  (** Nic mode: slots per bucket *)
}

type vec_state = {
  v_name : string;
  v_mode : mode;
  mutable data : int array;
  mutable v_len : int;
  v_capacity : int;
}

type t = {
  scalars : (string, int ref) Hashtbl.t;
  arrays : (string, int array) Hashtbl.t;
  maps : (string, map_state) Hashtbl.t;
  vectors : (string, vec_state) Hashtbl.t;
  mode : mode;
}

(** Slots per bucket in NIC mode (the fixed probe bound). *)
val nic_bucket_slots : int

(** Deterministic key hash. *)
val hash_key : int array -> int

(** Allocate the store for an element's declarations. *)
val create : ?mode:mode -> Ast.state_decl list -> t

(** Lookups by name.  @raise Failure on unknown names. *)
val scalar_ref : t -> string -> int ref

val array_of : t -> string -> int array
val map_of : t -> string -> map_state
val vec_of : t -> string -> vec_state

(** [find m key] = (found, probes); positions the cursor on success. *)
val find : map_state -> int array -> bool * int

(** [insert m key vals] returns probes; NIC-mode bucket overflow silently
    drops the insert, as a fixed firmware table would. *)
val insert : map_state -> int array -> int array -> int

(** Read/write a value field at the cursor (0 / no-op when invalid). *)
val read : map_state -> string -> int

val write : map_state -> string -> int -> unit

(** Erase at cursor: Host frees the slot; Nic only marks it invalid. *)
val erase : map_state -> unit

val map_size : map_state -> int

(** Vector operations; Host grows on demand, Nic is capacity-capped. *)
val vec_append : vec_state -> int -> unit

val vec_get : vec_state -> int -> int
val vec_set : vec_state -> int -> int -> unit
val vec_length : vec_state -> int
