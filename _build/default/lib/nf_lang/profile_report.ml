(** Human-readable rendering of interpreter profiles.

    The workload profile is the raw material of Clara's workload-specific
    analyses (§4.2-4.5); this report makes it inspectable: per-packet
    verdicts, the hottest statements, per-structure access frequencies and
    hash-map probe behaviour. *)

open Ast

(** Top [n] most-executed statements as (sid, count). *)
let hot_statements ?(n = 10) (p : Interp.profile) =
  let all = Hashtbl.fold (fun sid c acc -> (sid, c) :: acc) p.Interp.stmt_counts [] in
  let sorted = List.sort (fun (_, a) (_, b) -> compare b a) all in
  List.filteri (fun i _ -> i < n) sorted

(** Per-structure accesses per packet, sorted hottest-first. *)
let structure_frequencies (elt : element) (p : Interp.profile) =
  let pkts = float_of_int (max 1 p.Interp.packets) in
  elt.state
  |> List.map (fun d ->
         let name = state_name d in
         (name, float_of_int (Interp.global_accesses p name) /. pkts))
  |> List.sort (fun (_, a) (_, b) -> compare b a)

(** Find the source text of a statement id (first matching line of the
    pretty-printed element), for hot-statement attribution. *)
let statement_text (elt : element) sid =
  let found = ref None in
  let rec walk (s : stmt) =
    if s.sid = sid && !found = None then
      found := Some (String.concat " " (List.map String.trim (Pp.stmt_lines 0 s)) |> fun t ->
                     if String.length t > 60 then String.sub t 0 57 ^ "..." else t);
    match s.node with
    | If (_, t, f) ->
      List.iter walk t;
      List.iter walk f
    | While (_, b) | For (_, _, _, b) -> List.iter walk b
    | Let _ | Set_global _ | Set_hdr _ | Set_payload _ | Arr_set _ | Map_find _ | Map_read _
    | Map_write _ | Map_insert _ | Map_erase _ | Vec_append _ | Vec_get _ | Vec_set _
    | Api_stmt _ | Emit _ | Drop | Call_sub _ | Return ->
      ()
  in
  List.iter walk (elt.handler @ List.concat_map snd elt.subs);
  Option.value ~default:"<synthetic>" !found

(** Render the full report. *)
let render (elt : element) (p : Interp.profile) =
  let b = Buffer.create 1024 in
  let addf fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  addf "Workload profile for %s (%d packets)" elt.name p.Interp.packets;
  addf "  verdicts: %d emitted, %d dropped" p.Interp.emitted p.Interp.dropped;
  addf "  hottest statements (executions per packet):";
  List.iter
    (fun (sid, count) ->
      addf "    %6.2f  %s"
        (float_of_int count /. float_of_int (max 1 p.Interp.packets))
        (statement_text elt sid))
    (hot_statements p);
  (match structure_frequencies elt p with
  | [] -> addf "  stateless element: no structure accesses"
  | freqs ->
    addf "  structure accesses per packet:";
    List.iter (fun (name, f) -> addf "    %6.2f  %s" f name) freqs);
  let maps =
    List.filter_map (fun d -> match d with Map { name; _ } -> Some name | _ -> None) elt.state
  in
  List.iter
    (fun m -> addf "  %s: %.2f probes per operation" m (Interp.mean_probes p m))
    maps;
  (match
     List.sort (fun (a, _) (b, _) -> compare a b)
       (Hashtbl.fold (fun k v acc -> (k, v) :: acc) p.Interp.api_counts [])
   with
  | [] -> ()
  | apis ->
    addf "  framework API calls:";
    List.iter (fun (name, c) -> addf "    %6d  %s" c name) apis);
  Buffer.contents b
