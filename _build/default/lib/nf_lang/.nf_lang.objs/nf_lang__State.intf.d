lib/nf_lang/state.mli: Ast Hashtbl
