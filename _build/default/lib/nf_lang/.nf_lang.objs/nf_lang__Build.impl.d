lib/nf_lang/build.ml: Ast
