lib/nf_lang/ast.ml: List String
