lib/nf_lang/profile_report.ml: Ast Buffer Hashtbl Interp List Option Pp Printf String
