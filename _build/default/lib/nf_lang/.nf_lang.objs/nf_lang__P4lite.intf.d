lib/nf_lang/p4lite.mli: Ast Interp
