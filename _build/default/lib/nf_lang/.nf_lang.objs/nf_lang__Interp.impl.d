lib/nf_lang/interp.ml: Api Array Ast Hashtbl List Option Packet Printf State String
