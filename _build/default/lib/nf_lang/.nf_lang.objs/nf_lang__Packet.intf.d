lib/nf_lang/packet.mli: Ast Bytes
