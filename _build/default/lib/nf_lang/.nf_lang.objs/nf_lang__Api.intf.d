lib/nf_lang/api.mli: Bytes Packet
