lib/nf_lang/build.mli: Ast
