lib/nf_lang/packet.ml: Ast Bytes Char List
