lib/nf_lang/pp.mli: Ast
