lib/nf_lang/state.ml: Array Ast Hashtbl List Printf String
