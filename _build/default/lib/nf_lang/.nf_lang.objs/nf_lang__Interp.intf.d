lib/nf_lang/interp.mli: Ast Hashtbl Packet State
