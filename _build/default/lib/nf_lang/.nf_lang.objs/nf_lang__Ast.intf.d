lib/nf_lang/ast.mli:
