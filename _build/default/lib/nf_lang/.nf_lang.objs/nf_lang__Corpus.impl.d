lib/nf_lang/corpus.ml: Ast Build List Packet Printf Stdlib String
