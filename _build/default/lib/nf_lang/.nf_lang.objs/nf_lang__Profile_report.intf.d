lib/nf_lang/profile_report.mli: Ast Interp
