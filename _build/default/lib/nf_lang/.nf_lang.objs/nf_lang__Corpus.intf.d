lib/nf_lang/corpus.mli: Ast
