lib/nf_lang/p4lite.ml: Array Ast Build Interp List Printf State Stdlib String
