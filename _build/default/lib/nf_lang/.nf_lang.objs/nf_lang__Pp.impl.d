lib/nf_lang/pp.ml: Ast List Printf String
