lib/nf_lang/api.ml: Bytes Char List Packet Printf String
