(** Human-readable rendering of interpreter profiles — the raw material of
    Clara's workload-specific analyses, made inspectable. *)

(** Top [n] most-executed statements as (sid, count). *)
val hot_statements : ?n:int -> Interp.profile -> (int * int) list

(** Per-structure accesses per packet, hottest first. *)
val structure_frequencies : Ast.element -> Interp.profile -> (string * float) list

(** Source text of a statement id (truncated), for attribution. *)
val statement_text : Ast.element -> int -> string

(** The full report. *)
val render : Ast.element -> Interp.profile -> string
