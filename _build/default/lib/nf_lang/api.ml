(** Framework API registry and host-side semantics.

    These are the Click library calls that a cross-porting developer must
    replace with SmartNIC built-ins (§3.3).  Each API has a host
    implementation (used by the interpreter) and a classification used by
    the frontend and by Clara's reverse-porting pass. *)

type kind =
  | Pure_helper  (** e.g. hash/crc helpers: expression-level, no side effect *)
  | Header_accessor  (** ip_header()/tcp_header()-style parsing calls *)
  | Checksum  (** checksum computation or update *)
  | Data_structure  (** HashMap/Vector operations *)
  | Packet_io  (** send/drop *)

(** Names of the expression-level helpers recognized by the interpreter and
    the frontend. *)
let expr_apis =
  [ "hash32"; "crc32_payload"; "crc16_payload"; "checksum_ip"; "rand16"; "now"; "min"; "max";
    "lpm_lookup"; "flow_cache_lookup" ]

let stmt_apis = [ "checksum_update_ip"; "csum_incr_update" ]

let classify = function
  | "hash32" | "rand16" | "now" | "min" | "max" | "lpm_lookup" | "flow_cache_lookup" ->
    Pure_helper
  | "crc32_payload" | "crc16_payload" | "checksum_ip" | "checksum_update_ip"
  | "csum_incr_update" ->
    Checksum
  | "ip_header" | "tcp_header" | "udp_header" | "eth_header" | "packet_len" ->
    Header_accessor
  | name when String.length name > 4 && String.sub name 0 4 = "map_" -> Data_structure
  | name when String.length name > 4 && String.sub name 0 4 = "vec_" -> Data_structure
  | "send" | "kill" -> Packet_io
  | name -> failwith (Printf.sprintf "Api.classify: unknown API %s" name)

let mix32 h k =
  let h = h lxor (k land 0xffffffff) in
  let h = h * 0x01000193 land 0x3fffffff in
  h lxor (h lsr 15)

let hash32 args = List.fold_left mix32 0x811c9dc5 args land 0x3fffffff

(** Bitwise CRC32 (reflected, poly 0xEDB88320) over a payload slice. *)
let crc32_bytes bytes off len =
  let crc = ref 0xffffffff in
  for i = off to min (off + len) (Bytes.length bytes) - 1 do
    crc := !crc lxor Char.code (Bytes.get bytes i);
    for _ = 0 to 7 do
      let lsb = !crc land 1 in
      crc := !crc lsr 1;
      if lsb = 1 then crc := !crc lxor 0xedb88320
    done
  done;
  lnot !crc land 0xffffffff

let crc16_bytes bytes off len =
  let crc = ref 0xffff in
  for i = off to min (off + len) (Bytes.length bytes) - 1 do
    crc := !crc lxor Char.code (Bytes.get bytes i);
    for _ = 0 to 7 do
      let lsb = !crc land 1 in
      crc := !crc lsr 1;
      if lsb = 1 then crc := !crc lxor 0xa001
    done
  done;
  !crc land 0xffff

(** Host evaluation of an expression-level API call.  [time] is the virtual
    clock (packet sequence number). *)
let eval_expr ~time (p : Packet.t) name (args : int list) =
  match (name, args) with
  | "hash32", _ -> hash32 args
  | "crc32_payload", [ off; len ] -> crc32_bytes p.payload off len
  | "crc32_payload", _ -> crc32_bytes p.payload 0 (Bytes.length p.payload)
  | "crc16_payload", [ off; len ] -> crc16_bytes p.payload off len
  | "crc16_payload", _ -> crc16_bytes p.payload 0 (Bytes.length p.payload)
  | "checksum_ip", _ -> Packet.ip_checksum p
  | "rand16", _ -> hash32 [ p.ip_src; p.ip_dst; p.tcp_seq; time; 0x5bd1 ] land 0xffff
  | "now", _ -> time
  | "min", [ a; b ] -> min a b
  | "max", [ a; b ] -> max a b
  | "lpm_lookup", [ dst ] -> hash32 [ dst; 0x1f2e ] land 0xff
  | "flow_cache_lookup", [ dst ] -> if hash32 [ dst; 0x77aa ] mod 8 <> 0 then 1 else 0
  | _ -> failwith (Printf.sprintf "Api.eval_expr: unknown API %s/%d" name (List.length args))

(** Host execution of a statement-level API call. *)
let exec_stmt (p : Packet.t) name (args : int list) =
  match (name, args) with
  | "checksum_update_ip", _ -> p.ip_csum <- Packet.ip_checksum p
  | "csum_incr_update", [ old_v; new_v ] ->
    let delta = (new_v - old_v) land 0xffff in
    p.ip_csum <- (p.ip_csum + delta) land 0xffff
  | _ -> failwith (Printf.sprintf "Api.exec_stmt: unknown API %s/%d" name (List.length args))
