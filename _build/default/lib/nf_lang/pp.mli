(** Pretty-printer rendering an element as Click-flavored C++ source; used
    for human inspection and the LoC column of the Table-2 inventory. *)

val binop_str : Ast.binop -> string
val cmpop_str : Ast.cmpop -> string
val hdr_str : Ast.header_field -> string
val expr_str : Ast.expr -> string

(** Rendered lines of one statement at the given indent. *)
val stmt_lines : int -> Ast.stmt -> string list

val state_lines : Ast.state_decl -> string list
val element_lines : Ast.element -> string list
val to_string : Ast.element -> string

(** Source-lines-of-code metric (rendered lines). *)
val loc : Ast.element -> int
