(** Abstract syntax for Click-style network function elements.

    This is the unported input format that Clara analyzes: an element owns
    stateful declarations (scalars, arrays, hash maps, vectors) and a packet
    handler written against a framework API (header accessors, checksum
    helpers, map/vector operations).  The shape deliberately mirrors the
    Click `Element::simple_action` programming model used by the paper. *)

(** Packet header fields addressable by NF programs.  Widths are in bits. *)
type header_field =
  | Eth_type
  | Ip_src
  | Ip_dst
  | Ip_proto
  | Ip_ttl
  | Ip_len
  | Ip_hl
  | Ip_tos
  | Ip_id
  | Ip_csum
  | Tcp_sport
  | Tcp_dport
  | Tcp_seq
  | Tcp_ack
  | Tcp_off
  | Tcp_flags
  | Tcp_win
  | Tcp_csum
  | Udp_sport
  | Udp_dport
  | Udp_len
  | Udp_csum

let field_width = function
  | Eth_type -> 16
  | Ip_src | Ip_dst -> 32
  | Ip_proto | Ip_ttl | Ip_hl | Ip_tos -> 8
  | Ip_len | Ip_id | Ip_csum -> 16
  | Tcp_sport | Tcp_dport | Tcp_win | Tcp_csum -> 16
  | Tcp_seq | Tcp_ack -> 32
  | Tcp_off | Tcp_flags -> 8
  | Udp_sport | Udp_dport | Udp_len | Udp_csum -> 16

(** Protocol layer a field belongs to; used to materialize framework
    [x_header()] accessor calls during lowering. *)
type proto = Eth | Ip | Tcp | Udp

let field_proto = function
  | Eth_type -> Eth
  | Ip_src | Ip_dst | Ip_proto | Ip_ttl | Ip_len | Ip_hl | Ip_tos | Ip_id | Ip_csum -> Ip
  | Tcp_sport | Tcp_dport | Tcp_seq | Tcp_ack | Tcp_off | Tcp_flags | Tcp_win | Tcp_csum -> Tcp
  | Udp_sport | Udp_dport | Udp_len | Udp_csum -> Udp

let field_name = function
  | Eth_type -> "eth_type"
  | Ip_src -> "ip_src"
  | Ip_dst -> "ip_dst"
  | Ip_proto -> "ip_proto"
  | Ip_ttl -> "ip_ttl"
  | Ip_len -> "ip_len"
  | Ip_hl -> "ip_hl"
  | Ip_tos -> "ip_tos"
  | Ip_id -> "ip_id"
  | Ip_csum -> "ip_csum"
  | Tcp_sport -> "tcp_sport"
  | Tcp_dport -> "tcp_dport"
  | Tcp_seq -> "tcp_seq"
  | Tcp_ack -> "tcp_ack"
  | Tcp_off -> "tcp_off"
  | Tcp_flags -> "tcp_flags"
  | Tcp_win -> "tcp_win"
  | Tcp_csum -> "tcp_csum"
  | Udp_sport -> "udp_sport"
  | Udp_dport -> "udp_dport"
  | Udp_len -> "udp_len"
  | Udp_csum -> "udp_csum"

type binop = Add | Sub | Mul | BAnd | BOr | BXor | Shl | Shr

type cmpop = Eq | Ne | Lt | Le | Gt | Ge

type expr =
  | Int of int  (** integer literal *)
  | Local of string  (** stateless per-packet local variable *)
  | Global of string  (** stateful scalar global *)
  | Hdr of header_field  (** packet header field read *)
  | Payload_byte of expr  (** packet payload byte at offset *)
  | Packet_len  (** total packet length in bytes *)
  | Bin of binop * expr * expr
  | Cmp of cmpop * expr * expr
  | Not of expr
  | And_also of expr * expr  (** short-circuit && *)
  | Or_else of expr * expr  (** short-circuit || *)
  | Arr_get of string * expr  (** stateful array element read *)
  | Vec_len of string  (** current length of a stateful vector *)
  | Api_expr of string * expr list
      (** pure framework helper, e.g. "hash32", "crc32_step", "rand16" *)

(** Statements carry a unique id [sid] assigned by {!Build}; the interpreter
    profiles execution per sid and the frontend maps sids to IR blocks, which
    is how workload-specific block execution counts are obtained. *)
type stmt = { sid : int; node : node }

and node =
  | Let of string * expr  (** define or assign a local *)
  | Set_global of string * expr
  | Set_hdr of header_field * expr
  | Set_payload of expr * expr  (** payload[off] <- byte *)
  | Arr_set of string * expr * expr
  | Map_find of string * expr list * string
      (** [Map_find (map, key, dst)]: probe [map]; set local [dst] to 1 if
          found (and position the map cursor) else 0 *)
  | Map_read of string * string * string
      (** [Map_read (map, field, dst)]: read value [field] at cursor *)
  | Map_write of string * string * expr  (** write value field at cursor *)
  | Map_insert of string * expr list * expr list
      (** insert (key fields, value fields); positions cursor *)
  | Map_erase of string  (** delete the entry at cursor *)
  | Vec_append of string * expr
  | Vec_get of string * expr * string  (** dst local <- vec[idx] *)
  | Vec_set of string * expr * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list  (** bounded by interpreter fuel *)
  | For of string * expr * expr * stmt list
      (** [For (i, lo, hi, body)]: i from lo to hi-1 *)
  | Api_stmt of string * expr list
      (** framework side effect, e.g. "checksum_update_ip" *)
  | Emit of int  (** send packet out of port *)
  | Drop
  | Call_sub of string  (** subroutine call; inlined during lowering *)
  | Return  (** early exit from the handler *)

type state_decl =
  | Scalar of { name : string; width : int; init : int }
  | Array of { name : string; width : int; length : int }
  | Map of { name : string; key_widths : int list; val_fields : (string * int) list; capacity : int }
  | Vector of { name : string; elem_width : int; capacity : int }

let state_name = function
  | Scalar { name; _ } | Array { name; _ } | Map { name; _ } | Vector { name; _ } -> name

(** Footprint in bytes, used by the state-placement ILP. *)
let state_size_bytes = function
  | Scalar { width; _ } -> max 1 (width / 8)
  | Array { width; length; _ } -> max 1 (width / 8) * length
  | Map { key_widths; val_fields; capacity; _ } ->
    let entry =
      List.fold_left (fun acc w -> acc + max 1 (w / 8)) 0 key_widths
      + List.fold_left (fun acc (_, w) -> acc + max 1 (w / 8)) 0 val_fields
      + 4 (* occupancy/valid word *)
    in
    entry * capacity
  | Vector { elem_width; capacity; _ } -> max 1 (elem_width / 8) * capacity + 4

type element = {
  name : string;
  state : state_decl list;
  subs : (string * stmt list) list;  (** subroutines, inlined by the frontend *)
  handler : stmt list;
}

let find_state elt name =
  List.find_opt (fun d -> String.equal (state_name d) name) elt.state

let is_stateful elt = elt.state <> []

(** All header protocols touched by an expression/statement tree; drives the
    emission of framework header-accessor calls. *)
let rec expr_protos e =
  match e with
  | Int _ | Local _ | Global _ | Packet_len | Vec_len _ -> []
  | Hdr f -> [ field_proto f ]
  | Payload_byte e1 | Not e1 -> expr_protos e1
  | Bin (_, a, b) | Cmp (_, a, b) | And_also (a, b) | Or_else (a, b) ->
    expr_protos a @ expr_protos b
  | Arr_get (_, e1) -> expr_protos e1
  | Api_expr (_, args) -> List.concat_map expr_protos args

let rec stmt_protos s =
  match s.node with
  | Let (_, e) | Set_global (_, e) | Set_payload (_, e) | Vec_append (_, e) | Arr_set (_, _, e)
    ->
    expr_protos e
  | Set_hdr (f, e) -> field_proto f :: expr_protos e
  | Map_find (_, keys, _) -> List.concat_map expr_protos keys
  | Map_read (_, _, _) | Map_erase _ | Emit _ | Drop | Call_sub _ | Return -> []
  | Map_write (_, _, e) -> expr_protos e
  | Map_insert (_, keys, vals) -> List.concat_map expr_protos (keys @ vals)
  | Vec_get (_, e, _) | While (e, _) -> expr_protos e
  | Vec_set (_, i, v) -> expr_protos i @ expr_protos v
  | If (c, t, f) -> expr_protos c @ List.concat_map stmt_protos t @ List.concat_map stmt_protos f
  | For (_, lo, hi, body) ->
    expr_protos lo @ expr_protos hi @ List.concat_map stmt_protos body
  | Api_stmt (_, args) -> List.concat_map expr_protos args

let protos_of_handler stmts = List.sort_uniq compare (List.concat_map stmt_protos stmts)

(** Count of syntactic statements, including nested ones. *)
let rec stmt_count s =
  match s.node with
  | If (_, t, f) -> 1 + List.fold_left (fun a x -> a + stmt_count x) 0 (t @ f)
  | While (_, b) | For (_, _, _, b) -> 1 + List.fold_left (fun a x -> a + stmt_count x) 0 b
  | Let _ | Set_global _ | Set_hdr _ | Set_payload _ | Arr_set _ | Map_find _ | Map_read _
  | Map_write _ | Map_insert _ | Map_erase _ | Vec_append _ | Vec_get _ | Vec_set _
  | Api_stmt _ | Emit _ | Drop | Call_sub _ | Return ->
    1

let element_stmt_count elt =
  let body = elt.handler @ List.concat_map snd elt.subs in
  List.fold_left (fun a s -> a + stmt_count s) 0 body
