(** Corpus of real-world-style Click elements (Table 2 + Figure 1).

    Each function rebuilds one of the paper's evaluated Click NFs with
    faithful core logic: the same state structures, framework API usage,
    and control-flow shape.  Accelerator-relevant elements (cmsketch,
    wepdecap, iplookup) implement their algorithms *procedurally* — the
    form Clara's algorithm identification must recognize — and have
    [_accel] variants representing the Clara-suggested port that uses the
    ASIC engines instead. *)

open Ast

(* Flow key shared by the stateful elements: (src ip, dst ip, ports). *)
let flow_key = Build.[ hdr Ip_src; hdr Ip_dst; hdr Tcp_sport; hdr Tcp_dport ]
let reverse_flow_key = Build.[ hdr Ip_dst; hdr Ip_src; hdr Tcp_dport; hdr Tcp_sport ]

(* ------------------------------------------------------------------ *)
(* Stateless header-manipulation elements                              *)
(* ------------------------------------------------------------------ *)

(** Anonymize addresses: keyed hash of src/dst IPs, checksum fix-up. *)
let anonipaddr () =
  let open Build in
  element "anonipaddr"
    [ let_ "key" (i 0x5aa5c3d2);
      let_ "old_src" (hdr Ip_src);
      let_ "old_dst" (hdr Ip_dst);
      let_ "anon_src" ((l "old_src" lxor l "key") land i 0xffffff00 lor (l "old_src" land i 0xff));
      let_ "anon_dst" ((l "old_dst" lxor l "key") land i 0xffffff00 lor (l "old_dst" land i 0xff));
      set_hdr Ip_src (l "anon_src");
      set_hdr Ip_dst (l "anon_dst");
      when_ (hdr Ip_ttl <= i 1) [ drop ];
      set_hdr Ip_ttl (hdr Ip_ttl - i 1);
      api_stmt "checksum_update_ip" [];
      emit 0 ]

(** Validate and normalize TCP acknowledgments. *)
let tcpack () =
  let open Build in
  element "tcpack"
    [ when_ (hdr Ip_proto <> i Packet.tcp_proto) [ drop ];
      let_ "flags" (hdr Tcp_flags);
      let_ "is_ack" (l "flags" land i 0x10);
      if_
        (l "is_ack" <> i 0)
        [ let_ "ack" (hdr Tcp_ack);
          let_ "expected" (hdr Tcp_seq + (pkt_len - ((hdr Ip_hl + hdr Tcp_off) lsl i 2)));
          when_ (l "ack" > l "expected") [ set_hdr Tcp_ack (l "expected") ];
          set_hdr Tcp_win (api "min" [ hdr Tcp_win; i 0xffff ]);
          emit 0 ]
        [ (* not an ACK: pass SYN/FIN through, clamp anything else *)
          when_ ((l "flags" land i 0x03) = i 0) [ set_hdr Tcp_flags (l "flags" lor i 0x10) ];
          emit 0 ] ]

(** Encapsulate the packet in a fresh UDP/IP header. *)
let udpipencap () =
  let open Build in
  element "udpipencap"
    [ let_ "inner_len" pkt_len;
      set_hdr Udp_sport (i 4789);
      set_hdr Udp_dport (i 4789);
      set_hdr Udp_len (l "inner_len" + i 8);
      set_hdr Ip_len (l "inner_len" + i 28);
      set_hdr Ip_proto (i Packet.udp_proto);
      set_hdr Ip_ttl (i 64);
      set_hdr Ip_tos (i 0);
      set_hdr Ip_id ((l "inner_len" lxor api "rand16" []) land i 0xffff);
      set_hdr Ip_src (i 0x0a0a0001);
      set_hdr Ip_dst (i 0x0a0a0002);
      set_hdr Udp_csum (i 0);
      api_stmt "checksum_update_ip" [];
      emit 0 ]

(** Coerce arbitrary IP packets into well-formed TCP (Click's ForceTCP). *)
let forcetcp () =
  let open Build in
  element "forcetcp"
    [ when_ (hdr Eth_type <> i 0x0800) [ drop ];
      let_ "hl" (hdr Ip_hl);
      when_ (l "hl" < i 5) [ set_hdr Ip_hl (i 5); let_ "hl" (i 5) ];
      set_hdr Ip_proto (i Packet.tcp_proto);
      let_ "doff" (hdr Tcp_off);
      when_ (l "doff" < i 5 || l "doff" > i 15) [ set_hdr Tcp_off (i 5) ];
      let_ "flags" (hdr Tcp_flags);
      let_ "bad_mask" (i 0x06);
      (* SYN+RST is never valid together *)
      when_
        ((l "flags" land l "bad_mask") = l "bad_mask")
        [ set_hdr Tcp_flags (l "flags" land not_ (i 0x04) land i 0xff) ];
      let_ "hdr_bytes" ((l "hl" + hdr Tcp_off) lsl i 2);
      when_ (l "hdr_bytes" > hdr Ip_len) [ set_hdr Ip_len (l "hdr_bytes") ];
      when_ ((hdr Tcp_sport = i 0) || (hdr Tcp_dport = i 0))
        [ set_hdr Tcp_sport (api "max" [ hdr Tcp_sport; i 1 ]);
          set_hdr Tcp_dport (api "max" [ hdr Tcp_dport; i 1 ]) ];
      api_stmt "checksum_update_ip" [];
      emit 0 ]

(** Craft a TCP response for an incoming segment (SYN->SYN/ACK etc.). *)
let tcpresp () =
  let open Build in
  element "tcpresp"
    [ when_ (hdr Ip_proto <> i Packet.tcp_proto) [ drop ];
      let_ "flags" (hdr Tcp_flags);
      let_ "tmp_ip" (hdr Ip_src);
      set_hdr Ip_src (hdr Ip_dst);
      set_hdr Ip_dst (l "tmp_ip");
      let_ "tmp_port" (hdr Tcp_sport);
      set_hdr Tcp_sport (hdr Tcp_dport);
      set_hdr Tcp_dport (l "tmp_port");
      let_ "payload_bytes" (pkt_len - ((hdr Ip_hl + hdr Tcp_off) lsl i 2) - i 14);
      if_
        ((l "flags" land i 0x02) <> i 0)
        [ (* SYN: answer SYN/ACK with a hash-derived ISS *)
          let_ "iss" (api "hash32" [ hdr Ip_src; hdr Ip_dst; hdr Tcp_sport ]);
          set_hdr Tcp_ack (hdr Tcp_seq + i 1);
          set_hdr Tcp_seq (l "iss");
          set_hdr Tcp_flags (i 0x12);
          emit 0 ]
        [ if_
            ((l "flags" land i 0x01) <> i 0)
            [ (* FIN: acknowledge and close *)
              set_hdr Tcp_ack (hdr Tcp_seq + i 1);
              set_hdr Tcp_flags (i 0x11);
              emit 0 ]
            [ (* data segment: pure ACK covering the payload *)
              set_hdr Tcp_ack (hdr Tcp_seq + api "max" [ l "payload_bytes"; i 0 ]);
              let_ "old_seq" (hdr Tcp_seq);
              set_hdr Tcp_seq (hdr Tcp_ack);
              set_hdr Tcp_flags (i 0x10);
              set_hdr Tcp_win (api "max" [ i 1024; hdr Tcp_win - l "payload_bytes" ]);
              api_stmt "csum_incr_update" [ l "old_seq"; hdr Tcp_seq ];
              emit 0 ] ] ]

(* ------------------------------------------------------------------ *)
(* Stateful elements with scalar-heavy state (coalescing targets)      *)
(* ------------------------------------------------------------------ *)

(** Stateful TCP traffic generator (the §5.6 coalescing example: clusters
    {sport,dport}, {tcp_state,send_next,recv_next}, and far-apart
    good_pkt/bad_pkt). *)
let tcpgen () =
  let open Build in
  element "tcpgen"
    ~state:
      [ scalar "tcp_state"; scalar "send_next"; scalar "recv_next"; scalar "iss";
        scalar "sport" ~init:1024; scalar "dport" ~init:80; scalar "good_pkt";
        scalar "bad_pkt"; scalar "window" ~init:65535; scalar "gen_count" ]
    [ when_ (hdr Ip_proto <> i Packet.tcp_proto) [ set_g "bad_pkt" (g "bad_pkt" + i 1); drop ];
      (* index the flow: source and destination ports together *)
      set_hdr Tcp_sport (g "sport");
      set_hdr Tcp_dport (g "dport");
      let_ "flags" (hdr Tcp_flags);
      if_
        ((l "flags" land i 0x10) <> i 0 && (g "tcp_state" = i 0))
        [ (* ACK of our SYN: connection established *)
          when_
            (hdr Tcp_ack = (g "iss" + i 1))
            [ set_g "tcp_state" (i 1);
              set_g "send_next" (g "iss" + i 1);
              set_g "recv_next" (hdr Tcp_seq + i 1) ] ]
        [ if_
            (g "tcp_state" = i 1)
            [ (* established: emit next segment *)
              set_hdr Tcp_seq (g "send_next");
              set_hdr Tcp_ack (g "recv_next");
              set_g "send_next" (g "send_next" + (pkt_len - i 54));
              set_hdr Tcp_win (g "window");
              set_g "good_pkt" (g "good_pkt" + i 1) ]
            [ (* closed: start a handshake *)
              set_g "iss" (api "hash32" [ g "gen_count"; g "sport" ]);
              set_hdr Tcp_seq (g "iss");
              set_hdr Tcp_flags (i 0x02);
              set_g "tcp_state" (i 0) ] ];
      set_g "gen_count" (g "gen_count" + i 1);
      when_ ((g "gen_count" land i 0x3ff) = i 0)
        [ set_g "sport" (((g "sport" + i 1) land i 0xffff) lor i 1024) ];
      api_stmt "checksum_update_ip" [];
      emit 0 ]

(** Aggregate counters keyed by destination prefix. *)
let aggcounter () =
  let open Build in
  element "aggcounter"
    ~state:
      [ array "agg_counts" 1024; scalar "total_count"; scalar "total_bytes";
        scalar "active_buckets" ]
    [ let_ "bucket" (api "hash32" [ hdr Ip_dst lsr i 8 ] land i 1023);
      let_ "old" (arr_get "agg_counts" (l "bucket"));
      when_ (l "old" = i 0) [ set_g "active_buckets" (g "active_buckets" + i 1) ];
      arr_set "agg_counts" (l "bucket") (l "old" + i 1);
      set_g "total_count" (g "total_count" + i 1);
      set_g "total_bytes" (g "total_bytes" + pkt_len);
      emit 0 ]

(** Pass packets inside a sliding time window; track per-window stats. *)
let timefilter () =
  let open Build in
  element "timefilter"
    ~state:
      [ scalar "window_start"; scalar "window_len" ~init:1024; scalar "in_window";
        scalar "rejected"; scalar "last_stamp"; scalar "epoch" ]
    [ let_ "ts" (api "now" []);
      set_g "last_stamp" (l "ts");
      when_
        (l "ts" >= (g "window_start" + g "window_len"))
        [ (* rotate the window *)
          set_g "window_start" (l "ts");
          set_g "epoch" (g "epoch" + i 1);
          set_g "in_window" (i 0) ];
      if_
        (l "ts" >= g "window_start" && l "ts" < (g "window_start" + g "window_len"))
        [ set_g "in_window" (g "in_window" + i 1);
          (* tag the packet with the epoch for downstream elements *)
          set_hdr Ip_id (g "epoch" land i 0xffff);
          emit 0 ]
        [ set_g "rejected" (g "rejected" + i 1); drop ] ]

(** TCP web-server front-end state machine (Figure 13's "webtcp"). *)
let webtcp () =
  let open Build in
  element "webtcp"
    ~state:
      [ scalar "listen_port" ~init:80; scalar "conn_state"; scalar "req_count";
        scalar "resp_count"; scalar "bytes_in"; scalar "bytes_out"; scalar "cur_seq";
        scalar "cur_ack"; scalar "retrans"; scalar "drops" ]
    [ when_ (hdr Ip_proto <> i Packet.tcp_proto) [ set_g "drops" (g "drops" + i 1); drop ];
      when_ (hdr Tcp_dport <> g "listen_port") [ set_g "drops" (g "drops" + i 1); drop ];
      let_ "flags" (hdr Tcp_flags);
      if_
        ((l "flags" land i 0x02) <> i 0)
        [ (* SYN: move to SYN_RCVD *)
          set_g "conn_state" (i 1);
          set_g "cur_seq" (api "hash32" [ hdr Ip_src; hdr Tcp_sport ]);
          set_g "cur_ack" (hdr Tcp_seq + i 1);
          set_hdr Tcp_flags (i 0x12);
          set_hdr Tcp_seq (g "cur_seq");
          set_hdr Tcp_ack (g "cur_ack");
          emit 0 ]
        [ if_
            (g "conn_state" >= i 1)
            [ set_g "req_count" (g "req_count" + i 1);
              set_g "bytes_in" (g "bytes_in" + pkt_len);
              (* serve: advance sequence space and echo an ACK *)
              set_g "cur_seq" (g "cur_seq" + i 512);
              set_g "cur_ack" (hdr Tcp_seq + (pkt_len - i 54));
              set_hdr Tcp_seq (g "cur_seq");
              set_hdr Tcp_ack (g "cur_ack");
              set_g "resp_count" (g "resp_count" + i 1);
              set_g "bytes_out" (g "bytes_out" + i 512);
              when_ (hdr Tcp_seq < g "cur_ack") [ set_g "retrans" (g "retrans" + i 1) ];
              emit 0 ]
            [ set_g "drops" (g "drops" + i 1); drop ] ] ]

(* ------------------------------------------------------------------ *)
(* Accelerator-algorithm elements (procedural + _accel ports)          *)
(* ------------------------------------------------------------------ *)

(** Procedural CRC32 over the first [n] payload bytes: the bitwise loop
    Clara's classifier recognizes (§4.1: high density of xor/and/shifts). *)
let crc32_block ~bytes ~dst =
  let open Build in
  [ let_ dst (i 0xffffff);
    for_ "ci" (i 0) (i bytes)
      [ let_ "byte" (payload (l "ci"));
        let_ dst (l dst lxor l "byte");
        for_ "cb" (i 0) (i 8)
          [ let_ "lsb" (l dst land i 1);
            let_ dst (l dst lsr i 1);
            when_ (l "lsb" <> i 0) [ let_ dst (l dst lxor i 0xedb88320) ] ] ] ]

(** Count-min sketch with procedural CRC row hashes. *)
let cmsketch () =
  let open Build in
  element "cmsketch"
    ~state:[ array "sketch0" 2048; array "sketch1" 2048; scalar "updates"; scalar "heavy_flag" ]
    (crc32_block ~bytes:16 ~dst:"sig"
    @ [ let_ "h0" (l "sig" land i 2047);
        let_ "h1" ((l "sig" lsr i 11) lxor (hdr Ip_src land i 2047) land i 2047);
        let_ "c0" (arr_get "sketch0" (l "h0") + i 1);
        let_ "c1" (arr_get "sketch1" (l "h1") + i 1);
        arr_set "sketch0" (l "h0") (l "c0");
        arr_set "sketch1" (l "h1") (l "c1");
        set_g "updates" (g "updates" + i 1);
        let_ "estimate" (api "min" [ l "c0"; l "c1" ]);
        when_ (l "estimate" > i 1000) [ set_g "heavy_flag" (i 1) ];
        emit 0 ])

(** The Clara port of cmsketch: row signatures from the CRC engine. *)
let cmsketch_accel () =
  let open Build in
  element "cmsketch_accel"
    ~state:[ array "sketch0" 2048; array "sketch1" 2048; scalar "updates"; scalar "heavy_flag" ]
    [ let_ "sig" (api "crc32_payload" [ i 0; i 16 ]);
      let_ "h0" (l "sig" land i 2047);
      let_ "h1" ((l "sig" lsr i 11) lxor (hdr Ip_src land i 2047) land i 2047);
      let_ "c0" (arr_get "sketch0" (l "h0") + i 1);
      let_ "c1" (arr_get "sketch1" (l "h1") + i 1);
      arr_set "sketch0" (l "h0") (l "c0");
      arr_set "sketch1" (l "h1") (l "c1");
      set_g "updates" (g "updates" + i 1);
      let_ "estimate" (api "min" [ l "c0"; l "c1" ]);
      when_ (l "estimate" > i 1000) [ set_g "heavy_flag" (i 1) ];
      emit 0 ]

(** WEP decapsulation: RC4-style keystream mix plus a procedural CRC32
    integrity check (the paper's 'rc4' element inside wepdecap). *)
let wepdecap () =
  let open Build in
  element "wepdecap"
    ~state:[ array "rc4_s" 256; scalar "decap_count"; scalar "icv_fail" ]
    ([ let_ "ki" (i 0);
       let_ "kj" (i 0);
       (* keystream mixing over the first payload bytes *)
       for_ "wi" (i 0) (i 8)
         [ let_ "ki" ((l "ki" + i 1) land i 255);
           let_ "sv" (arr_get "rc4_s" (l "ki"));
           let_ "kj" ((l "kj" + l "sv") land i 255);
           let_ "swap" (arr_get "rc4_s" (l "kj"));
           arr_set "rc4_s" (l "ki") (l "swap");
           arr_set "rc4_s" (l "kj") (l "sv");
           let_ "ks" (arr_get "rc4_s" ((l "sv" + l "swap") land i 255));
           set_payload (l "wi") (payload (l "wi") lxor l "ks") ] ]
    @ crc32_block ~bytes:20 ~dst:"icv"
    @ [ let_ "expected"
          (payload (i 20) lor (payload (i 21) lsl i 8) lor (payload (i 22) lsl i 16));
        if_
          ((l "icv" land i 0xffffff) = l "expected")
          [ set_g "decap_count" (g "decap_count" + i 1); emit 0 ]
          [ set_g "icv_fail" (g "icv_fail" + i 1); drop ] ])

(** Clara port of wepdecap: integrity check through the CRC engine. *)
let wepdecap_accel () =
  let open Build in
  element "wepdecap_accel"
    ~state:[ array "rc4_s" 256; scalar "decap_count"; scalar "icv_fail" ]
    [ let_ "ki" (i 0);
      let_ "kj" (i 0);
      for_ "wi" (i 0) (i 8)
        [ let_ "ki" ((l "ki" + i 1) land i 255);
          let_ "sv" (arr_get "rc4_s" (l "ki"));
          let_ "kj" ((l "kj" + l "sv") land i 255);
          let_ "swap" (arr_get "rc4_s" (l "kj"));
          arr_set "rc4_s" (l "ki") (l "swap");
          arr_set "rc4_s" (l "kj") (l "sv");
          let_ "ks" (arr_get "rc4_s" ((l "sv" + l "swap") land i 255));
          set_payload (l "wi") (payload (l "wi") lxor l "ks") ];
      let_ "icv" (api "crc32_payload" [ i 0; i 20 ]);
      let_ "expected"
        (payload (i 20) lor (payload (i 21) lsl i 8) lor (payload (i 22) lsl i 16));
      if_
        ((l "icv" land i 0xffffff) = l "expected")
        [ set_g "decap_count" (g "decap_count" + i 1); emit 0 ]
        [ set_g "icv_fail" (g "icv_fail" + i 1); drop ] ]

let log2_ceil n =
  let rec go acc v = if v >= n then acc else go (acc + 1) (v * 2) in
  go 0 1

(** Longest-prefix-match IP lookup via a procedural binary-trie walk whose
    depth scales with the rule count (the paper's 'radixiplookup'). *)
let iplookup_with_rules rules =
  let depth = max 2 (log2_ceil rules + 4) in
  let trie_nodes = 4 * rules in
  let open Build in
  element (Printf.sprintf "iplookup_%d" rules)
    ~state:
      [ array "trie_left" trie_nodes; array "trie_right" trie_nodes;
        array "trie_nexthop" trie_nodes; scalar "lookups"; scalar "default_routes" ]
    [ let_ "addr" (hdr Ip_dst);
      let_ "node" (i 0);
      let_ "best" (i 0);
      for_ "bit" (i 0) (i depth)
        [ (* pointer chase: child index from the current address bit *)
          let_ "b" ((l "addr" lsr (i 31 - l "bit")) land i 1);
          let_ "nh" (arr_get "trie_nexthop" (l "node"));
          when_ (l "nh" <> i 0) [ let_ "best" (l "nh") ];
          if_
            (l "b" = i 0)
            [ let_ "node" (arr_get "trie_left" (l "node")) ]
            [ let_ "node" (arr_get "trie_right" (l "node")) ] ];
      set_g "lookups" (g "lookups" + i 1);
      if_
        (l "best" = i 0)
        [ set_g "default_routes" (g "default_routes" + i 1); emit 0 ]
        [ set_hdr Ip_ttl (hdr Ip_ttl - i 1); api_stmt "csum_incr_update" [ i 0; i 1 ]; emit (* port *) 1 ] ]

let iplookup () = iplookup_with_rules 256

(** Clara port of iplookup: flow-cache front-end plus the LPM engine. *)
let iplookup_accel_with_rules rules =
  let open Build in
  element (Printf.sprintf "iplookup_accel_%d" rules)
    ~state:[ scalar "lookups"; scalar "default_routes" ]
    [ let_ "hit" (api "flow_cache_lookup" [ hdr Ip_dst ]);
      let_ "best" (i 0);
      if_
        (l "hit" <> i 0)
        [ let_ "best" (hdr Ip_dst land i 0xff) ]
        [ let_ "best" (api "lpm_lookup" [ hdr Ip_dst ]) ];
      set_g "lookups" (g "lookups" + i 1);
      if_
        (l "best" = i 0)
        [ set_g "default_routes" (g "default_routes" + i 1); emit 0 ]
        [ set_hdr Ip_ttl (hdr Ip_ttl - i 1); api_stmt "csum_incr_update" [ i 0; i 1 ]; emit 1 ] ]

let iplookup_accel () = iplookup_accel_with_rules 256

(* ------------------------------------------------------------------ *)
(* Map-heavy stateful elements                                         *)
(* ------------------------------------------------------------------ *)

(** Bidirectional flow rewriter (Click's IPRewriter core). *)
let iprewriter () =
  let open Build in
  element "iprewriter"
    ~state:
      [ map_decl "fwd_map" ~key_widths:[ 32; 32; 16; 16 ]
          ~val_fields:[ ("new_ip", 32); ("new_port", 16) ] ~capacity:4096;
        map_decl "rev_map" ~key_widths:[ 32; 32; 16; 16 ]
          ~val_fields:[ ("new_ip", 32); ("new_port", 16) ] ~capacity:4096;
        scalar "rewrites"; scalar "misses" ]
    [ map_find "fwd_map" flow_key "fwd_hit";
      if_
        (l "fwd_hit" <> i 0)
        [ map_read "fwd_map" "new_ip" "nip";
          map_read "fwd_map" "new_port" "nport";
          set_hdr Ip_dst (l "nip");
          set_hdr Tcp_dport (l "nport");
          set_g "rewrites" (g "rewrites" + i 1);
          api_stmt "checksum_update_ip" [];
          emit 0 ]
        [ map_find "rev_map" reverse_flow_key "rev_hit";
          if_
            (l "rev_hit" <> i 0)
            [ map_read "rev_map" "new_ip" "nip";
              map_read "rev_map" "new_port" "nport";
              set_hdr Ip_src (l "nip");
              set_hdr Tcp_sport (l "nport");
              set_g "rewrites" (g "rewrites" + i 1);
              api_stmt "checksum_update_ip" [];
              emit 1 ]
            [ (* install both directions *)
              let_ "mapped_ip" (i 0x0a630000 lor (hdr Ip_src land i 0xffff));
              let_ "mapped_port" ((api "hash32" [ hdr Tcp_sport; hdr Ip_src ] land i 0x3fff) + i 1024);
              map_insert "fwd_map" flow_key [ l "mapped_ip"; l "mapped_port" ];
              map_insert "rev_map" reverse_flow_key [ hdr Ip_src; hdr Tcp_sport ];
              set_g "misses" (g "misses" + i 1);
              emit 0 ] ] ]

(** Many-rule header classifier feeding per-class counters. *)
let ipclassifier () =
  let open Build in
  let rule k proto port port_hi prefix =
    when_
      ((hdr Ip_proto = i proto) && ((hdr Ip_dst lsr i 16) = i prefix)
      && (hdr Tcp_dport >= i port)
      && (hdr Tcp_dport < i port_hi))
      [ let_ "class" (i k);
        arr_set "class_counts" (i k) (arr_get "class_counts" (i k) + i 1) ]
  in
  let rules =
    List.init 24 (fun k ->
        let proto = if Stdlib.( = ) (k mod 3) 0 then Packet.udp_proto else Packet.tcp_proto in
        let port = Stdlib.( + ) 80 (Stdlib.( * ) k 32) in
        rule k proto port (Stdlib.( + ) port 16) (Stdlib.( + ) 0x0a00 (Stdlib.( * ) k 7)))
  in
  element "ipclassifier"
    ~state:[ array "class_counts" 64; scalar "unclassified"; scalar "seen" ]
    ([ set_g "seen" (g "seen" + i 1); let_ "class" (i (-1)) ]
    @ rules
    @ [ if_
          (l "class" < i 0)
          [ set_g "unclassified" (g "unclassified" + i 1); drop ]
          [ (* class 0..7 keeps priority handling *)
            when_ (l "class" < i 8) [ set_hdr Ip_tos (i 0x10) ];
            emit 0 ] ])

(* ------------------------------------------------------------------ *)
(* Large composite NFs                                                 *)
(* ------------------------------------------------------------------ *)

(** DNS proxy over UDP: query cache with negative entries, label parsing
    with compression pointers, per-qtype accounting, response-code
    handling, truncation retry and upstream-miss rate limiting. *)
let dnsproxy () =
  let open Build in
  element "DNSProxy"
    ~state:
      [ map_decl "dns_cache" ~key_widths:[ 32; 16 ]
          ~val_fields:[ ("answer_ip", 32); ("ttl", 16); ("hits", 16); ("negative", 16) ]
          ~capacity:8192;
        array "qtype_counts" 32;
        scalar "queries"; scalar "answers"; scalar "cache_hits"; scalar "cache_misses";
        scalar "neg_hits"; scalar "malformed"; scalar "truncated"; scalar "servfail";
        scalar "upstream_budget" ~init:256; scalar "upstream_dropped";
        vector "pending_ids" ~capacity:512 ]
    ~subs:
      [ ( "parse_qname",
          [ (* walk DNS labels: 12-byte header, then length-prefixed labels;
               a 0xc0 prefix is a compression pointer ending the name *)
            let_ "qoff" (i 12);
            let_ "qhash" (i 0x1505);
            let_ "compressed" (i 0);
            let_ "label_len" (payload (l "qoff"));
            while_
              (l "label_len" <> i 0 && l "qoff" < i 24 && l "compressed" = i 0)
              [ if_
                  ((l "label_len" land i 0xc0) = i 0xc0)
                  [ (* pointer: mix in the target offset and stop *)
                    let_ "ptr" (((l "label_len" land i 0x3f) lsl i 8) lor payload (l "qoff" + i 1));
                    let_ "qhash" ((l "qhash" lsl i 5) + l "qhash" + l "ptr" land i 0xffffff);
                    let_ "compressed" (i 1) ]
                  [ for_ "li" (i 0) (l "label_len")
                      [ let_ "ch" (payload (l "qoff" + i 1 + l "li"));
                        (* case-fold: DNS names compare case-insensitively *)
                        when_ (l "ch" >= i 65 && l "ch" <= i 90) [ let_ "ch" (l "ch" + i 32) ];
                        let_ "qhash" ((l "qhash" lsl i 5) + l "qhash" + l "ch" land i 0xffffff) ];
                    let_ "qoff" (l "qoff" + l "label_len" + i 1);
                    let_ "label_len" (payload (l "qoff")) ] ] ] );
        ( "swap_and_reply",
          [ let_ "tmp_ip" (hdr Ip_src);
            set_hdr Ip_src (hdr Ip_dst);
            set_hdr Ip_dst (l "tmp_ip");
            let_ "tmp_port" (hdr Udp_sport);
            set_hdr Udp_sport (hdr Udp_dport);
            set_hdr Udp_dport (l "tmp_port");
            api_stmt "checksum_update_ip" [] ] ) ]
    [ when_ (hdr Ip_proto <> i Packet.udp_proto) [ drop ];
      when_ (hdr Udp_dport <> i 53 && hdr Udp_sport <> i 53) [ drop ];
      when_ (hdr Udp_len < i 20) [ set_g "malformed" (g "malformed" + i 1); drop ];
      let_ "dns_id" (payload (i 0) lor (payload (i 1) lsl i 8));
      let_ "flags_hi" (payload (i 2));
      let_ "qr" (l "flags_hi" lsr i 7);
      let_ "tc" ((l "flags_hi" lsr i 1) land i 1);
      let_ "rcode" (payload (i 3) land i 0x0f);
      (* qtype sits right after the name; approximate from the fixed probe
         window and account per type *)
      let_ "qtype" (payload (i 24) land i 31);
      arr_set "qtype_counts" (l "qtype") (arr_get "qtype_counts" (l "qtype") + i 1);
      call "parse_qname";
      if_
        (l "qr" = i 0)
        [ (* query path *)
          set_g "queries" (g "queries" + i 1);
          map_find "dns_cache" [ l "qhash"; l "qtype" ] "hit";
          if_
            (l "hit" <> i 0)
            [ map_read "dns_cache" "negative" "neg";
              if_
                (l "neg" <> i 0)
                [ (* cached NXDOMAIN: answer rcode 3 without an A record *)
                  set_g "neg_hits" (g "neg_hits" + i 1);
                  set_payload (i 2) (i 0x80);
                  set_payload (i 3) (i 0x03);
                  call "swap_and_reply";
                  emit 0 ]
                [ set_g "cache_hits" (g "cache_hits" + i 1);
                  map_read "dns_cache" "answer_ip" "aip";
                  map_read "dns_cache" "hits" "hcount";
                  map_write "dns_cache" "hits" (l "hcount" + i 1);
                  (* synthesize the answer record in place *)
                  set_payload (i 2) (i 0x80);
                  set_payload (i 3) (i 0x00);
                  set_payload (i 7) (i 1);  (* ancount = 1 *)
                  set_payload (i 28) (l "aip" land i 0xff);
                  set_payload (i 29) ((l "aip" lsr i 8) land i 0xff);
                  set_payload (i 30) ((l "aip" lsr i 16) land i 0xff);
                  set_payload (i 31) ((l "aip" lsr i 24) land i 0xff);
                  call "swap_and_reply";
                  set_g "answers" (g "answers" + i 1);
                  emit 0 ] ]
            [ (* miss: forward upstream under a budget *)
              set_g "cache_misses" (g "cache_misses" + i 1);
              if_
                (g "upstream_budget" > i 0)
                [ set_g "upstream_budget" (g "upstream_budget" - i 1);
                  vec_append "pending_ids" (l "dns_id");
                  emit 1 ]
                [ (* over budget: SERVFAIL back to the client *)
                  set_g "upstream_dropped" (g "upstream_dropped" + i 1);
                  set_payload (i 2) (i 0x80);
                  set_payload (i 3) (i 0x02);
                  call "swap_and_reply";
                  emit 0 ] ] ]
        [ (* response path *)
          set_g "upstream_budget" (api "min" [ g "upstream_budget" + i 1; i 256 ]);
          when_ (l "tc" <> i 0)
            [ (* truncated: client must retry over TCP; don't cache *)
              set_g "truncated" (g "truncated" + i 1);
              emit 0 ];
          if_
            (l "rcode" = i 0)
            [ let_ "aip"
                (payload (i 28) lor (payload (i 29) lsl i 8) lor (payload (i 30) lsl i 16)
                lor (payload (i 31) lsl i 24));
              map_insert "dns_cache" [ l "qhash"; l "qtype" ] [ l "aip"; i 300; i 0; i 0 ];
              set_g "answers" (g "answers" + i 1);
              emit 0 ]
            [ if_
                (l "rcode" = i 3)
                [ (* NXDOMAIN: negative-cache with a short TTL *)
                  map_insert "dns_cache" [ l "qhash"; l "qtype" ] [ i 0; i 30; i 0; i 1 ];
                  emit 0 ]
                [ set_g "servfail" (g "servfail" + i 1); emit 0 ] ] ] ]

(** Mazu-NAT: full bidirectional NAT with port allocation, flow timeout
    scanning and checksum maintenance — the paper's largest NF. *)
let mazu_nat () =
  let open Build in
  element "Mazu-NAT"
    ~state:
      [ map_decl "int_map" ~key_widths:[ 32; 32; 16; 16 ]
          ~val_fields:[ ("ext_ip", 32); ("ext_port", 16); ("last_seen", 32); ("tcp_state", 16) ]
          ~capacity:8192;
        map_decl "ext_map" ~key_widths:[ 32; 16 ]
          ~val_fields:[ ("int_ip", 32); ("int_port", 16); ("last_seen", 32) ] ~capacity:8192;
        scalar "next_tcp_port" ~init:10000; scalar "next_udp_port" ~init:32000;
        scalar "nat_ip" ~init:0xc0a80101;
        scalar "translations"; scalar "expired"; scalar "rejected"; scalar "syn_seen";
        scalar "fin_seen"; scalar "rst_seen"; scalar "icmp_passed"; scalar "hairpins";
        scalar "port_wraps"; scalar "bytes_out"; scalar "bytes_in";
        vector "recent_ports" ~capacity:128 ]
    ~subs:
      [ ( "alloc_port",
          [ if_
              (hdr Ip_proto = i Packet.udp_proto)
              [ set_g "next_udp_port" (g "next_udp_port" + i 1);
                when_ (g "next_udp_port" > i 60000)
                  [ set_g "next_udp_port" (i 32000); set_g "port_wraps" (g "port_wraps" + i 1) ];
                let_ "fresh_port" (g "next_udp_port") ]
              [ set_g "next_tcp_port" (g "next_tcp_port" + i 1);
                when_ (g "next_tcp_port" > i 31999)
                  [ set_g "next_tcp_port" (i 10000); set_g "port_wraps" (g "port_wraps" + i 1) ];
                let_ "fresh_port" (g "next_tcp_port") ];
            vec_append "recent_ports" (l "fresh_port") ] );
        ( "track_flags",
          [ when_
              (hdr Ip_proto = i Packet.tcp_proto)
              [ let_ "fl" (hdr Tcp_flags);
                when_ ((l "fl" land i 0x02) <> i 0) [ set_g "syn_seen" (g "syn_seen" + i 1) ];
                when_ ((l "fl" land i 0x01) <> i 0) [ set_g "fin_seen" (g "fin_seen" + i 1) ];
                when_ ((l "fl" land i 0x04) <> i 0) [ set_g "rst_seen" (g "rst_seen" + i 1) ] ] ] ) ]
    [ when_ (hdr Eth_type <> i 0x0800) [ set_g "rejected" (g "rejected" + i 1); drop ];
      (* ICMP passes through untranslated (error relay) *)
      when_ (hdr Ip_proto = i 1)
        [ set_g "icmp_passed" (g "icmp_passed" + i 1); emit 0 ];
      when_ (hdr Ip_proto <> i Packet.tcp_proto && hdr Ip_proto <> i Packet.udp_proto)
        [ set_g "rejected" (g "rejected" + i 1); drop ];
      call "track_flags";
      let_ "hdr_size" ((hdr Ip_hl + hdr Tcp_off) lsl i 2);
      when_ (l "hdr_size" > hdr Ip_len) [ set_g "rejected" (g "rejected" + i 1); drop ];
      when_ (hdr Ip_ttl <= i 1) [ set_g "rejected" (g "rejected" + i 1); drop ];
      set_hdr Ip_ttl (hdr Ip_ttl - i 1);
      let_ "from_internal" (api "min" [ (hdr Ip_src lsr i 24) = i 0x0a; i 1 ]);
      (* hairpin: internal source talking to the NAT address itself *)
      when_
        (l "from_internal" <> i 0 && (hdr Ip_dst = g "nat_ip"))
        [ set_g "hairpins" (g "hairpins" + i 1) ];
      if_
        (l "from_internal" <> i 0)
        [ (* outbound: translate source *)
          set_g "bytes_out" (g "bytes_out" + pkt_len);
          map_find "int_map" flow_key "hit";
          if_
            (l "hit" <> i 0)
            [ map_read "int_map" "ext_ip" "eip";
              map_read "int_map" "ext_port" "eport";
              map_write "int_map" "last_seen" (api "now" []);
              (* advance the tracked TCP state on FIN *)
              when_
                ((hdr Ip_proto = i Packet.tcp_proto) && ((hdr Tcp_flags land i 0x01) <> i 0))
                [ map_write "int_map" "tcp_state" (i 2) ];
              let_ "old_src" (hdr Ip_src);
              set_hdr Ip_src (l "eip");
              set_hdr Tcp_sport (l "eport");
              api_stmt "csum_incr_update" [ l "old_src"; l "eip" ];
              set_g "translations" (g "translations" + i 1);
              emit 0 ]
            [ (* allocate a binding from the per-protocol pool *)
              call "alloc_port";
              let_ "eport" (l "fresh_port");
              map_insert "int_map" flow_key [ g "nat_ip"; l "eport"; api "now" []; i 1 ];
              map_insert "ext_map" [ g "nat_ip"; l "eport" ]
                [ hdr Ip_src; hdr Tcp_sport; api "now" [] ];
              let_ "old_src" (hdr Ip_src);
              set_hdr Ip_src (g "nat_ip");
              set_hdr Tcp_sport (l "eport");
              api_stmt "csum_incr_update" [ l "old_src"; g "nat_ip" ];
              set_g "translations" (g "translations" + i 1);
              emit 0 ] ]
        [ (* inbound: reverse translate destination *)
          set_g "bytes_in" (g "bytes_in" + pkt_len);
          map_find "ext_map" [ hdr Ip_dst; hdr Tcp_dport ] "hit";
          if_
            (l "hit" <> i 0)
            [ map_read "ext_map" "int_ip" "iip";
              map_read "ext_map" "int_port" "iport";
              map_read "ext_map" "last_seen" "seen";
              if_
                ((api "now" [] - l "seen") > i 100000)
                [ (* stale binding: expire it *)
                  map_erase "ext_map";
                  set_g "expired" (g "expired" + i 1);
                  drop ]
                [ map_write "ext_map" "last_seen" (api "now" []);
                  let_ "old_dst" (hdr Ip_dst);
                  set_hdr Ip_dst (l "iip");
                  set_hdr Tcp_dport (l "iport");
                  api_stmt "csum_incr_update" [ l "old_dst"; l "iip" ];
                  set_g "translations" (g "translations" + i 1);
                  emit 1 ] ]
            [ (* unsolicited inbound: RSTs are dropped quietly *)
              when_
                ((hdr Ip_proto = i Packet.tcp_proto) && ((hdr Tcp_flags land i 0x04) <> i 0))
                [ drop ];
              set_g "rejected" (g "rejected" + i 1);
              drop ] ] ]

(** UDP flow counter with a small classifier front-end (the §5.5 placement
    example: small, hot classifier + counter belong in IMEM). *)
let udpcount () =
  let open Build in
  element "UDPCount"
    ~state:
      [ array "port_class" 64;  (* the small 'ipclassifier' table *)
        scalar "counter";  (* the hot packet counter *)
        map_decl "flow_counts" ~key_widths:[ 32; 32 ] ~val_fields:[ ("pkts", 32); ("bytes", 32) ]
          ~capacity:16384;
        scalar "udp_total"; scalar "non_udp" ]
    [ when_ (hdr Ip_proto <> i Packet.udp_proto) [ set_g "non_udp" (g "non_udp" + i 1); drop ];
      set_g "counter" (g "counter" + i 1);
      set_g "udp_total" (g "udp_total" + i 1);
      let_ "cls" (arr_get "port_class" (hdr Udp_dport land i 63));
      when_ (l "cls" = i 0)
        [ (* unknown class: classify by well-known ranges *)
          if_
            (hdr Udp_dport < i 1024)
            [ arr_set "port_class" (hdr Udp_dport land i 63) (i 1) ]
            [ arr_set "port_class" (hdr Udp_dport land i 63) (i 2) ] ];
      map_find "flow_counts" [ hdr Ip_src; hdr Ip_dst ] "hit";
      if_
        (l "hit" <> i 0)
        [ map_read "flow_counts" "pkts" "p";
          map_read "flow_counts" "bytes" "b";
          map_write "flow_counts" "pkts" (l "p" + i 1);
          map_write "flow_counts" "bytes" (l "b" + pkt_len) ]
        [ map_insert "flow_counts" [ hdr Ip_src; hdr Ip_dst ] [ i 1; pkt_len ] ];
      emit 0 ]

(** Web workload generator: session vector, request state machine. *)
let webgen () =
  let open Build in
  element "WebGen"
    ~state:
      [ vector "sessions" ~capacity:1024; scalar "active_sessions"; scalar "requests";
        scalar "responses"; scalar "next_session" ~init:1; scalar "bytes_generated";
        scalar "errors_4xx"; scalar "errors_5xx"; scalar "retries"; scalar "keepalive_reuse";
        array "latency_hist" 16; array "uri_mix" 8;
        map_decl "session_state" ~key_widths:[ 32 ]
          ~val_fields:[ ("stage", 16); ("reqs", 16); ("sent_at", 32); ("retries_left", 16) ]
          ~capacity:2048 ]
    ~subs:
      [ ( "write_request",
          [ (* method rotates through GET/HEAD/POST by request count *)
            let_ "meth" (l "reqs" land i 3);
            if_
              (l "meth" = i 2)
              [ set_payload (i 0) (i 80);  (* 'P' *)
                set_payload (i 1) (i 79);  (* 'O' *)
                set_payload (i 2) (i 83);  (* 'S' *)
                set_payload (i 3) (i 84) ]
              [ set_payload (i 0) (i 71);  (* 'G' *)
                set_payload (i 1) (i 69);  (* 'E' *)
                set_payload (i 2) (i 84);  (* 'T' *)
                set_payload (i 3) (i 32) ];
            (* pick a URI template and record the mix *)
            let_ "uri" (api "hash32" [ l "sid"; l "reqs" ] land i 7);
            arr_set "uri_mix" (l "uri") (arr_get "uri_mix" (l "uri") + i 1);
            for_ "ui" (i 4) (i 12)
              [ set_payload (l "ui") (i 97 + (l "uri" + l "ui") land i 25) ] ] ) ]
    [ let_ "sid" (api "hash32" [ hdr Ip_src; hdr Tcp_sport ] land i 0xffff);
      map_find "session_state" [ l "sid" ] "known";
      if_
        (l "known" <> i 0)
        [ map_read "session_state" "stage" "stage";
          map_read "session_state" "reqs" "reqs";
          if_
            (l "stage" = i 0)
            [ (* send the next request on the kept-alive connection *)
              call "write_request";
              when_ (l "reqs" > i 0) [ set_g "keepalive_reuse" (g "keepalive_reuse" + i 1) ];
              map_write "session_state" "stage" (i 1);
              map_write "session_state" "reqs" (l "reqs" + i 1);
              map_write "session_state" "sent_at" (api "now" []);
              set_g "requests" (g "requests" + i 1);
              set_g "bytes_generated" (g "bytes_generated" + pkt_len);
              emit 0 ]
            [ (* response: parse the status class from the payload *)
              set_g "responses" (g "responses" + i 1);
              map_read "session_state" "sent_at" "sent";
              let_ "rtt" (api "now" [] - l "sent");
              arr_set "latency_hist" (api "min" [ l "rtt" lsr i 2; i 15 ])
                (arr_get "latency_hist" (api "min" [ l "rtt" lsr i 2; i 15 ]) + i 1);
              let_ "status_class" (payload (i 9) - i 48);
              when_ (l "status_class" = i 4) [ set_g "errors_4xx" (g "errors_4xx" + i 1) ];
              if_
                (l "status_class" = i 5)
                [ (* server error: retry with backoff while budget remains *)
                  set_g "errors_5xx" (g "errors_5xx" + i 1);
                  map_read "session_state" "retries_left" "budget";
                  if_
                    (l "budget" > i 0)
                    [ map_write "session_state" "retries_left" (l "budget" - i 1);
                      map_write "session_state" "stage" (i 0);
                      set_g "retries" (g "retries" + i 1);
                      emit 0 ]
                    [ map_erase "session_state";
                      set_g "active_sessions" (g "active_sessions" - i 1);
                      drop ] ]
                [ if_
                    (l "reqs" >= i 4)
                    [ map_erase "session_state";
                      set_g "active_sessions" (g "active_sessions" - i 1);
                      drop ]
                    [ map_write "session_state" "stage" (i 0); emit 0 ] ] ] ]
        [ (* new session *)
          map_insert "session_state" [ l "sid" ] [ i 0; i 0; api "now" []; i 2 ];
          vec_append "sessions" (l "sid");
          set_g "active_sessions" (g "active_sessions" + i 1);
          set_g "next_session" (g "next_session" + i 1);
          emit 0 ] ]

(* ------------------------------------------------------------------ *)
(* Figure-1 NFs (performance-variability benchmarks)                   *)
(* ------------------------------------------------------------------ *)

(** Simple deep packet inspection: scan the payload for a signature; cost
    scales with packet size (the paper's DPI variants). *)
let dpi () =
  let open Build in
  element "dpi"
    ~state:[ scalar "matches"; scalar "scanned"; array "sig_bytes" 8 ]
    [ set_g "scanned" (g "scanned" + i 1);
      let_ "found" (i 0);
      (* scan up to the DPI snap length (signatures live early in the payload) *)
      let_ "limit" (api "min" [ api "max" [ pkt_len - i 54 - i 4; i 0 ]; i 600 ]);
      for_ "di" (i 0) (l "limit")
        [ let_ "b0" (payload (l "di"));
          when_
            (l "b0" = i 0x47)
            [ (* candidate: compare the next three bytes *)
              let_ "b1" (payload (l "di" + i 1));
              let_ "b2" (payload (l "di" + i 2));
              let_ "b3" (payload (l "di" + i 3));
              when_ (l "b1" = i 0x45 && l "b2" = i 0x54 && l "b3" = i 0x20)
                [ let_ "found" (i 1) ] ] ];
      if_
        (l "found" <> i 0)
        [ set_g "matches" (g "matches" + i 1); emit 1 ]
        [ emit 0 ] ]

(** Stateful firewall: ACL scan + connection tracking map. *)
let firewall () =
  let open Build in
  element "firewall"
    ~state:
      [ array "acl_proto" 12; array "acl_port" 12; array "acl_action" 12;
        map_decl "conn_track" ~key_widths:[ 32; 32; 16; 16 ]
          ~val_fields:[ ("allowed", 16); ("pkts", 32) ] ~capacity:8192;
        scalar "accepted"; scalar "denied" ]
    [ map_find "conn_track" flow_key "tracked";
      if_
        (l "tracked" <> i 0)
        [ map_read "conn_track" "allowed" "ok";
          map_read "conn_track" "pkts" "p";
          map_write "conn_track" "pkts" (l "p" + i 1);
          if_
            (l "ok" <> i 0)
            [ set_g "accepted" (g "accepted" + i 1); emit 0 ]
            [ set_g "denied" (g "denied" + i 1); drop ] ]
        [ (* first packet of the flow: evaluate the ACL *)
          let_ "verdict" (i 0);
          for_ "ai" (i 0) (i 12)
            [ when_
                ((arr_get "acl_proto" (l "ai") = hdr Ip_proto
                 || arr_get "acl_proto" (l "ai") = i 0)
                && (arr_get "acl_port" (l "ai") = hdr Tcp_dport
                   || arr_get "acl_port" (l "ai") = i 0))
                [ let_ "verdict" (arr_get "acl_action" (l "ai") + i 1) ] ];
          (* default accept when no deny rule matched *)
          when_ (l "verdict" = i 0) [ let_ "verdict" (i 1) ];
          map_insert "conn_track" flow_key [ l "verdict" - i 1 + i 1; i 1 ];
          if_
            (l "verdict" >= i 1)
            [ set_g "accepted" (g "accepted" + i 1); emit 0 ]
            [ set_g "denied" (g "denied" + i 1); drop ] ] ]

(** Heavy-hitter detection: sketch estimate against a rate threshold. *)
let heavy_hitter () =
  let open Build in
  element "heavy_hitter"
    ~state:
      [ array "hh_sketch" 4096; scalar "threshold" ~init:64; scalar "heavy_flows";
        scalar "window_pkts" ]
    [ let_ "h0" (api "hash32" [ hdr Ip_src; hdr Ip_dst ] land i 4095);
      let_ "h1" (api "hash32" [ hdr Ip_dst; hdr Ip_src; i 7 ] land i 4095);
      let_ "c0" (arr_get "hh_sketch" (l "h0") + i 1);
      let_ "c1" (arr_get "hh_sketch" (l "h1") + i 1);
      arr_set "hh_sketch" (l "h0") (l "c0");
      arr_set "hh_sketch" (l "h1") (l "c1");
      set_g "window_pkts" (g "window_pkts" + i 1);
      when_ ((g "window_pkts" land i 8191) = i 0)
        [ (* decay: reset the window *)
          set_g "heavy_flows" (i 0) ];
      let_ "estimate" (api "min" [ l "c0"; l "c1" ]);
      if_
        (l "estimate" > g "threshold")
        [ set_g "heavy_flows" (g "heavy_flows" + i 1); set_hdr Ip_tos (i 0x20); emit 1 ]
        [ emit 0 ] ]

(* ------------------------------------------------------------------ *)
(* Additional NFs beyond Table 2 (used by extensions and examples)     *)
(* ------------------------------------------------------------------ *)

(** Per-flow token-bucket rate limiter with a global overflow bucket. *)
let ratelimiter () =
  let open Build in
  element "ratelimiter"
    ~state:
      [ map_decl "buckets" ~key_widths:[ 32; 32 ]
          ~val_fields:[ ("tokens", 32); ("last_refill", 32) ] ~capacity:8192;
        scalar "global_tokens" ~init:128; scalar "refill_rate" ~init:0;
        scalar "conforming"; scalar "policed"; scalar "last_tick" ]
    [ let_ "now" (api "now" []);
      (* global refill once per virtual tick *)
      when_
        (l "now" > g "last_tick")
        [ set_g "global_tokens"
            (api "min" [ g "global_tokens" + ((l "now" - g "last_tick") * g "refill_rate"); i 200000 ]);
          set_g "last_tick" (l "now") ];
      map_find "buckets" [ hdr Ip_src; hdr Ip_dst ] "known";
      if_
        (l "known" <> i 0)
        [ map_read "buckets" "tokens" "tok";
          map_read "buckets" "last_refill" "last";
          (* per-flow refill: one token per four ticks, capped *)
          let_ "tok" (api "min" [ l "tok" + ((l "now" - l "last") lsr i 2); i 64 ]);
          if_
            (l "tok" > i 0)
            [ map_write "buckets" "tokens" (l "tok" - i 1);
              map_write "buckets" "last_refill" (l "now");
              set_g "conforming" (g "conforming" + i 1);
              emit 0 ]
            [ (* flow bucket empty: borrow from the global pool *)
              if_
                (g "global_tokens" > i 0)
                [ set_g "global_tokens" (g "global_tokens" - i 1);
                  set_g "conforming" (g "conforming" + i 1);
                  set_hdr Ip_tos (i 0x08);
                  emit 0 ]
                [ set_g "policed" (g "policed" + i 1); drop ] ] ]
        [ map_insert "buckets" [ hdr Ip_src; hdr Ip_dst ] [ i 63; l "now" ];
          set_g "conforming" (g "conforming" + i 1);
          emit 0 ] ]

(** L4 load balancer: rendezvous-style backend choice + connection pinning. *)
let loadbalancer () =
  let backends = 16 in
  let open Build in
  element "loadbalancer"
    ~state:
      [ array "backend_ip" backends; array "backend_weight" backends;
        array "backend_conns" backends;
        map_decl "conn_pin" ~key_widths:[ 32; 32; 16; 16 ]
          ~val_fields:[ ("backend", 16) ] ~capacity:16384;
        scalar "pinned_hits"; scalar "new_conns" ]
    [ when_ (hdr Ip_proto <> i Packet.tcp_proto) [ drop ];
      map_find "conn_pin" flow_key "pinned";
      if_
        (l "pinned" <> i 0)
        [ map_read "conn_pin" "backend" "b";
          set_g "pinned_hits" (g "pinned_hits" + i 1);
          set_hdr Ip_dst (arr_get "backend_ip" (l "b"));
          api_stmt "csum_incr_update" [ i 0; l "b" ];
          emit 0 ]
        [ (* rendezvous hash: best weighted score across backends *)
          let_ "best" (i 0);
          let_ "best_score" (i 0);
          for_ "bi" (i 0) (i backends)
            [ let_ "score"
                ((api "hash32" [ hdr Ip_src; hdr Tcp_sport; l "bi" ] land i 0xffff)
                * (arr_get "backend_weight" (l "bi") + i 1));
              when_ (l "score" > l "best_score")
                [ let_ "best_score" (l "score"); let_ "best" (l "bi") ] ];
          map_insert "conn_pin" flow_key [ l "best" ];
          arr_set "backend_conns" (l "best") (arr_get "backend_conns" (l "best") + i 1);
          set_g "new_conns" (g "new_conns" + i 1);
          set_hdr Ip_dst (arr_get "backend_ip" (l "best"));
          api_stmt "checksum_update_ip" [];
          emit 0 ] ]

(** SYN-proxy: stateless SYN cookies, connection validation on ACK. *)
let synproxy () =
  let open Build in
  element "synproxy"
    ~state:
      [ scalar "cookie_secret" ~init:0x5ec23; scalar "syn_rcvd"; scalar "acks_valid";
        scalar "acks_bogus";
        map_decl "established" ~key_widths:[ 32; 32; 16; 16 ]
          ~val_fields:[ ("since", 32) ] ~capacity:16384 ]
    [ when_ (hdr Ip_proto <> i Packet.tcp_proto) [ emit 0 ];
      let_ "flags" (hdr Tcp_flags);
      if_
        ((l "flags" land i 0x02) <> i 0)
        [ (* SYN: answer with a cookie, keep no state *)
          set_g "syn_rcvd" (g "syn_rcvd" + i 1);
          let_ "cookie"
            (api "hash32" [ hdr Ip_src; hdr Ip_dst; hdr Tcp_sport; hdr Tcp_dport; g "cookie_secret" ]
            land i 0xffffff);
          let_ "tmp" (hdr Ip_src);
          set_hdr Ip_src (hdr Ip_dst);
          set_hdr Ip_dst (l "tmp");
          let_ "tp" (hdr Tcp_sport);
          set_hdr Tcp_sport (hdr Tcp_dport);
          set_hdr Tcp_dport (l "tp");
          set_hdr Tcp_ack (hdr Tcp_seq + i 1);
          set_hdr Tcp_seq (l "cookie");
          set_hdr Tcp_flags (i 0x12);
          api_stmt "checksum_update_ip" [];
          emit 0 ]
        [ map_find "established" flow_key "ok";
          if_
            (l "ok" <> i 0)
            [ emit 1 ]
            [ (* first ACK: validate the echoed cookie; the ACK travels in
                 the same direction as the original SYN *)
              let_ "expect"
                (api "hash32"
                   [ hdr Ip_src; hdr Ip_dst; hdr Tcp_sport; hdr Tcp_dport; g "cookie_secret" ]
                land i 0xffffff);
              if_
                (((hdr Tcp_ack - i 1) land i 0xffffff) = l "expect")
                [ map_insert "established" flow_key [ api "now" [] ];
                  set_g "acks_valid" (g "acks_valid" + i 1);
                  emit 1 ]
                [ set_g "acks_bogus" (g "acks_bogus" + i 1); drop ] ] ] ]

(** VXLAN-style gateway: validate+strip the outer header on one port,
    re-encapsulate on the other. *)
let vxlan_gateway () =
  let open Build in
  element "vxlan_gateway"
    ~state:
      [ map_decl "vni_table" ~key_widths:[ 32 ] ~val_fields:[ ("vni", 32); ("peer", 32) ]
          ~capacity:1024;
        scalar "decapped"; scalar "encapped"; scalar "bad_vni" ]
    [ if_
        ((hdr Ip_proto = i Packet.udp_proto) && (hdr Udp_dport = i 4789))
        [ (* decap: VNI lives in payload bytes 4..6 *)
          let_ "vni" (payload (i 4) lor (payload (i 5) lsl i 8) lor (payload (i 6) lsl i 16));
          map_find "vni_table" [ l "vni" land i 1023 ] "known";
          if_
            (l "known" <> i 0)
            [ map_read "vni_table" "vni" "expected";
              if_
                (l "expected" = l "vni")
                [ set_g "decapped" (g "decapped" + i 1);
                  set_hdr Ip_len (hdr Ip_len - i 16);
                  set_hdr Udp_dport (i 0);
                  emit 0 ]
                [ set_g "bad_vni" (g "bad_vni" + i 1); drop ] ]
            [ set_g "bad_vni" (g "bad_vni" + i 1); drop ] ]
        [ (* encap towards the peer for this destination *)
          map_find "vni_table" [ hdr Ip_dst land i 1023 ] "route";
          when_ (l "route" = i 0) [ drop ];
          map_read "vni_table" "peer" "peer";
          map_read "vni_table" "vni" "vni";
          set_payload (i 4) (l "vni" land i 0xff);
          set_payload (i 5) ((l "vni" lsr i 8) land i 0xff);
          set_payload (i 6) ((l "vni" lsr i 16) land i 0xff);
          set_hdr Ip_dst (l "peer");
          set_hdr Ip_proto (i Packet.udp_proto);
          set_hdr Udp_dport (i 4789);
          set_hdr Ip_len (hdr Ip_len + i 16);
          set_g "encapped" (g "encapped" + i 1);
          api_stmt "checksum_update_ip" [];
          emit 1 ] ]

(** NetFlow-style monitor: per-flow accounting with a bounded export ring. *)
let flowmonitor () =
  let open Build in
  element "flowmonitor"
    ~state:
      [ map_decl "flows" ~key_widths:[ 32; 32; 16; 16 ]
          ~val_fields:[ ("pkts", 32); ("bytes", 32); ("first_seen", 32); ("tcp_flags_or", 16) ]
          ~capacity:16384;
        vector "export_ring" ~capacity:1024;
        scalar "active_flows"; scalar "exported"; scalar "export_threshold" ~init:2048 ]
    [ map_find "flows" flow_key "hit";
      if_
        (l "hit" <> i 0)
        [ map_read "flows" "pkts" "p";
          map_read "flows" "bytes" "b";
          map_read "flows" "tcp_flags_or" "fl";
          map_write "flows" "pkts" (l "p" + i 1);
          map_write "flows" "bytes" (l "b" + pkt_len);
          map_write "flows" "tcp_flags_or" (l "fl" lor hdr Tcp_flags);
          (* flows that grow past the threshold are exported and reset *)
          when_
            ((l "b" + pkt_len) > g "export_threshold")
            [ vec_append "export_ring" (api "hash32" [ hdr Ip_src; hdr Ip_dst ]);
              set_g "exported" (g "exported" + i 1);
              map_write "flows" "bytes" (i 0) ] ]
        [ map_insert "flows" flow_key [ i 1; pkt_len; api "now" []; hdr Tcp_flags ];
          set_g "active_flows" (g "active_flows" + i 1) ];
      (* FIN/RST tears the record down *)
      when_
        ((hdr Ip_proto = i Packet.tcp_proto) && ((hdr Tcp_flags land i 0x05) <> i 0))
        [ map_find "flows" flow_key "closing";
          when_ (l "closing" <> i 0)
            [ map_erase "flows"; set_g "active_flows" (g "active_flows" - i 1) ] ];
      emit 0 ]

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

(** Table-2 elements in paper order. *)
let table2 () =
  [ anonipaddr (); tcpack (); udpipencap (); forcetcp (); tcpresp (); tcpgen ();
    aggcounter (); timefilter (); cmsketch (); wepdecap (); iplookup (); iprewriter ();
    ipclassifier (); dnsproxy (); mazu_nat (); udpcount (); webgen () ]

(** Every corpus element, including accel variants and Figure-1 NFs. *)
let all () =
  table2 ()
  @ [ webtcp (); cmsketch_accel (); wepdecap_accel (); iplookup_accel (); dpi (); firewall ();
      heavy_hitter (); ratelimiter (); loadbalancer (); synproxy (); vxlan_gateway ();
      flowmonitor () ]

let parse_suffix ~prefix name =
  let plen = String.length prefix in
  if String.length name > plen && String.equal (String.sub name 0 plen) prefix then
    int_of_string_opt (String.sub name plen (String.length name - plen))
  else None

let find name =
  match List.find_opt (fun e -> String.equal e.name name) (all ()) with
  | Some e -> e
  | None -> (
    (* parameterized lookups: iplookup_<rules>, iplookup_accel_<rules> *)
    match parse_suffix ~prefix:"iplookup_accel_" name with
    | Some rules -> iplookup_accel_with_rules rules
    | None -> (
      match parse_suffix ~prefix:"iplookup_" name with
      | Some rules -> iplookup_with_rules rules
      | None -> failwith (Printf.sprintf "Corpus.find: unknown element %s" name)))
