(** Corpus of real-world-style Click elements.

    Re-implementations of the paper's 17 Table-2 elements and Figure-1 NFs
    with faithful core logic, the Clara-suggested accelerator variants of
    cmsketch/wepdecap/iplookup, and extension NFs used by the examples.
    Every builder returns a fresh element (fresh statement ids). *)

(** {1 Stateless header-manipulation elements} *)

val anonipaddr : unit -> Ast.element
val tcpack : unit -> Ast.element
val udpipencap : unit -> Ast.element
val forcetcp : unit -> Ast.element
val tcpresp : unit -> Ast.element

(** {1 Scalar-heavy stateful elements (coalescing targets)} *)

val tcpgen : unit -> Ast.element
val aggcounter : unit -> Ast.element
val timefilter : unit -> Ast.element

(** Figure 13's "webtcp": a TCP web-front-end state machine. *)
val webtcp : unit -> Ast.element

(** {1 Accelerator-algorithm elements} *)

(** Procedural CRC32 over payload bytes, as reusable statements. *)
val crc32_block : bytes:int -> dst:string -> Ast.stmt list

val cmsketch : unit -> Ast.element

(** The Clara port: row signatures from the CRC engine. *)
val cmsketch_accel : unit -> Ast.element

val wepdecap : unit -> Ast.element
val wepdecap_accel : unit -> Ast.element

(** LPM via a binary-trie walk whose depth scales with the rule count. *)
val iplookup_with_rules : int -> Ast.element

val iplookup : unit -> Ast.element

(** The Clara port: flow-cache front-end plus the LPM engine. *)
val iplookup_accel_with_rules : int -> Ast.element

val iplookup_accel : unit -> Ast.element

(** {1 Map-heavy and composite NFs} *)

val iprewriter : unit -> Ast.element
val ipclassifier : unit -> Ast.element
val dnsproxy : unit -> Ast.element
val mazu_nat : unit -> Ast.element
val udpcount : unit -> Ast.element
val webgen : unit -> Ast.element

(** {1 Figure-1 NFs} *)

val dpi : unit -> Ast.element
val firewall : unit -> Ast.element
val heavy_hitter : unit -> Ast.element

(** {1 Extension NFs (beyond the paper)} *)

val ratelimiter : unit -> Ast.element
val loadbalancer : unit -> Ast.element
val synproxy : unit -> Ast.element
val vxlan_gateway : unit -> Ast.element
val flowmonitor : unit -> Ast.element

(** {1 Registry} *)

(** The 17 Table-2 elements, in paper order. *)
val table2 : unit -> Ast.element list

(** Every corpus element. *)
val all : unit -> Ast.element list

(** Lookup by name; understands the parameterized families
    [iplookup_<rules>] and [iplookup_accel_<rules>].
    @raise Failure on unknown names. *)
val find : string -> Ast.element
