(** Runtime store for stateful NF data structures.

    Each structure runs in one of two modes mirroring the paper's framework
    dichotomy (§3.3):

    - [Host] — Click semantics: hash maps are elastic, resolve collisions by
      linear probing, and vectors grow dynamically.
    - [Nic] — Netronome semantics: sizes are fixed at allocation time, maps
      use a fixed set of buckets with a bounded number of slots each, and
      deletion only marks entries invalid.

    Every operation reports the number of memory probes it performed so the
    interpreter can attribute workload-specific memory traffic. *)

type mode = Host | Nic

type entry = { key : int array; mutable vals : int array; mutable valid : bool }

type map_state = {
  m_name : string;
  m_mode : mode;
  val_names : string array;
  mutable slots : entry option array;
  mutable m_size : int;
  mutable cursor : int;  (** slot of the last successful find/insert *)
  bucket_slots : int;  (** Nic mode: slots per bucket *)
}

type vec_state = {
  v_name : string;
  v_mode : mode;
  mutable data : int array;
  mutable v_len : int;
  v_capacity : int;
}

type t = {
  scalars : (string, int ref) Hashtbl.t;
  arrays : (string, int array) Hashtbl.t;
  maps : (string, map_state) Hashtbl.t;
  vectors : (string, vec_state) Hashtbl.t;
  mode : mode;
}

let nic_bucket_slots = 4

let hash_key key =
  let h = ref 0x811c9dc5 in
  Array.iter
    (fun k ->
      h := !h lxor (k land 0xffffffff);
      h := !h * 0x01000193 land 0x3fffffff)
    key;
  !h

let create ?(mode = Host) (decls : Ast.state_decl list) =
  let t =
    {
      scalars = Hashtbl.create 16;
      arrays = Hashtbl.create 8;
      maps = Hashtbl.create 8;
      vectors = Hashtbl.create 8;
      mode;
    }
  in
  List.iter
    (fun d ->
      match d with
      | Ast.Scalar { name; init; _ } -> Hashtbl.replace t.scalars name (ref init)
      | Ast.Array { name; length; _ } -> Hashtbl.replace t.arrays name (Array.make length 0)
      | Ast.Map { name; val_fields; capacity; _ } ->
        let cap = max 8 capacity in
        Hashtbl.replace t.maps name
          {
            m_name = name;
            m_mode = mode;
            val_names = Array.of_list (List.map fst val_fields);
            slots = Array.make cap None;
            m_size = 0;
            cursor = -1;
            bucket_slots = nic_bucket_slots;
          }
      | Ast.Vector { name; capacity; _ } ->
        Hashtbl.replace t.vectors name
          {
            v_name = name;
            v_mode = mode;
            data = Array.make (max 4 capacity) 0;
            v_len = 0;
            v_capacity = max 4 capacity;
          })
    decls;
  t

let scalar_ref t name =
  match Hashtbl.find_opt t.scalars name with
  | Some r -> r
  | None -> failwith (Printf.sprintf "State: unknown scalar %s" name)

let array_of t name =
  match Hashtbl.find_opt t.arrays name with
  | Some a -> a
  | None -> failwith (Printf.sprintf "State: unknown array %s" name)

let map_of t name =
  match Hashtbl.find_opt t.maps name with
  | Some m -> m
  | None -> failwith (Printf.sprintf "State: unknown map %s" name)

let vec_of t name =
  match Hashtbl.find_opt t.vectors name with
  | Some v -> v
  | None -> failwith (Printf.sprintf "State: unknown vector %s" name)

let key_equal a b = Array.length a = Array.length b && Array.for_all2 ( = ) a b

let field_index m field =
  let rec scan i =
    if i >= Array.length m.val_names then
      failwith (Printf.sprintf "State: map %s has no field %s" m.m_name field)
    else if String.equal m.val_names.(i) field then i
    else scan (i + 1)
  in
  scan 0

(* -- Host (Click) semantics: open addressing with linear probing -- *)

let host_find m key =
  let cap = Array.length m.slots in
  let start = hash_key key mod cap in
  let rec probe i n =
    if n > cap then (false, n)
    else
      match m.slots.(i) with
      | None -> (false, n + 1)
      | Some e when e.valid && key_equal e.key key ->
        m.cursor <- i;
        (true, n + 1)
      | Some _ -> probe ((i + 1) mod cap) (n + 1)
  in
  probe start 0

let host_grow m =
  let old = m.slots in
  m.slots <- Array.make (Array.length old * 2) None;
  m.m_size <- 0;
  let reinsert e =
    let cap = Array.length m.slots in
    let rec place i =
      match m.slots.(i) with
      | None ->
        m.slots.(i) <- Some e;
        m.m_size <- m.m_size + 1
      | Some _ -> place ((i + 1) mod cap)
    in
    place (hash_key e.key mod cap)
  in
  Array.iter (function Some e when e.valid -> reinsert e | Some _ | None -> ()) old

let host_insert m key vals =
  if m.m_size * 4 >= Array.length m.slots * 3 then host_grow m;
  let cap = Array.length m.slots in
  let rec probe i n =
    match m.slots.(i) with
    | None ->
      m.slots.(i) <- Some { key; vals; valid = true };
      m.m_size <- m.m_size + 1;
      m.cursor <- i;
      n + 1
    | Some e when e.valid && key_equal e.key key ->
      e.vals <- vals;
      m.cursor <- i;
      n + 1
    | Some e when not e.valid ->
      m.slots.(i) <- Some { key; vals; valid = true };
      m.cursor <- i;
      n + 1
    | Some _ -> probe ((i + 1) mod cap) (n + 1)
  in
  probe (hash_key key mod cap) 0

(* -- Nic (Netronome) semantics: fixed buckets, bounded slots, no growth -- *)

let nic_bucket_count m = max 1 (Array.length m.slots / m.bucket_slots)

let nic_find m key =
  let bucket = hash_key key mod nic_bucket_count m in
  let base = bucket * m.bucket_slots in
  let rec scan s n =
    if s >= m.bucket_slots then (false, n)
    else
      match m.slots.(base + s) with
      | Some e when e.valid && key_equal e.key key ->
        m.cursor <- base + s;
        (true, n + 1)
      | Some _ | None -> scan (s + 1) (n + 1)
  in
  scan 0 0

let nic_insert m key vals =
  let bucket = hash_key key mod nic_bucket_count m in
  let base = bucket * m.bucket_slots in
  (* First pass: update in place if present; remember first free slot. *)
  let free = ref (-1) in
  let probes = ref 0 in
  let updated = ref false in
  for s = 0 to m.bucket_slots - 1 do
    if not !updated then begin
      incr probes;
      match m.slots.(base + s) with
      | Some e when e.valid && key_equal e.key key ->
        e.vals <- vals;
        m.cursor <- base + s;
        updated := true
      | Some e when (not e.valid) && !free < 0 -> free := base + s
      | Some _ -> ()
      | None -> if !free < 0 then free := base + s
    end
  done;
  if (not !updated) && !free >= 0 then begin
    m.slots.(!free) <- Some { key; vals; valid = true };
    m.m_size <- m.m_size + 1;
    m.cursor <- !free
  end;
  (* Bucket overflow in NIC mode silently drops the insert, as a fixed
     firmware table would. *)
  !probes

(* -- Mode dispatch -- *)

(** [find m key] returns (found, probes). *)
let find m key = match m.m_mode with Host -> host_find m key | Nic -> nic_find m key

(** [insert m key vals] returns probes. *)
let insert m key vals =
  match m.m_mode with Host -> host_insert m key vals | Nic -> nic_insert m key vals

(** Read a value field at the cursor; 0 when the cursor is invalid. *)
let read m field =
  if m.cursor < 0 then 0
  else
    match m.slots.(m.cursor) with
    | Some e when e.valid -> e.vals.(field_index m field)
    | Some _ | None -> 0

let write m field v =
  if m.cursor >= 0 then
    match m.slots.(m.cursor) with
    | Some e when e.valid -> e.vals.(field_index m field) <- v
    | Some _ | None -> ()

(** Erase at cursor.  Host mode frees the slot (tombstone that can be
    reused); Nic mode only marks it invalid — the paper's `Vector.delete`
    distinction applied to maps. *)
let erase m =
  if m.cursor >= 0 then
    match m.slots.(m.cursor) with
    | Some e when e.valid ->
      e.valid <- false;
      m.m_size <- m.m_size - 1
    | Some _ | None -> ()

let map_size m = m.m_size

(* -- Vectors -- *)

let vec_append v x =
  (match v.v_mode with
  | Host ->
    if v.v_len >= Array.length v.data then begin
      let bigger = Array.make (Array.length v.data * 2) 0 in
      Array.blit v.data 0 bigger 0 v.v_len;
      v.data <- bigger
    end
  | Nic -> ());
  if v.v_len < Array.length v.data then begin
    v.data.(v.v_len) <- x;
    v.v_len <- v.v_len + 1
  end

let vec_get v i = if i >= 0 && i < v.v_len then v.data.(i) else 0
let vec_set v i x = if i >= 0 && i < v.v_len then v.data.(i) <- x
let vec_length v = v.v_len
