(** Pretty-printer rendering an element as Click-flavored C++ source.

    Used for human inspection and for the LoC column of the Table-2 corpus
    inventory (the paper reports source lines of the unported elements). *)

open Ast

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | BAnd -> "&"
  | BOr -> "|"
  | BXor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"

let cmpop_str = function
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let hdr_str f =
  let prefix =
    match field_proto f with Eth -> "eth->" | Ip -> "ip->" | Tcp -> "tcp->" | Udp -> "udp->"
  in
  prefix ^ field_name f

let rec expr_str e =
  match e with
  | Int n -> string_of_int n
  | Local v -> v
  | Global v -> v
  | Hdr f -> hdr_str f
  | Payload_byte off -> Printf.sprintf "payload[%s]" (expr_str off)
  | Packet_len -> "pkt->length()"
  | Bin (op, a, b) -> Printf.sprintf "(%s %s %s)" (expr_str a) (binop_str op) (expr_str b)
  | Cmp (op, a, b) -> Printf.sprintf "(%s %s %s)" (expr_str a) (cmpop_str op) (expr_str b)
  | Not a -> Printf.sprintf "!%s" (expr_str a)
  | And_also (a, b) -> Printf.sprintf "(%s && %s)" (expr_str a) (expr_str b)
  | Or_else (a, b) -> Printf.sprintf "(%s || %s)" (expr_str a) (expr_str b)
  | Arr_get (name, idx) -> Printf.sprintf "%s[%s]" name (expr_str idx)
  | Vec_len name -> Printf.sprintf "%s.size()" name
  | Api_expr (name, args) ->
    Printf.sprintf "%s(%s)" name (String.concat ", " (List.map expr_str args))

let rec stmt_lines indent s =
  let pad = String.make indent ' ' in
  let line fmt = Printf.ksprintf (fun str -> [ pad ^ str ]) fmt in
  match s.node with
  | Let (v, e) -> line "u32 %s = %s;" v (expr_str e)
  | Set_global (v, e) -> line "%s = %s;" v (expr_str e)
  | Set_hdr (f, e) -> line "%s = %s;" (hdr_str f) (expr_str e)
  | Set_payload (off, v) -> line "payload[%s] = %s;" (expr_str off) (expr_str v)
  | Arr_set (name, idx, v) -> line "%s[%s] = %s;" name (expr_str idx) (expr_str v)
  | Map_find (m, key, dst) ->
    line "bool %s = %s.find({%s});" dst m (String.concat ", " (List.map expr_str key))
  | Map_read (m, field, dst) -> line "u32 %s = %s.entry()->%s;" dst m field
  | Map_write (m, field, e) -> line "%s.entry()->%s = %s;" m field (expr_str e)
  | Map_insert (m, key, vals) ->
    line "%s.insert({%s}, {%s});" m
      (String.concat ", " (List.map expr_str key))
      (String.concat ", " (List.map expr_str vals))
  | Map_erase m -> line "%s.erase();" m
  | Vec_append (v, e) -> line "%s.push_back(%s);" v (expr_str e)
  | Vec_get (v, idx, dst) -> line "u32 %s = %s[%s];" dst v (expr_str idx)
  | Vec_set (v, idx, e) -> line "%s[%s] = %s;" v (expr_str idx) (expr_str e)
  | If (c, t, []) ->
    (pad ^ Printf.sprintf "if %s {" (expr_str c))
    :: List.concat_map (stmt_lines (indent + 2)) t
    @ [ pad ^ "}" ]
  | If (c, t, f) ->
    (pad ^ Printf.sprintf "if %s {" (expr_str c))
    :: List.concat_map (stmt_lines (indent + 2)) t
    @ [ pad ^ "} else {" ]
    @ List.concat_map (stmt_lines (indent + 2)) f
    @ [ pad ^ "}" ]
  | While (c, body) ->
    (pad ^ Printf.sprintf "while %s {" (expr_str c))
    :: List.concat_map (stmt_lines (indent + 2)) body
    @ [ pad ^ "}" ]
  | For (v, lo, hi, body) ->
    (pad
    ^ Printf.sprintf "for (u32 %s = %s; %s < %s; %s++) {" v (expr_str lo) v (expr_str hi) v)
    :: List.concat_map (stmt_lines (indent + 2)) body
    @ [ pad ^ "}" ]
  | Api_stmt (name, args) ->
    line "%s(%s);" name (String.concat ", " (List.map expr_str args))
  | Emit port -> line "output(%d).push(pkt);" port
  | Drop -> line "pkt->kill();"
  | Call_sub name -> line "%s();" name
  | Return -> line "return;"

let state_lines d =
  match d with
  | Scalar { name; width; init } -> [ Printf.sprintf "  u%d %s = %d;" width name init ]
  | Array { name; width; length } -> [ Printf.sprintf "  u%d %s[%d];" width name length ]
  | Map { name; key_widths; val_fields; capacity } ->
    [ Printf.sprintf "  HashMap<key%d, value%d> %s; // capacity %d"
        (List.length key_widths) (List.length val_fields) name capacity ]
  | Vector { name; elem_width; capacity } ->
    [ Printf.sprintf "  Vector<u%d> %s; // capacity %d" elem_width name capacity ]

let element_lines (elt : element) =
  let header = [ Printf.sprintf "class %s : public Element {" elt.name ] in
  let state = List.concat_map state_lines elt.state in
  let sub (name, body) =
    (Printf.sprintf "  void %s() {" name)
    :: List.concat_map (stmt_lines 4) body
    @ [ "  }" ]
  in
  let subs = List.concat_map sub elt.subs in
  let handler =
    "  void simple_action(Packet *pkt) {"
    :: List.concat_map (stmt_lines 4) elt.handler
    @ [ "  }" ]
  in
  header @ state @ subs @ handler @ [ "};" ]

let to_string elt = String.concat "\n" (element_lines elt)

(** Source-lines-of-code metric (non-empty rendered lines). *)
let loc elt = List.length (element_lines elt)
