(** Abstract syntax for Click-style network function elements — the
    unported input format Clara analyzes.  An element owns stateful
    declarations (scalars, arrays, hash maps, vectors) and a packet
    handler written against a framework API, mirroring Click's
    [Element::simple_action] model. *)

(** Packet header fields addressable by NF programs. *)
type header_field =
  | Eth_type
  | Ip_src
  | Ip_dst
  | Ip_proto
  | Ip_ttl
  | Ip_len
  | Ip_hl
  | Ip_tos
  | Ip_id
  | Ip_csum
  | Tcp_sport
  | Tcp_dport
  | Tcp_seq
  | Tcp_ack
  | Tcp_off
  | Tcp_flags
  | Tcp_win
  | Tcp_csum
  | Udp_sport
  | Udp_dport
  | Udp_len
  | Udp_csum

(** Field width in bits. *)
val field_width : header_field -> int

(** Protocol layer a field belongs to; drives the materialization of
    framework [x_header()] accessor calls during lowering. *)
type proto = Eth | Ip | Tcp | Udp

val field_proto : header_field -> proto
val field_name : header_field -> string

type binop = Add | Sub | Mul | BAnd | BOr | BXor | Shl | Shr
type cmpop = Eq | Ne | Lt | Le | Gt | Ge

type expr =
  | Int of int  (** integer literal *)
  | Local of string  (** stateless per-packet local variable *)
  | Global of string  (** stateful scalar global *)
  | Hdr of header_field  (** packet header field read *)
  | Payload_byte of expr  (** payload byte at offset *)
  | Packet_len  (** total packet length in bytes *)
  | Bin of binop * expr * expr
  | Cmp of cmpop * expr * expr
  | Not of expr
  | And_also of expr * expr  (** short-circuit && *)
  | Or_else of expr * expr  (** short-circuit || *)
  | Arr_get of string * expr  (** stateful array element read *)
  | Vec_len of string  (** current length of a stateful vector *)
  | Api_expr of string * expr list  (** pure framework helper *)

(** Statements carry a unique id [sid] assigned by {!Build}; the
    interpreter profiles execution per sid and the frontend maps sids to
    IR blocks — the bridge giving workload-specific block execution
    counts. *)
type stmt = { sid : int; node : node }

and node =
  | Let of string * expr  (** define or assign a local *)
  | Set_global of string * expr
  | Set_hdr of header_field * expr
  | Set_payload of expr * expr  (** payload[off] <- byte *)
  | Arr_set of string * expr * expr
  | Map_find of string * expr list * string
      (** [Map_find (map, key, dst)]: probe [map]; [dst] <- found flag;
          positions the map cursor *)
  | Map_read of string * string * string
      (** [Map_read (map, field, dst)]: read a value field at the cursor *)
  | Map_write of string * string * expr  (** write a value field at the cursor *)
  | Map_insert of string * expr list * expr list
      (** insert (key fields, value fields); positions the cursor *)
  | Map_erase of string  (** delete the entry at the cursor *)
  | Vec_append of string * expr
  | Vec_get of string * expr * string  (** dst local <- vec[idx] *)
  | Vec_set of string * expr * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list  (** bounded by interpreter fuel *)
  | For of string * expr * expr * stmt list  (** [For (i, lo, hi, body)]: i in [lo, hi) *)
  | Api_stmt of string * expr list  (** framework side effect *)
  | Emit of int  (** send the packet out of a port; ends processing *)
  | Drop  (** kill the packet; ends processing *)
  | Call_sub of string  (** subroutine call; inlined during lowering *)
  | Return  (** early exit from the handler *)

(** Stateful structure declarations. *)
type state_decl =
  | Scalar of { name : string; width : int; init : int }
  | Array of { name : string; width : int; length : int }
  | Map of {
      name : string;
      key_widths : int list;
      val_fields : (string * int) list;
      capacity : int;
    }
  | Vector of { name : string; elem_width : int; capacity : int }

val state_name : state_decl -> string

(** Footprint in bytes, used by the state-placement ILP. *)
val state_size_bytes : state_decl -> int

(** A Click-style element. *)
type element = {
  name : string;
  state : state_decl list;
  subs : (string * stmt list) list;  (** subroutines, inlined by the frontend *)
  handler : stmt list;
}

val find_state : element -> string -> state_decl option
val is_stateful : element -> bool

(** Header protocols touched by an expression / statement / handler. *)
val expr_protos : expr -> proto list

val stmt_protos : stmt -> proto list
val protos_of_handler : stmt list -> proto list

(** Syntactic statement count, nested statements included. *)
val stmt_count : stmt -> int

val element_stmt_count : element -> int
