(** LLVM-flavored intermediate representation (§3.1).

    The frontend lowers NF elements the way `clang -O0` would: SSA-numbered
    virtual registers for temporaries and explicit stack slots for named
    locals.  Each instruction carries an annotation separating compute,
    stateless memory, stateful memory, packet accesses, and framework API
    calls (Figure 5's coloring). *)

type typ = I1 | I8 | I16 | I32 | I64 | Ptr

val typ_str : typ -> string

(** Smallest integer type holding [width] bits. *)
val typ_of_width : int -> typ

val width_of_typ : typ -> int

type operand =
  | Reg of int  (** SSA virtual register *)
  | Imm of int  (** integer immediate *)
  | Global of string  (** address of a stateful structure *)
  | Slot of string  (** stack slot of a named local *)
  | Hdr of string  (** packet header field location; names stay concrete *)
  | Payload  (** packet payload base *)

type cmp = Ceq | Cne | Clt | Cle | Cgt | Cge

val cmp_str : cmp -> string

type op =
  | Add
  | Sub
  | Mul
  | And
  | Or
  | Xor
  | Shl
  | Lshr
  | Icmp of cmp
  | Zext
  | Trunc
  | Select
  | Load
  | Store
  | Gep  (** address arithmetic: base + scaled index *)
  | Call of string
  | Br of int  (** unconditional branch to block id *)
  | Cond_br of int * int  (** conditional branch: (then, else) *)
  | Ret

(** Instruction classification (Figure 5). *)
type annot =
  | Compute
  | Mem_stateless  (** stack-slot traffic; register-allocation candidates *)
  | Mem_stateful of string  (** global state traffic: the paper's "memory" *)
  | Mem_packet  (** header/payload access *)
  | Api of string  (** framework call needing reverse porting *)
  | Control

type instr = { res : int option; op : op; args : operand list; ty : typ; annot : annot }

type block = {
  bid : int;
  src_sid : int;
      (** leader source-statement id: 0 = per-packet entry, positive =
          statement id, [-(sid+1)] = loop header of statement [sid],
          -1 = synthetic tail *)
  mutable instrs : instr list;  (** in execution order *)
  mutable succs : int list;
}

type func = { fname : string; blocks : block array }

val is_terminator : instr -> bool

(** {1 Printing} *)

val opcode_str : op -> string
val operand_str : operand -> string
val instr_str : instr -> string
val block_str : block -> string
val func_str : func -> string

(** {1 Statistics} *)

val fold_instrs : ('a -> instr -> 'a) -> 'a -> func -> 'a
val count_if : (instr -> bool) -> func -> int
val count_compute : func -> int

(** Stateful memory instructions — the "Mem" column of Table 2. *)
val count_stateful_mem : func -> int

val count_stateless_mem : func -> int
val count_api : func -> int
val count_total : func -> int

(** (global, block id) pairs of every stateful access. *)
val stateful_refs : func -> (string * int) list

val block_ids : func -> int list

(** Block by id.  @raise Invalid_argument out of range. *)
val block : func -> int -> block

(** {1 Opcode histograms (Table 1)} *)

val opcode_index : instr -> int
val opcode_cardinality : int
val opcode_histogram : func list -> float array
