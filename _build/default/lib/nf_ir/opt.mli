(** Optional per-block IR optimization passes.

    The paper deliberately disables optimizations so the analyzed IR stays
    close to the source NF (§3.1); these passes exist to *quantify* that
    choice in the ablation experiment. *)

(** Fold an arithmetic opcode over two known immediates (None for
    non-foldable opcodes). *)
val fold_binop : Ir.op -> int -> int -> int option

(** Constant-fold a block in place. *)
val constant_fold_block : Ir.block -> unit

(** Forward stored slot values to later loads within the block. *)
val forward_slots_block : Ir.block -> unit

(** Drop stateless stores overwritten without an intervening load. *)
val dead_store_block : Ir.block -> unit

(** Run the full pipeline on a copy; the input function is untouched and
    block structure (count, ids, successors) is preserved. *)
val optimize : Ir.func -> Ir.func
