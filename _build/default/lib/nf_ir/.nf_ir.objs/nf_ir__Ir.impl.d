lib/nf_ir/ir.ml: Array List Printf String
