lib/nf_ir/builder.ml: Array Ir List
