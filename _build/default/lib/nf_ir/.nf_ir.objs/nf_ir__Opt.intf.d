lib/nf_ir/opt.mli: Ir
