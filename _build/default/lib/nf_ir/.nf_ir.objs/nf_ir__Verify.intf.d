lib/nf_ir/verify.mli: Ir
