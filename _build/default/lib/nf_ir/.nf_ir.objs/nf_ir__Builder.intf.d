lib/nf_ir/builder.mli: Ir
