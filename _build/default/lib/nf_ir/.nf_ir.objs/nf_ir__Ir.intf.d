lib/nf_ir/ir.mli:
