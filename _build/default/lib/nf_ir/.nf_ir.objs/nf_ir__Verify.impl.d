lib/nf_ir/verify.ml: Array Hashtbl Ir List Printf String
