lib/nf_ir/opt.ml: Array Hashtbl Ir List String
