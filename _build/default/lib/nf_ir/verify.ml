(** IR well-formedness verifier.

    Checks the invariants the rest of the toolchain relies on: every block
    ends in exactly one terminator, successor edges match the terminators
    and point at existing blocks, registers are defined before use along
    the block-creation order (the frontend emits code in a linearized
    order, so definitions always precede uses textually), and annotations
    are consistent with opcodes.  Returns a list of violations; an empty
    list means the function is well-formed. *)

type violation = { block : int; message : string }

let violation block fmt = Printf.ksprintf (fun message -> { block; message }) fmt

let check (f : Ir.func) : violation list =
  let problems = ref [] in
  let add v = problems := v :: !problems in
  let n_blocks = Array.length f.Ir.blocks in
  let defined = Hashtbl.create 64 in
  (* collect all definitions first: the builder numbers registers globally,
     and code is emitted in linear order, so a use in a later block of a reg
     defined in an earlier block is legal *)
  Array.iteri
    (fun bi b ->
      if b.Ir.bid <> bi then add (violation bi "block id %d at index %d" b.Ir.bid bi);
      List.iter
        (fun (i : Ir.instr) ->
          match i.Ir.res with Some r -> Hashtbl.replace defined r () | None -> ())
        b.Ir.instrs)
    f.Ir.blocks;
  Array.iter
    (fun b ->
      let bi = b.Ir.bid in
      (* terminator discipline *)
      (match List.rev b.Ir.instrs with
      | [] -> add (violation bi "empty block")
      | last :: _ when not (Ir.is_terminator last) -> add (violation bi "missing terminator")
      | _ -> ());
      let terminators = List.filter Ir.is_terminator b.Ir.instrs in
      if List.length terminators > 1 then
        add (violation bi "%d terminators" (List.length terminators));
      (* successor edges match the terminator *)
      let expected =
        List.concat_map
          (fun (i : Ir.instr) ->
            match i.Ir.op with
            | Ir.Br t -> [ t ]
            | Ir.Cond_br (a, c) -> [ a; c ]
            | _ -> [])
          b.Ir.instrs
        |> List.sort_uniq compare
      in
      if expected <> b.Ir.succs then
        add (violation bi "successor list does not match terminators");
      List.iter
        (fun s -> if s < 0 || s >= n_blocks then add (violation bi "edge to missing block %d" s))
        b.Ir.succs;
      (* register uses are defined somewhere; annotation sanity *)
      List.iter
        (fun (i : Ir.instr) ->
          List.iter
            (function
              | Ir.Reg r when not (Hashtbl.mem defined r) ->
                add (violation bi "use of undefined register %%%d" r)
              | Ir.Reg _ | Ir.Imm _ | Ir.Global _ | Ir.Slot _ | Ir.Hdr _ | Ir.Payload -> ())
            i.Ir.args;
          match (i.Ir.op, i.Ir.annot) with
          | (Ir.Load | Ir.Store), Ir.Compute ->
            add (violation bi "memory opcode annotated as compute")
          | (Ir.Br _ | Ir.Cond_br _ | Ir.Ret), a when a <> Ir.Control ->
            add (violation bi "terminator with non-control annotation")
          | Ir.Call _, a -> (
            match a with
            | Ir.Api _ -> ()
            | _ -> add (violation bi "call without API annotation"))
          | _ -> ())
        b.Ir.instrs)
    f.Ir.blocks;
  List.rev !problems

(** Raise [Failure] with a readable report when [f] is malformed. *)
let check_exn (f : Ir.func) =
  match check f with
  | [] -> ()
  | vs ->
    let msgs = List.map (fun v -> Printf.sprintf "bb%d: %s" v.block v.message) vs in
    failwith (Printf.sprintf "Verify: %s: %s" f.Ir.fname (String.concat "; " msgs))
