(** LLVM-flavored intermediate representation.

    The frontend lowers NF elements into this IR the way `clang -O0` would:
    SSA-numbered virtual registers for expression temporaries, and explicit
    stack slots (load/store) for named locals — the paper disables LLVM
    optimizations so the IR "stays as close to the original NF logic as
    possible" (§3.1).  Each instruction carries an annotation separating
    compute, stateless memory, stateful memory, packet accesses, and NF
    framework API calls, mirroring Figure 5. *)

type typ = I1 | I8 | I16 | I32 | I64 | Ptr

let typ_str = function I1 -> "i1" | I8 -> "i8" | I16 -> "i16" | I32 -> "i32" | I64 -> "i64" | Ptr -> "ptr"

let typ_of_width w = if w <= 1 then I1 else if w <= 8 then I8 else if w <= 16 then I16 else if w <= 32 then I32 else I64

let width_of_typ = function I1 -> 1 | I8 -> 8 | I16 -> 16 | I32 -> 32 | I64 -> 64 | Ptr -> 64

type operand =
  | Reg of int  (** SSA virtual register *)
  | Imm of int  (** integer immediate *)
  | Global of string  (** address of a stateful global structure *)
  | Slot of string  (** stack slot of a named local (alloca'd) *)
  | Hdr of string  (** packet header field location, name kept concrete *)
  | Payload  (** packet payload base *)

type cmp = Ceq | Cne | Clt | Cle | Cgt | Cge

let cmp_str = function Ceq -> "eq" | Cne -> "ne" | Clt -> "ult" | Cle -> "ule" | Cgt -> "ugt" | Cge -> "uge"

type op =
  | Add
  | Sub
  | Mul
  | And
  | Or
  | Xor
  | Shl
  | Lshr
  | Icmp of cmp
  | Zext
  | Trunc
  | Select
  | Load
  | Store
  | Gep  (** address arithmetic: base + scaled index *)
  | Call of string
  | Br of int  (** unconditional branch to block id *)
  | Cond_br of int * int  (** conditional branch: (then, else) *)
  | Ret

type annot =
  | Compute
  | Mem_stateless  (** stack-slot traffic; candidates for register allocation *)
  | Mem_stateful of string  (** global state traffic: the paper's "memory accesses" *)
  | Mem_packet  (** header/payload access, held in transfer registers on the NIC *)
  | Api of string  (** framework call needing reverse porting *)
  | Control

type instr = { res : int option; op : op; args : operand list; ty : typ; annot : annot }

type block = {
  bid : int;
  src_sid : int;  (** leader source-statement id; -1 for synthetic blocks *)
  mutable instrs : instr list;  (** in execution order *)
  mutable succs : int list;
}

type func = { fname : string; blocks : block array }

(* -- Queries -- *)

let is_terminator i = match i.op with Br _ | Cond_br _ | Ret -> true | _ -> false

let opcode_str = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Lshr -> "lshr"
  | Icmp c -> "icmp " ^ cmp_str c
  | Zext -> "zext"
  | Trunc -> "trunc"
  | Select -> "select"
  | Load -> "load"
  | Store -> "store"
  | Gep -> "getelementptr"
  | Call f -> "call @" ^ f
  | Br _ -> "br"
  | Cond_br _ -> "br i1"
  | Ret -> "ret"

let operand_str = function
  | Reg r -> Printf.sprintf "%%%d" r
  | Imm n -> string_of_int n
  | Global g -> "@" ^ g
  | Slot s -> "%slot." ^ s
  | Hdr f -> "%hdr." ^ f
  | Payload -> "%payload"

let instr_str i =
  let lhs = match i.res with Some r -> Printf.sprintf "%%%d = " r | None -> "" in
  let args = String.concat ", " (List.map operand_str i.args) in
  let targets =
    match i.op with
    | Br b -> Printf.sprintf " label %%bb%d" b
    | Cond_br (t, f) -> Printf.sprintf ", label %%bb%d, label %%bb%d" t f
    | _ -> ""
  in
  Printf.sprintf "%s%s %s %s%s" lhs (opcode_str i.op) (typ_str i.ty) args targets

let block_str b =
  let header = Printf.sprintf "bb%d:  ; sid=%d" b.bid b.src_sid in
  String.concat "\n" (header :: List.map (fun i -> "  " ^ instr_str i) b.instrs)

let func_str f =
  let blocks = Array.to_list (Array.map block_str f.blocks) in
  String.concat "\n" ((Printf.sprintf "define void @%s(ptr %%pkt) {" f.fname :: blocks) @ [ "}" ])

(* -- Statistics used throughout Clara -- *)

let fold_instrs f acc func =
  Array.fold_left (fun acc b -> List.fold_left f acc b.instrs) acc func.blocks

let count_if p func = fold_instrs (fun acc i -> if p i then acc + 1 else acc) 0 func

let count_compute func =
  count_if (fun i -> match i.annot with Compute -> true | _ -> false) func

(** Stateful memory instructions — the "Mem" column of Table 2. *)
let count_stateful_mem func =
  count_if (fun i -> match i.annot with Mem_stateful _ -> true | _ -> false) func

let count_stateless_mem func =
  count_if (fun i -> match i.annot with Mem_stateless -> true | _ -> false) func

let count_api func = count_if (fun i -> match i.annot with Api _ -> true | _ -> false) func

let count_total func = count_if (fun _ -> true) func

(** Stateful globals referenced by the function, with per-block access
    counts: (global, bid) occurrences. *)
let stateful_refs func =
  let acc = ref [] in
  Array.iter
    (fun b ->
      List.iter
        (fun i -> match i.annot with Mem_stateful g -> acc := (g, b.bid) :: !acc | _ -> ())
        b.instrs)
    func.blocks;
  List.rev !acc

(** Blocks in reverse-post-order-ish index order (blocks are created in
    program order by the builder, which is already a valid linear order). *)
let block_ids func = Array.to_list (Array.map (fun b -> b.bid) func.blocks)

let block func bid =
  if bid < 0 || bid >= Array.length func.blocks then invalid_arg "Ir.block: bad id";
  func.blocks.(bid)

(** Opcode universe used for opcode-distribution histograms (Table 1). *)
let opcode_index i =
  match i.op with
  | Add -> 0
  | Sub -> 1
  | Mul -> 2
  | And -> 3
  | Or -> 4
  | Xor -> 5
  | Shl -> 6
  | Lshr -> 7
  | Icmp _ -> 8
  | Zext -> 9
  | Trunc -> 10
  | Select -> 11
  | Load -> 12
  | Store -> 13
  | Gep -> 14
  | Call _ -> 15
  | Br _ -> 16
  | Cond_br _ -> 17
  | Ret -> 18

let opcode_cardinality = 19

let opcode_histogram funcs =
  let h = Array.make opcode_cardinality 0.0 in
  List.iter
    (fun f -> ignore (fold_instrs (fun () i -> h.(opcode_index i) <- h.(opcode_index i) +. 1.0) () f))
    funcs;
  h
