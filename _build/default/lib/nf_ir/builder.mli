(** Imperative IR construction helper used by the frontend: maintains a
    current block, fresh register numbering, and block creation with
    source-statement attribution. *)

type t = {
  fname : string;
  mutable blocks : Ir.block list;  (** reverse creation order *)
  mutable current : Ir.block;
  mutable next_reg : int;
  mutable next_bid : int;
}

(** Fresh builder; the entry block carries [src_sid = 0] (once per
    packet). *)
val create : string -> t

val fresh_reg : t -> int

(** Append an instruction; returns [res] back for chaining. *)
val emit :
  t ->
  ?res:int ->
  op:Ir.op ->
  args:Ir.operand list ->
  ty:Ir.typ ->
  annot:Ir.annot ->
  unit ->
  int option

(** Emit with a fresh result register; returns the register. *)
val emit_value : t -> op:Ir.op -> args:Ir.operand list -> ty:Ir.typ -> annot:Ir.annot -> int

val emit_void : t -> op:Ir.op -> args:Ir.operand list -> ty:Ir.typ -> annot:Ir.annot -> unit

(** Open a new block attributed to source statement [sid] and make it
    current (not yet linked). *)
val start_block : t -> sid:int -> Ir.block

val current_bid : t -> int

(** Does the current block already end in a terminator? *)
val terminated : t -> bool

(** Terminators; each is a no-op when the block is already terminated. *)
val br : t -> int -> unit

(** [cond_br t cond ~then_ ~else_] branches on the condition operand. *)
val cond_br : t -> Ir.operand -> then_:int -> else_:int -> unit

val ret : t -> unit

(** Seal the function: order blocks by id, terminate stragglers with
    [Ret], and populate successor lists. *)
val finish : t -> Ir.func
