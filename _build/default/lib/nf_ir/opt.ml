(** Optional IR optimization passes.

    The paper deliberately *disables* most LLVM optimizations so the IR
    stays close to the source NF (§3.1).  These passes exist to quantify
    that choice: the ablation experiment runs Clara's predictor on
    optimized IR and shows the accuracy cost when the analyzed IR drifts
    from the distribution the model was trained on.

    Implemented passes (per-block, conservative):
    - constant folding of arithmetic on immediates;
    - copy/load forwarding for stack slots within a block (store-to-load);
    - dead stateless-store elimination within a block. *)

let fold_binop op a b =
  let wrap v = v land 0xffffffff in
  match op with
  | Ir.Add -> Some (wrap (a + b))
  | Ir.Sub -> Some (wrap (a - b))
  | Ir.Mul -> Some (wrap (a * b))
  | Ir.And -> Some (a land b)
  | Ir.Or -> Some (a lor b)
  | Ir.Xor -> Some (a lxor b)
  | Ir.Shl -> Some (wrap (a lsl (b land 31)))
  | Ir.Lshr -> Some (wrap a lsr (b land 31))
  | Ir.Icmp _ | Ir.Zext | Ir.Trunc | Ir.Select | Ir.Load | Ir.Store | Ir.Gep | Ir.Call _
  | Ir.Br _ | Ir.Cond_br _ | Ir.Ret ->
    None

(** Constant-fold a block: instructions whose operands are all immediates
    become known constants; later uses of their result registers are
    rewritten to immediates and the defining instruction is dropped. *)
let constant_fold_block (b : Ir.block) =
  let known = Hashtbl.create 16 in
  let subst = function
    | Ir.Reg r as a -> (
      match Hashtbl.find_opt known r with Some v -> Ir.Imm v | None -> a)
    | a -> a
  in
  let instrs =
    List.filter_map
      (fun (i : Ir.instr) ->
        let args = List.map subst i.Ir.args in
        let i = { i with Ir.args } in
        match (i.Ir.res, args) with
        | Some r, [ Ir.Imm a; Ir.Imm bv ] -> (
          match fold_binop i.Ir.op a bv with
          | Some v ->
            Hashtbl.replace known r v;
            None
          | None -> Some i)
        | _ -> Some i)
      b.Ir.instrs
  in
  b.Ir.instrs <- instrs

(** Forward a stored slot value to subsequent loads of the same slot within
    the block, eliminating the loads (their uses are rewritten to the
    stored operand). *)
let forward_slots_block (b : Ir.block) =
  let slot_value = Hashtbl.create 16 in
  let reg_alias = Hashtbl.create 16 in
  let subst = function
    | Ir.Reg r as a -> ( match Hashtbl.find_opt reg_alias r with Some v -> v | None -> a)
    | a -> a
  in
  let instrs =
    List.filter_map
      (fun (i : Ir.instr) ->
        let args = List.map subst i.Ir.args in
        let i = { i with Ir.args } in
        match (i.Ir.op, i.Ir.res, args) with
        | Ir.Store, _, [ value; Ir.Slot s ] ->
          Hashtbl.replace slot_value s value;
          Some i
        | Ir.Load, Some r, [ Ir.Slot s ] -> (
          match Hashtbl.find_opt slot_value s with
          | Some v ->
            Hashtbl.replace reg_alias r v;
            None
          | None -> Some i)
        | _ -> Some i)
      b.Ir.instrs
  in
  b.Ir.instrs <- instrs

(** Remove stateless stores whose slot is overwritten later in the same
    block without an intervening load of that slot. *)
let dead_store_block (b : Ir.block) =
  let rec mark = function
    | [] -> []
    | ({ Ir.op = Ir.Store; args = [ _; Ir.Slot s ]; annot = Ir.Mem_stateless; _ } as i) :: rest ->
      let rec overwritten = function
        | [] -> false
        | { Ir.op = Ir.Load; args = [ Ir.Slot s' ]; _ } :: _ when String.equal s s' -> false
        | { Ir.op = Ir.Store; args = [ _; Ir.Slot s' ]; _ } :: _ when String.equal s s' -> true
        | _ :: more -> overwritten more
      in
      if overwritten rest then mark rest else i :: mark rest
    | i :: rest -> i :: mark rest
  in
  b.Ir.instrs <- mark b.Ir.instrs

(** Run the full pipeline on a copy of the function. *)
let optimize (f : Ir.func) : Ir.func =
  let blocks =
    Array.map
      (fun b -> { b with Ir.instrs = b.Ir.instrs; Ir.succs = b.Ir.succs })
      f.Ir.blocks
  in
  let copy = { f with Ir.blocks = blocks } in
  Array.iter
    (fun b ->
      constant_fold_block b;
      forward_slots_block b;
      dead_store_block b)
    copy.Ir.blocks;
  copy
