(** Imperative IR construction helper used by the frontend.

    Maintains a current block, fresh register numbering, and block creation
    with source-statement attribution.  Terminators are added explicitly;
    [finish] seals the function and derives successor edges. *)

type t = {
  fname : string;
  mutable blocks : Ir.block list;  (** reverse order *)
  mutable current : Ir.block;
  mutable next_reg : int;
  mutable next_bid : int;
}

let create fname =
  (* entry block executes once per packet: src_sid = 0 by convention *)
  let entry = { Ir.bid = 0; src_sid = 0; instrs = []; succs = [] } in
  { fname; blocks = [ entry ]; current = entry; next_reg = 1; next_bid = 1 }

let fresh_reg t =
  let r = t.next_reg in
  t.next_reg <- r + 1;
  r

(** Append an instruction to the current block and return its result reg. *)
let emit t ?res ~op ~args ~ty ~annot () =
  let instr = { Ir.res; op; args; ty; annot } in
  t.current.instrs <- t.current.instrs @ [ instr ];
  res

let emit_value t ~op ~args ~ty ~annot =
  let r = fresh_reg t in
  ignore (emit t ~res:r ~op ~args ~ty ~annot ());
  r

let emit_void t ~op ~args ~ty ~annot = ignore (emit t ~op ~args ~ty ~annot ())

(** Open a new block attributed to source statement [sid] and make it
    current.  Does not link it; use terminators for that. *)
let start_block t ~sid =
  let b = { Ir.bid = t.next_bid; src_sid = sid; instrs = []; succs = [] } in
  t.next_bid <- t.next_bid + 1;
  t.blocks <- b :: t.blocks;
  t.current <- b;
  b

let current_bid t = t.current.Ir.bid

(** True when the current block already ends in a terminator. *)
let terminated t =
  match List.rev t.current.Ir.instrs with i :: _ -> Ir.is_terminator i | [] -> false

let br t target =
  if not (terminated t) then
    emit_void t ~op:(Ir.Br target) ~args:[] ~ty:Ir.I32 ~annot:Ir.Control

let cond_br t cond ~then_:tb ~else_:eb =
  if not (terminated t) then
    emit_void t ~op:(Ir.Cond_br (tb, eb)) ~args:[ cond ] ~ty:Ir.I1 ~annot:Ir.Control

let ret t = if not (terminated t) then emit_void t ~op:Ir.Ret ~args:[] ~ty:Ir.I32 ~annot:Ir.Control

(** Seal the function: order blocks by id, ensure every block is terminated
    (falling through to [Ret]), and populate successor lists. *)
let finish t =
  (* Terminate the final current block. *)
  ret t;
  let blocks = List.sort (fun a b -> compare a.Ir.bid b.Ir.bid) (List.rev t.blocks) in
  let arr = Array.of_list blocks in
  Array.iter
    (fun b ->
      (* A block left unterminated (e.g. an empty join block) falls through
         to a Ret for safety. *)
      (match List.rev b.Ir.instrs with
      | i :: _ when Ir.is_terminator i -> ()
      | _ -> b.Ir.instrs <- b.Ir.instrs @ [ { Ir.res = None; op = Ir.Ret; args = []; ty = Ir.I32; annot = Ir.Control } ]);
      let succs =
        List.concat_map
          (fun i ->
            match i.Ir.op with
            | Ir.Br target -> [ target ]
            | Ir.Cond_br (a, b) -> [ a; b ]
            | _ -> [])
          b.Ir.instrs
      in
      b.Ir.succs <- List.sort_uniq compare succs)
    arr;
  { Ir.fname = t.fname; blocks = arr }
