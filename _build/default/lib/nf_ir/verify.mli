(** IR well-formedness verifier: terminator discipline, successor-edge
    consistency, define-before-use of registers, and annotation/opcode
    coherence.  An empty violation list means the function is
    well-formed. *)

type violation = { block : int; message : string }

(** All violations in a function. *)
val check : Ir.func -> violation list

(** @raise Failure with a readable report when the function is malformed. *)
val check_exn : Ir.func -> unit
