(** LambdaMART-style pairwise ranking (§4.5): gradient-boosted trees
    trained on pairwise lambda gradients within query groups, as in
    XGBoost's rank:pairwise objective. *)

(** A query group: candidate feature vectors with their relevances
    (higher = better; for colocation, negated degradation). *)
type group = { features : float array array; relevance : float array }

type t = { model : Tree.gbdt }

(** Pairwise lambda gradients of a group at the current scores. *)
val lambdas : group -> float array -> float array

(** Fit the ranker over training groups. *)
val fit : ?n_stages:int -> ?shrinkage:float -> ?max_depth:int -> group list -> t

(** Ranking score of one candidate (higher ranks first). *)
val score : t -> float array -> float

(** Candidate indices, best first. *)
val rank : t -> float array array -> int array

(** Is the truly-best candidate of [group] within the predicted top [k]? *)
val topk_hit : t -> group -> int -> bool
