lib/mlkit/bayes.ml: Array Float List
