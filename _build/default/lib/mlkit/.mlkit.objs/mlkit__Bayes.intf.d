lib/mlkit/bayes.mli:
