lib/mlkit/crossval.ml: Array List Metrics Util
