lib/mlkit/metrics.ml: Array Stdlib Util
