lib/mlkit/la.mli: Util
