lib/mlkit/crossval.mli:
