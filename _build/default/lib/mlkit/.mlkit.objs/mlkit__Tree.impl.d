lib/mlkit/tree.ml: Array La List Util
