lib/mlkit/cnn.ml: Array La List Nn Util
