lib/mlkit/lstm.mli: Nn
