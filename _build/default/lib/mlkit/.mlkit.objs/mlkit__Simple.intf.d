lib/mlkit/simple.mli:
