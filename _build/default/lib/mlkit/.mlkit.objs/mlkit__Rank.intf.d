lib/mlkit/rank.mli: Tree
