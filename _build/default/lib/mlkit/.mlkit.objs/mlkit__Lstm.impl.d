lib/mlkit/lstm.ml: Array La List Nn Util
