lib/mlkit/nn.mli: Util
