lib/mlkit/metrics.mli:
