lib/mlkit/tree.mli:
