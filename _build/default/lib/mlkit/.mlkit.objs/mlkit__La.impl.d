lib/mlkit/la.ml: Array Util
