lib/mlkit/nn.ml: Array La List Util
