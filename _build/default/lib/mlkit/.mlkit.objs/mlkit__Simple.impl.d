lib/mlkit/simple.ml: Array La List Util
