lib/mlkit/automl.mli: Nn Simple Tree
