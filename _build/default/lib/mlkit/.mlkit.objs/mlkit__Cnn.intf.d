lib/mlkit/cnn.mli: Nn
