lib/mlkit/automl.ml: Array List Metrics Nn Simple Tree Util
