lib/mlkit/rank.ml: Array La List Tree Util
