(** Evaluation metrics used throughout the paper's evaluation section. *)

(** Weighted mean absolute percentage error: sum |y - yhat| / sum |y| (the
    Figure 8 accuracy metric). *)
val wmape : float array -> float array -> float

val mae : float array -> float array -> float
val rmse : float array -> float array -> float

(** (precision, recall) over binary predictions; 1.0 = positive. *)
val precision_recall : float array -> float array -> float * float

val accuracy : float array -> float array -> float

(** Deterministic (train indices, test indices) split of [0..n). *)
val train_test_split : ?seed:int -> test_fraction:float -> int -> int array * int array
