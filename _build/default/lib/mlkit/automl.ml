(** TPOT-style AutoML: random search over model families and
    hyperparameters with hold-out validation (§5.1 methodology).

    The search space covers the toolkit's learners (kNN, decision tree,
    random forest, GBDT, MLP); the best pipeline on the validation split is
    refit on all data, mirroring how the paper's AutoML baseline "searches
    through different ML pipelines and hyperparameters". *)

type regressor =
  | R_knn of Simple.knn
  | R_tree of Tree.t
  | R_forest of Tree.forest
  | R_gbdt of Tree.gbdt
  | R_mlp of Nn.mlp

let predict_regressor m x =
  match m with
  | R_knn k -> Simple.knn_predict k x
  | R_tree t -> Tree.predict t x
  | R_forest f -> Tree.forest_predict f x
  | R_gbdt g -> Tree.gbdt_predict g x
  | R_mlp net -> (Nn.mlp_predict net x).(0)

type candidate = { describe : string; fit : float array array -> float array -> regressor }

let regression_candidates seed =
  [ { describe = "knn(k=3)"; fit = (fun xs ys -> R_knn (Simple.knn_fit ~k:3 xs ys)) };
    { describe = "knn(k=7)"; fit = (fun xs ys -> R_knn (Simple.knn_fit ~k:7 xs ys)) };
    { describe = "tree(d=4)";
      fit = (fun xs ys -> R_tree (Tree.grow ~config:{ Tree.default_grow with Tree.max_depth = 4 } xs ys)) };
    { describe = "tree(d=7)";
      fit = (fun xs ys -> R_tree (Tree.grow ~config:{ Tree.default_grow with Tree.max_depth = 7 } xs ys)) };
    { describe = "random_forest(20)"; fit = (fun xs ys -> R_forest (Tree.forest_fit ~n_trees:20 ~seed xs ys)) };
    { describe = "random_forest(40)"; fit = (fun xs ys -> R_forest (Tree.forest_fit ~n_trees:40 ~seed:(seed + 1) xs ys)) };
    { describe = "gbdt(40,0.1)"; fit = (fun xs ys -> R_gbdt (Tree.gbdt_fit ~n_stages:40 ~shrinkage:0.1 xs ys)) };
    { describe = "gbdt(80,0.2)"; fit = (fun xs ys -> R_gbdt (Tree.gbdt_fit ~n_stages:80 ~shrinkage:0.2 xs ys)) };
    { describe = "mlp(16)";
      fit =
        (fun xs ys ->
          let dim = if Array.length xs = 0 then 1 else Array.length xs.(0) in
          let net = Nn.mlp_create (Util.Rng.create seed) ~in_dim:dim ~hidden:[ 16 ] ~out_dim:1 in
          Nn.mlp_fit_regression ~epochs:40 net xs (Array.map (fun y -> [| y |]) ys);
          R_mlp net) } ]

type fitted = { name : string; model : regressor; val_mae : float }

(** Search for the best regression pipeline on a hold-out split, then refit
    the winner on all data. *)
let search_regression ?(seed = 37) xs ys =
  let n = Array.length xs in
  let train_idx, test_idx = Metrics.train_test_split ~seed ~test_fraction:0.3 n in
  let tx = Array.map (fun i -> xs.(i)) train_idx and ty = Array.map (fun i -> ys.(i)) train_idx in
  let vx = Array.map (fun i -> xs.(i)) test_idx and vy = Array.map (fun i -> ys.(i)) test_idx in
  let best = ref None in
  List.iter
    (fun cand ->
      let model = cand.fit tx ty in
      let preds = Array.map (predict_regressor model) vx in
      let err = Metrics.mae preds vy in
      match !best with
      | Some (_, e) when e <= err -> ()
      | _ -> best := Some (cand, err))
    (regression_candidates seed);
  match !best with
  | Some (cand, err) -> { name = cand.describe; model = cand.fit xs ys; val_mae = err }
  | None -> failwith "Automl.search_regression: no candidates"

let predict (f : fitted) x = predict_regressor f.model x

(* -- classification search -- *)

type classifier =
  | C_knn of Simple.knn
  | C_svm of Simple.svm
  | C_gbdt of Tree.gbdt
  | C_tree of Tree.t
  | C_mlp of Nn.mlp

let predict_classifier m x =
  match m with
  | C_knn k -> Simple.knn_predict_binary k x
  | C_svm s -> Simple.svm_predict_binary s x
  | C_gbdt g -> if Tree.gbdt_predict_binary g x > 0.5 then 1.0 else 0.0
  | C_tree t -> if Tree.predict t x > 0.5 then 1.0 else 0.0
  | C_mlp net -> if Nn.mlp_predict_binary net x > 0.5 then 1.0 else 0.0

type cls_candidate = { c_describe : string; c_fit : float array array -> float array -> classifier }

let classification_candidates seed =
  [ { c_describe = "knn(k=3)"; c_fit = (fun xs ys -> C_knn (Simple.knn_fit ~k:3 xs ys)) };
    { c_describe = "knn(k=5)"; c_fit = (fun xs ys -> C_knn (Simple.knn_fit ~k:5 xs ys)) };
    { c_describe = "svm(1e-3)"; c_fit = (fun xs ys -> C_svm (Simple.svm_fit ~lambda:1e-3 ~seed xs ys)) };
    { c_describe = "gbdt(40)"; c_fit = (fun xs ys -> C_gbdt (Tree.gbdt_fit_binary ~n_stages:40 xs ys)) };
    { c_describe = "tree(d=5)";
      c_fit = (fun xs ys -> C_tree (Tree.grow ~config:{ Tree.default_grow with Tree.max_depth = 5 } xs ys)) };
    { c_describe = "mlp(16)";
      c_fit =
        (fun xs ys ->
          let dim = if Array.length xs = 0 then 1 else Array.length xs.(0) in
          let net = Nn.mlp_create (Util.Rng.create seed) ~in_dim:dim ~hidden:[ 16 ] ~out_dim:1 in
          Nn.mlp_fit_binary ~epochs:40 net xs ys;
          C_mlp net) } ]

type cls_fitted = { c_name : string; c_model : classifier; c_val_acc : float }

let search_classification ?(seed = 41) xs ys =
  let n = Array.length xs in
  let train_idx, test_idx = Metrics.train_test_split ~seed ~test_fraction:0.3 n in
  let tx = Array.map (fun i -> xs.(i)) train_idx and ty = Array.map (fun i -> ys.(i)) train_idx in
  let vx = Array.map (fun i -> xs.(i)) test_idx and vy = Array.map (fun i -> ys.(i)) test_idx in
  let best = ref None in
  List.iter
    (fun cand ->
      let model = cand.c_fit tx ty in
      let preds = Array.map (predict_classifier model) vx in
      let acc = Metrics.accuracy preds vy in
      match !best with
      | Some (_, a) when a >= acc -> ()
      | _ -> best := Some (cand, acc))
    (classification_candidates seed);
  match !best with
  | Some (cand, acc) -> { c_name = cand.c_describe; c_model = cand.c_fit xs ys; c_val_acc = acc }
  | None -> failwith "Automl.search_classification: no candidates"

let predict_class (f : cls_fitted) x = predict_classifier f.c_model x
