(** Evaluation metrics used throughout the paper's evaluation section. *)

(** Weighted mean absolute percentage error: sum |y - yhat| / sum |y|. *)
let wmape preds truths =
  let num = ref 0.0 and den = ref 0.0 in
  Array.iteri
    (fun i p ->
      num := !num +. abs_float (p -. truths.(i));
      den := !den +. abs_float truths.(i))
    preds;
  if !den <= 0.0 then 0.0 else !num /. !den

let mae preds truths =
  let n = Array.length preds in
  if n = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    Array.iteri (fun i p -> acc := !acc +. abs_float (p -. truths.(i))) preds;
    !acc /. float_of_int n
  end

let rmse preds truths =
  let n = Array.length preds in
  if n = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    Array.iteri (fun i p -> acc := !acc +. ((p -. truths.(i)) ** 2.0)) preds;
    sqrt (!acc /. float_of_int n)
  end

(** Precision/recall over binary predictions (1.0 = positive). *)
let precision_recall preds truths =
  let tp = ref 0 and fp = ref 0 and fn = ref 0 in
  Array.iteri
    (fun i p ->
      let pos = p > 0.5 and t = truths.(i) > 0.5 in
      match (pos, t) with
      | true, true -> incr tp
      | true, false -> incr fp
      | false, true -> incr fn
      | false, false -> ())
    preds;
  let precision =
    if !tp + !fp = 0 then 1.0 else float_of_int !tp /. float_of_int (!tp + !fp)
  in
  let recall = if !tp + !fn = 0 then 1.0 else float_of_int !tp /. float_of_int (!tp + !fn) in
  (precision, recall)

let accuracy preds truths =
  let n = Array.length preds in
  if n = 0 then 0.0
  else begin
    let ok = ref 0 in
    Array.iteri (fun i p -> if Stdlib.( = ) (p > 0.5) (truths.(i) > 0.5) then incr ok) preds;
    float_of_int !ok /. float_of_int n
  end

(** Split indices deterministically into train/test. *)
let train_test_split ?(seed = 31) ~test_fraction n =
  let rng = Util.Rng.create seed in
  let idx = Array.init n (fun i -> i) in
  Util.Rng.shuffle rng idx;
  let n_test = int_of_float (test_fraction *. float_of_int n) in
  (Array.sub idx n_test (n - n_test), Array.sub idx 0 n_test)
