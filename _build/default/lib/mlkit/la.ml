(** Small dense linear-algebra kernels for the ML toolkit.

    Vectors are [float array], matrices are row-major [float array array].
    Everything is allocation-explicit and good enough for the model sizes
    Clara needs (hidden dims of tens, feature dims of hundreds). *)

let vec n = Array.make n 0.0

let mat rows cols = Array.init rows (fun _ -> Array.make cols 0.0)

let copy_mat m = Array.map Array.copy m

(** Xavier-style random initialization. *)
let randn_mat rng rows cols =
  let scale = sqrt (2.0 /. float_of_int (rows + cols)) in
  Array.init rows (fun _ -> Array.init cols (fun _ -> scale *. Util.Rng.gaussian rng))

let dot a b =
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

(** [mat_vec m x] = m * x. *)
let mat_vec m x =
  Array.map (fun row -> dot row x) m

(** [mat_vec_add_into dst m x] accumulates m*x into dst. *)
let mat_vec_add_into dst m x =
  Array.iteri (fun i row -> dst.(i) <- dst.(i) +. dot row x) m

(** Accumulate column [j] of [m] into [dst] — multiplication by a one-hot
    vector, the fast path for one-hot-encoded instruction words. *)
let add_column_into dst m j =
  for i = 0 to Array.length m - 1 do
    dst.(i) <- dst.(i) +. m.(i).(j)
  done

let axpy alpha x y =
  for i = 0 to Array.length x - 1 do
    y.(i) <- y.(i) +. (alpha *. x.(i))
  done

let scale_vec alpha x = Array.map (fun v -> alpha *. v) x

let add_vec a b = Array.init (Array.length a) (fun i -> a.(i) +. b.(i))
let sub_vec a b = Array.init (Array.length a) (fun i -> a.(i) -. b.(i))

let hadamard a b = Array.init (Array.length a) (fun i -> a.(i) *. b.(i))

let l2_norm x = sqrt (dot x x)

let euclidean a b =
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc

(** Outer-product accumulation: g += a * b^T, used by backprop. *)
let outer_add_into g a b =
  for i = 0 to Array.length a - 1 do
    let gi = g.(i) in
    let ai = a.(i) in
    for j = 0 to Array.length b - 1 do
      gi.(j) <- gi.(j) +. (ai *. b.(j))
    done
  done

(** g^T * a: gradient wrt the input of a linear layer. *)
let mat_t_vec m a =
  let cols = if Array.length m = 0 then 0 else Array.length m.(0) in
  let out = vec cols in
  for i = 0 to Array.length m - 1 do
    let row = m.(i) in
    let ai = a.(i) in
    for j = 0 to cols - 1 do
      out.(j) <- out.(j) +. (row.(j) *. ai)
    done
  done;
  out

let sigmoid x = 1.0 /. (1.0 +. exp (-.x))
let dsigmoid y = y *. (1.0 -. y)  (* derivative given the output *)
let dtanh y = 1.0 -. (y *. y)

let relu x = if x > 0.0 then x else 0.0

let mean_vec xs =
  let n = Array.length xs in
  let dim = Array.length xs.(0) in
  let m = vec dim in
  Array.iter (fun x -> axpy (1.0 /. float_of_int n) x m) xs;
  m

(** Standardize features column-wise; returns (transformed, mean, std). *)
let standardize xs =
  let n = Array.length xs in
  if n = 0 then ([||], [||], [||])
  else begin
    let dim = Array.length xs.(0) in
    let mu = mean_vec xs in
    let sd = vec dim in
    Array.iter (fun x -> Array.iteri (fun j v -> sd.(j) <- sd.(j) +. ((v -. mu.(j)) ** 2.0)) x) xs;
    (* near-constant features get unit scale: dividing by a vanishing sd
       would explode unseen values at inference time *)
    let sd =
      Array.map
        (fun s ->
          let v = sqrt (s /. float_of_int n) in
          if v < 1e-6 then 1.0 else v)
        sd
    in
    let out = Array.map (fun x -> Array.mapi (fun j v -> (v -. mu.(j)) /. sd.(j)) x) xs in
    (out, mu, sd)
  end

let apply_standardize x mu sd = Array.mapi (fun j v -> (v -. mu.(j)) /. sd.(j)) x
