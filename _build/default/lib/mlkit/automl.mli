(** TPOT-style AutoML: search over model families and hyperparameters with
    hold-out validation, then refit the winner on all data (the paper's
    AutoML baseline, §5.1). *)

type regressor =
  | R_knn of Simple.knn
  | R_tree of Tree.t
  | R_forest of Tree.forest
  | R_gbdt of Tree.gbdt
  | R_mlp of Nn.mlp

val predict_regressor : regressor -> float array -> float

(** One pipeline candidate. *)
type candidate = { describe : string; fit : float array array -> float array -> regressor }

(** The regression search space (kNN/tree/forest/GBDT/MLP variants). *)
val regression_candidates : int -> candidate list

(** A fitted search result: the winning pipeline's name, the model refit
    on all data, and its hold-out MAE. *)
type fitted = { name : string; model : regressor; val_mae : float }

val search_regression : ?seed:int -> float array array -> float array -> fitted
val predict : fitted -> float array -> float

(** {1 Classification search} *)

type classifier =
  | C_knn of Simple.knn
  | C_svm of Simple.svm
  | C_gbdt of Tree.gbdt
  | C_tree of Tree.t
  | C_mlp of Nn.mlp

val predict_classifier : classifier -> float array -> float

type cls_candidate = {
  c_describe : string;
  c_fit : float array array -> float array -> classifier;
}

val classification_candidates : int -> cls_candidate list

type cls_fitted = { c_name : string; c_model : classifier; c_val_acc : float }

val search_classification : ?seed:int -> float array array -> float array -> cls_fitted
val predict_class : cls_fitted -> float array -> float
