(** Classical learners: k-nearest neighbours, linear SVM (Pegasos),
    K-means and PCA — Clara's classifier (§4.1), the coalescing clusterer
    (§4.4), the Figure 10a projection, and evaluation baselines. *)

(** {1 k-nearest neighbours} *)

type knn = {
  k : int;
  xs : float array array;  (** standardized training features *)
  ys : float array;
  mu : float array;
  sd : float array;
}

val knn_fit : ?k:int -> float array array -> float array -> knn

(** The k nearest (distance, target) pairs of a query. *)
val knn_neighbors : knn -> float array -> (float * float) array

(** Regression: mean of the k nearest targets. *)
val knn_predict : knn -> float array -> float

(** Classification: majority vote over {0,1} labels. *)
val knn_predict_binary : knn -> float array -> float

(** {1 Linear SVM (Pegasos)} *)

type svm = { w : float array; b : float; mu : float array; sd : float array }

(** Hinge-loss subgradient training; labels in {0,1}.  Classes are sampled
    with equal probability, which matters for the few-positives
    accelerator corpora; the bias rides along as a regularized constant
    feature. *)
val svm_fit : ?lambda:float -> ?epochs:int -> ?seed:int -> float array array -> float array -> svm

(** Signed margin. *)
val svm_score : svm -> float array -> float

val svm_predict_binary : svm -> float array -> float

(** {1 K-means} *)

type kmeans = { centroids : float array array }

(** Lloyd's algorithm with k-means++-style seeding. *)
val kmeans_fit : ?iters:int -> ?seed:int -> k:int -> float array array -> kmeans

(** Index of the closest centroid. *)
val kmeans_assign : kmeans -> float array -> int

(** Cluster membership as index lists, one per centroid. *)
val kmeans_clusters : kmeans -> float array array -> int list array

(** {1 PCA} *)

type pca = { components : float array array; mean : float array }

(** Top components by power iteration with deflation. *)
val pca_fit : ?n_components:int -> ?iters:int -> ?seed:int -> float array array -> pca

(** Project a point onto the fitted components. *)
val pca_transform : pca -> float array -> float array
