(** K-fold cross-validation utilities: variance-aware accuracy reporting
    and model-family selection for the smaller training corpora of this
    reproduction. *)

(** Deterministic folds: [(train, test)] index arrays.
    @raise Invalid_argument unless 2 <= k <= n. *)
val kfold : ?seed:int -> k:int -> int -> (int array * int array) list

(** (mean, stddev) of the per-fold held-out MAE of a regression family. *)
val cv_regression :
  ?seed:int ->
  k:int ->
  fit:(float array array -> float array -> 'model) ->
  predict:('model -> float array -> float) ->
  float array array ->
  float array ->
  float * float

(** (mean, stddev) of the per-fold held-out accuracy of a classifier
    family (binary labels). *)
val cv_classification :
  ?seed:int ->
  k:int ->
  fit:(float array array -> float array -> 'model) ->
  predict:('model -> float array -> float) ->
  float array array ->
  float array ->
  float * float

(** The (name, mean MAE) of the best candidate under K-fold CV. *)
val select_regression :
  ?seed:int ->
  ?k:int ->
  (string * (float array array -> float array -> 'model) * ('model -> float array -> float)) list ->
  float array array ->
  float array ->
  string * float
