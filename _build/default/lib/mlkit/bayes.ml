(** Gaussian naive Bayes classifier.

    A cheap, well-calibrated baseline for the feature-vector
    classification tasks (algorithm identification uses dense bounded
    features where per-class Gaussians are a reasonable likelihood). *)

type class_stats = {
  prior : float;
  means : float array;
  variances : float array;  (** floored for numerical stability *)
}

type t = { classes : (float * class_stats) list }

let variance_floor = 1e-4

let fit_class xs =
  let n = float_of_int (Array.length xs) in
  let dim = Array.length xs.(0) in
  let means = Array.make dim 0.0 in
  Array.iter (fun x -> Array.iteri (fun j v -> means.(j) <- means.(j) +. (v /. n)) x) xs;
  let variances = Array.make dim 0.0 in
  Array.iter
    (fun x -> Array.iteri (fun j v -> variances.(j) <- variances.(j) +. (((v -. means.(j)) ** 2.0) /. n)) x)
    xs;
  Array.iteri (fun j v -> variances.(j) <- max variance_floor v) variances;
  (means, variances)

(** Train on labeled features; labels are floats used as class keys (the
    binary case uses {0., 1.}). *)
let fit (xs : float array array) (ys : float array) =
  if Array.length xs = 0 then invalid_arg "Bayes.fit: empty";
  let labels = List.sort_uniq compare (Array.to_list ys) in
  let total = float_of_int (Array.length xs) in
  let classes =
    List.map
      (fun label ->
        let members =
          Array.of_list
            (List.filteri (fun i _ -> ys.(i) = label) (Array.to_list xs))
        in
        let means, variances = fit_class members in
        (label, { prior = float_of_int (Array.length members) /. total; means; variances }))
      labels
  in
  { classes }

let log_likelihood stats x =
  let acc = ref (log stats.prior) in
  Array.iteri
    (fun j v ->
      let var = stats.variances.(j) in
      let d = v -. stats.means.(j) in
      acc := !acc -. (0.5 *. ((d *. d /. var) +. log (2.0 *. Float.pi *. var))))
    x;
  !acc

(** Most probable class label. *)
let predict t x =
  match t.classes with
  | [] -> invalid_arg "Bayes.predict: untrained"
  | (l0, s0) :: rest ->
    fst
      (List.fold_left
         (fun (bl, bs) (label, stats) ->
           let s = log_likelihood stats x in
           if s > bs then (label, s) else (bl, bs))
         (l0, log_likelihood s0 x)
         rest)

(** Posterior probability of label 1.0 for binary problems. *)
let predict_binary t x =
  let score label =
    match List.assoc_opt label t.classes with
    | Some stats -> log_likelihood stats x
    | None -> neg_infinity
  in
  let p1 = score 1.0 and p0 = score 0.0 in
  if p1 = neg_infinity then 0.0
  else if p0 = neg_infinity then 1.0
  else 1.0 /. (1.0 +. exp (p0 -. p1))
