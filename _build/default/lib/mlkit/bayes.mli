(** Gaussian naive Bayes classifier: a cheap, calibrated baseline for
    dense bounded feature vectors. *)

type class_stats = {
  prior : float;
  means : float array;
  variances : float array;  (** floored for numerical stability *)
}

type t = { classes : (float * class_stats) list }

val variance_floor : float

(** Per-class Gaussian fit: (means, floored variances). *)
val fit_class : float array array -> float array * float array

(** Train on labeled features; labels are floats used as class keys.
    @raise Invalid_argument on an empty dataset. *)
val fit : float array array -> float array -> t

(** Log prior + log likelihood of a point under one class. *)
val log_likelihood : class_stats -> float array -> float

(** Most probable class label. *)
val predict : t -> float array -> float

(** Posterior probability of label 1.0 for binary problems. *)
val predict_binary : t -> float array -> float
