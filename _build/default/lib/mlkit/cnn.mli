(** 1-D convolutional network over token sequences (the "CNN" baseline of
    Figure 8): one-hot tokens -> conv1d (ReLU) -> global max-pool -> FC.
    Backprop routes gradients through the max-pool winners only. *)

type t = {
  vocab : int;
  window : int;
  filters : int;
  conv : Nn.param;  (** filters x (window * vocab + 1); sparse via one-hot *)
  fc : Nn.param;  (** out x (filters + 1) *)
  mutable y_scale : float;
}

val create : ?window:int -> ?filters:int -> ?out_dim:int -> vocab:int -> int -> t
val params : t -> Nn.param list

(** Convolution activation of filter [f] at position [pos]. *)
val conv_at : t -> int array -> int -> int -> float

(** Max-pooled ReLU activations and their argmax positions. *)
val forward : t -> int array -> float array * int array

(** Unscaled prediction; zeros for the empty sequence. *)
val predict : t -> int array -> float array

(** Backprop one (sequence, scaled target) example into {!params};
    returns the squared error.  Exposed for gradient checks. *)
val backward : t -> int array -> float array -> float

(** Fit on (sequence, target) pairs with internally scaled targets. *)
val fit : ?epochs:int -> ?lr:float -> ?seed:int -> t -> (int array * float array) array -> unit
