(** Pcap-style packet traces.

    The paper's state-placement analysis profiles NFs against "a pcap
    trace, similar as in host NF analysis projects" (§4.3).  This module
    serializes generated workloads into a simplified libpcap-format file
    (global header + per-packet record headers + an Ethernet/IPv4/L4
    frame) and reads them back, so workloads can be captured once and
    replayed across experiments. *)

let magic = 0xa1b2c3d4
let version_major = 2
let version_minor = 4
let linktype_ethernet = 1

let write_u32 buf v =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff))

let write_u16 buf v =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff))

(* network byte order for frame contents *)
let frame_u16 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (v land 0xff))

let frame_u32 buf v =
  frame_u16 buf ((v lsr 16) land 0xffff);
  frame_u16 buf (v land 0xffff)

(** Serialize one packet as an Ethernet/IPv4/TCP-or-UDP frame. *)
let frame_of_packet (p : Nf_lang.Packet.t) =
  let buf = Buffer.create 128 in
  (* ethernet: synthetic MACs + ethertype *)
  for k = 0 to 5 do
    Buffer.add_char buf (Char.chr (0x02 + k))
  done;
  for k = 0 to 5 do
    Buffer.add_char buf (Char.chr (0x12 + k))
  done;
  frame_u16 buf p.Nf_lang.Packet.eth_type;
  (* ipv4 header *)
  Buffer.add_char buf (Char.chr ((4 lsl 4) lor p.Nf_lang.Packet.ip_hl));
  Buffer.add_char buf (Char.chr p.Nf_lang.Packet.ip_tos);
  frame_u16 buf p.Nf_lang.Packet.ip_len;
  frame_u16 buf p.Nf_lang.Packet.ip_id;
  frame_u16 buf 0;
  Buffer.add_char buf (Char.chr p.Nf_lang.Packet.ip_ttl);
  Buffer.add_char buf (Char.chr p.Nf_lang.Packet.ip_proto);
  frame_u16 buf p.Nf_lang.Packet.ip_csum;
  frame_u32 buf p.Nf_lang.Packet.ip_src;
  frame_u32 buf p.Nf_lang.Packet.ip_dst;
  (* l4 *)
  if p.Nf_lang.Packet.ip_proto = Nf_lang.Packet.udp_proto then begin
    frame_u16 buf p.Nf_lang.Packet.udp_sport;
    frame_u16 buf p.Nf_lang.Packet.udp_dport;
    frame_u16 buf p.Nf_lang.Packet.udp_len;
    frame_u16 buf p.Nf_lang.Packet.udp_csum
  end
  else begin
    frame_u16 buf p.Nf_lang.Packet.tcp_sport;
    frame_u16 buf p.Nf_lang.Packet.tcp_dport;
    frame_u32 buf p.Nf_lang.Packet.tcp_seq;
    frame_u32 buf p.Nf_lang.Packet.tcp_ack;
    Buffer.add_char buf (Char.chr ((p.Nf_lang.Packet.tcp_off lsl 4) land 0xff));
    Buffer.add_char buf (Char.chr p.Nf_lang.Packet.tcp_flags);
    frame_u16 buf p.Nf_lang.Packet.tcp_win;
    frame_u16 buf p.Nf_lang.Packet.tcp_csum;
    frame_u16 buf 0 (* urgent pointer *)
  end;
  Buffer.add_bytes buf p.Nf_lang.Packet.payload;
  Buffer.contents buf

(** Write packets to [path] in pcap format, one microsecond apart. *)
let save path (packets : Nf_lang.Packet.t list) =
  let oc = open_out_bin path in
  let buf = Buffer.create 4096 in
  write_u32 buf magic;
  write_u16 buf version_major;
  write_u16 buf version_minor;
  write_u32 buf 0;
  write_u32 buf 0;
  write_u32 buf 65535;
  write_u32 buf linktype_ethernet;
  List.iteri
    (fun k p ->
      let frame = frame_of_packet p in
      write_u32 buf (k / 1_000_000);
      write_u32 buf (k mod 1_000_000);
      write_u32 buf (String.length frame);
      write_u32 buf (String.length frame);
      Buffer.add_string buf frame)
    packets;
  output_string oc (Buffer.contents buf);
  close_out oc

exception Malformed of string

let read_u32 s off =
  if off + 4 > String.length s then raise (Malformed "truncated u32");
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let fr_u16 s off =
  if off + 2 > String.length s then raise (Malformed "truncated field");
  (Char.code s.[off] lsl 8) lor Char.code s.[off + 1]

let fr_u32 s off = (fr_u16 s off lsl 16) lor fr_u16 s (off + 2)

(** Parse one frame back into a packet. *)
let packet_of_frame frame =
  if String.length frame < 34 then raise (Malformed "frame too short");
  let ihl = Char.code frame.[14] land 0xf in
  let proto = Char.code frame.[23] in
  let ip_len = fr_u16 frame 16 in
  let payload_len = max 0 (ip_len - (ihl * 4) - 20) in
  let p = Nf_lang.Packet.create ~payload_len () in
  p.Nf_lang.Packet.eth_type <- fr_u16 frame 12;
  p.Nf_lang.Packet.ip_hl <- ihl;
  p.Nf_lang.Packet.ip_tos <- Char.code frame.[15];
  p.Nf_lang.Packet.ip_len <- ip_len;
  p.Nf_lang.Packet.ip_id <- fr_u16 frame 18;
  p.Nf_lang.Packet.ip_ttl <- Char.code frame.[22];
  p.Nf_lang.Packet.ip_proto <- proto;
  p.Nf_lang.Packet.ip_csum <- fr_u16 frame 24;
  p.Nf_lang.Packet.ip_src <- fr_u32 frame 26;
  p.Nf_lang.Packet.ip_dst <- fr_u32 frame 30;
  let l4 = 14 + (ihl * 4) in
  (if proto = Nf_lang.Packet.udp_proto then begin
     p.Nf_lang.Packet.udp_sport <- fr_u16 frame l4;
     p.Nf_lang.Packet.udp_dport <- fr_u16 frame (l4 + 2);
     p.Nf_lang.Packet.udp_len <- fr_u16 frame (l4 + 4);
     p.Nf_lang.Packet.udp_csum <- fr_u16 frame (l4 + 6)
   end
   else begin
     p.Nf_lang.Packet.tcp_sport <- fr_u16 frame l4;
     p.Nf_lang.Packet.tcp_dport <- fr_u16 frame (l4 + 2);
     p.Nf_lang.Packet.tcp_seq <- fr_u32 frame (l4 + 4);
     p.Nf_lang.Packet.tcp_ack <- fr_u32 frame (l4 + 8);
     p.Nf_lang.Packet.tcp_off <- Char.code frame.[l4 + 12] lsr 4;
     p.Nf_lang.Packet.tcp_flags <- Char.code frame.[l4 + 13];
     p.Nf_lang.Packet.tcp_win <- fr_u16 frame (l4 + 14);
     p.Nf_lang.Packet.tcp_csum <- fr_u16 frame (l4 + 16)
   end);
  let header_bytes = l4 + if proto = Nf_lang.Packet.udp_proto then 8 else 20 in
  let avail = min payload_len (String.length frame - header_bytes) in
  for k = 0 to avail - 1 do
    Nf_lang.Packet.set_payload_byte p k (Char.code frame.[header_bytes + k])
  done;
  p

(** Load a pcap file written by {!save}. *)
let load path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  if len < 24 then raise (Malformed "no global header");
  if read_u32 s 0 <> magic then raise (Malformed "bad magic");
  let rec go off acc =
    if off >= len then List.rev acc
    else begin
      if off + 16 > len then raise (Malformed "truncated record header");
      let caplen = read_u32 s (off + 8) in
      if off + 16 + caplen > len then raise (Malformed "truncated frame");
      let frame = String.sub s (off + 16) caplen in
      go (off + 16 + caplen) (packet_of_frame frame :: acc)
    end
  in
  go 24 []
