lib/workload/trace.mli: Nf_lang
