lib/workload/workload.ml: Array Hashtbl List Nf_lang Trace Util
