lib/workload/trace.ml: Buffer Char List Nf_lang String
