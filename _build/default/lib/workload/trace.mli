(** Pcap-style packet traces (§4.3 profiles against "a pcap trace"):
    serialize generated workloads into a simplified libpcap file (global
    header, per-record headers, Ethernet/IPv4/L4 frames) and read them
    back for replay across experiments. *)

val magic : int
val linktype_ethernet : int

(** One packet as an Ethernet/IPv4/TCP-or-UDP frame. *)
val frame_of_packet : Nf_lang.Packet.t -> string

(** Write packets to a pcap file, one microsecond apart. *)
val save : string -> Nf_lang.Packet.t list -> unit

exception Malformed of string

(** Parse one frame.  @raise Malformed on truncated input. *)
val packet_of_frame : string -> Nf_lang.Packet.t

(** Load a pcap file written by {!save}.
    @raise Malformed on corrupt files. *)
val load : string -> Nf_lang.Packet.t list
