(** Figure 16: expert emulation for memory coalescing — Clara's K-means
    packing vs exhaustive packing of the hottest variables.  The expert
    additionally controls inter-pack relative placement, giving it a small
    edge; Clara remains competitive. *)

open Nicsim

let elements = [ "aggcounter"; "timefilter"; "webtcp"; "tcpgen" ]

type row = {
  nf : string;
  clara_cores : int;
  expert_cores : int;
  clara_lat : float;
  expert_lat : float;
}

let compute ?(spec = { (Common.mixed ~packets:1200 ()) with Workload.n_flows = 64 }) () =
  List.map
    (fun name ->
      let elt = Nf_lang.Corpus.find name in
      let _, clara_ported = Clara.Coalesce.apply elt spec in
      let _, expert_ported = Clara.Coalesce.expert_search ~limit:5 elt spec in
      let lat ported = (Nic.measure ~cores:8 ported).Multicore.latency_us in
      {
        nf = name;
        clara_cores = Multicore.cores_to_saturate clara_ported.Nic.demand;
        expert_cores = Multicore.cores_to_saturate expert_ported.Nic.demand;
        clara_lat = lat clara_ported;
        expert_lat = lat expert_ported;
      })
    elements

let run () =
  Common.banner "Figure 16: coalescing — Clara vs exhaustive 'expert' packing";
  let rows = compute () in
  Util.Table.print ~align:Util.Table.Left
    ~header:[ "Element"; "Clara cores"; "Expert cores"; "Clara Lat"; "Expert Lat" ]
    (List.map
       (fun r ->
         [ r.nf; string_of_int r.clara_cores; string_of_int r.expert_cores;
           Common.fmt_us r.clara_lat; Common.fmt_us r.expert_lat ])
       rows);
  print_endline
    "\nPaper shape: exhaustive packing of the hottest variables delivers a small\nadvantage (it also tunes relative pack positions); Clara stays competitive."
