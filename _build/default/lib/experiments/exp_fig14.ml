(** Figure 14: NF colocation analysis.

    (a) Top-1/2/3 ranking accuracy of four LambdaMART models trained with
        different objectives (total/average throughput/latency loss),
        tested on groups of synthesized NFs.
    (b) Throughput degradation for the six pairs of four real NFs, ranked
        by Clara.
    (c) Latency increases for the same pairs. *)

open Nicsim

let real_nfs = [ ("NF1", "Mazu-NAT"); ("NF2", "DNSProxy"); ("NF3", "UDPCount"); ("NF4", "Webgen") ]

let real_name short =
  match List.assoc_opt short real_nfs with
  | Some "Webgen" -> "WebGen"
  | Some n -> n
  | None -> short

let accuracy_rows () =
  let demands = Common.synth_demands () in
  List.map
    (fun objective ->
      let train_groups =
        Clara.Colocation.make_groups ~n_groups:(Common.scale 25) ~seed:2101 objective demands
      in
      let test_groups =
        Clara.Colocation.make_groups ~n_groups:(Common.scale 20) ~seed:9203 objective demands
      in
      let model = Clara.Colocation.train ~groups:train_groups ~objective demands in
      ( Clara.Colocation.objective_name objective,
        Clara.Colocation.topk_accuracy model test_groups 1,
        Clara.Colocation.topk_accuracy model test_groups 2,
        Clara.Colocation.topk_accuracy model test_groups 3 ))
    Clara.Colocation.all_objectives

type pair_row = {
  label : string;
  coloc1 : Multicore.point;
  coloc2 : Multicore.point;
  solo1 : Multicore.point;
  solo2 : Multicore.point;
  base1 : Multicore.point;
  base2 : Multicore.point;
  loss : float;
}

let real_pairs () =
  let spec = Common.small_flows () in
  let demands =
    List.map
      (fun (short, _) ->
        (short, (Nic.port (Nf_lang.Corpus.find (real_name short)) spec).Nic.demand))
      real_nfs
  in
  let pairs =
    [ ("NF1", "NF4"); ("NF3", "NF4"); ("NF2", "NF4"); ("NF1", "NF3"); ("NF1", "NF2");
      ("NF2", "NF3") ]
  in
  List.map
    (fun (a, b) ->
      let da = List.assoc a demands and db = List.assoc b demands in
      let r = Colocate.colocate da db in
      {
        label = a ^ "+" ^ b;
        coloc1 = r.Colocate.t1;
        coloc2 = r.Colocate.t2;
        solo1 = r.Colocate.solo1;
        solo2 = r.Colocate.solo2;
        base1 = r.Colocate.lat_base1;
        base2 = r.Colocate.lat_base2;
        loss = Colocate.total_throughput_loss r;
      })
    pairs

let ranking_check rows =
  (* does a Clara model trained on synthesized NFs rank the real pairs by
     their true degradation?  Training and testing share the workload, as
     in the paper's methodology (§5.1) *)
  let demands = Common.synth_demands ~spec:{ (Common.small_flows ()) with Workload.n_packets = 300 } () in
  let model = Clara.Colocation.train ~objective:Clara.Colocation.Total_throughput demands in
  let spec = Common.small_flows () in
  let real_demands =
    List.map
      (fun (short, _) -> (short, (Nic.port (Nf_lang.Corpus.find (real_name short)) spec).Nic.demand))
      real_nfs
  in
  let candidates =
    List.map
      (fun r ->
        match String.split_on_char '+' r.label with
        | [ a; b ] -> (List.assoc a real_demands, List.assoc b real_demands)
        | _ -> assert false)
      rows
  in
  let order = Clara.Colocation.rank model candidates in
  let truly_best =
    fst
      (List.fold_left
         (fun (bi, bl) (i, r) -> if r.loss < bl then (i, r.loss) else (bi, bl))
         (0, infinity)
         (List.mapi (fun i r -> (i, r)) rows))
  in
  let top3 = match order with a :: b :: c :: _ -> [ a; b; c ] | l -> l in
  (order, List.mem truly_best top3)

let run () =
  Common.banner "Figure 14a: colocation ranking accuracy by training objective";
  Util.Table.print ~align:Util.Table.Left
    ~header:[ "Objective"; "Top-1"; "Top-2"; "Top-3" ]
    (List.map
       (fun (name, t1, t2, t3) ->
         [ name; Util.Table.fmt_pct (100.0 *. t1); Util.Table.fmt_pct (100.0 *. t2);
           Util.Table.fmt_pct (100.0 *. t3) ])
       (accuracy_rows ()));
  print_endline
    "Paper shape: total-throughput objective is best (70%+ top-1, 85%+ top-3).";
  Common.banner "Figure 14b: throughput loss caused by colocation (real NFs)";
  let rows = real_pairs () in
  Util.Table.print ~align:Util.Table.Left
    ~header:[ "pair"; "coloc Th A+B"; "solo Th A+B"; "total loss" ]
    (List.map
       (fun r ->
         [ r.label;
           Printf.sprintf "%s+%s"
             (Common.fmt_mpps r.coloc1.Multicore.throughput_mpps)
             (Common.fmt_mpps r.coloc2.Multicore.throughput_mpps);
           Printf.sprintf "%s+%s"
             (Common.fmt_mpps r.solo1.Multicore.throughput_mpps)
             (Common.fmt_mpps r.solo2.Multicore.throughput_mpps);
           Util.Table.fmt_pct (100.0 *. r.loss) ])
       rows);
  Common.banner "Figure 14c: latency increase caused by colocation";
  Util.Table.print ~align:Util.Table.Left
    ~header:[ "pair"; "coloc Lat A/B (us)"; "alone-on-share Lat A/B (us)"; "increase" ]
    (List.map
       (fun r ->
         [ r.label;
           Printf.sprintf "%s/%s" (Common.fmt_us r.coloc1.Multicore.latency_us)
             (Common.fmt_us r.coloc2.Multicore.latency_us);
           Printf.sprintf "%s/%s" (Common.fmt_us r.base1.Multicore.latency_us)
             (Common.fmt_us r.base2.Multicore.latency_us);
           Printf.sprintf "%+.0f%%/%+.0f%%"
             (100.0 *. ((r.coloc1.Multicore.latency_us /. max 1e-9 r.base1.Multicore.latency_us) -. 1.0))
             (100.0 *. ((r.coloc2.Multicore.latency_us /. max 1e-9 r.base2.Multicore.latency_us) -. 1.0)) ])
       rows);
  let order, top3_hit = ranking_check rows in
  Printf.printf
    "\nClara's ranking of the six real pairs (best first): %s\nTruly-best pair in Clara's top-3: %b (paper: all top-3 ranked correctly)\n"
    (String.concat " > " (List.map (fun i -> (List.nth rows i).label) order))
    top3_hit
