(** Figure 12: NF state placement — Clara's ILP placement vs the naive
    all-EMEM port, on the four complex NFs under the small-flow workload.
    The paper reports ~33% lower memory latency and ~89% higher
    throughput on average. *)

open Nicsim

let nfs = [ "Mazu-NAT"; "DNSProxy"; "WebGen"; "UDPCount" ]

type row = {
  nf : string;
  naive : Multicore.point;
  clara : Multicore.point;
  placement : Mem.placement;
}

let compute ?(spec = Common.small_flows ()) () =
  List.map
    (fun name ->
      let elt = Nf_lang.Corpus.find name in
      let naive_ported = Nic.port elt spec in
      let placement, clara_ported = Clara.Placement.apply elt spec in
      { nf = name; naive = Nic.peak naive_ported; clara = Nic.peak clara_ported; placement })
    nfs

let run () =
  Common.banner "Figure 12: state placement (Clara ILP vs naive all-EMEM, small flows)";
  let rows = compute () in
  Util.Table.print ~align:Util.Table.Left
    ~header:[ "NF"; "Clara Th"; "Naive Th"; "Clara Lat"; "Naive Lat" ]
    (List.map
       (fun r ->
         [ r.nf;
           Common.fmt_mpps r.clara.Multicore.throughput_mpps;
           Common.fmt_mpps r.naive.Multicore.throughput_mpps;
           Common.fmt_us r.clara.Multicore.latency_us;
           Common.fmt_us r.naive.Multicore.latency_us ])
       rows);
  let mean f = Util.Stats.mean (Array.of_list (List.map f rows)) in
  Printf.printf "\nAverage throughput gain: %.0f%% (paper: ~89%%)\n"
    (100.0
    *. mean (fun r ->
           (r.clara.Multicore.throughput_mpps /. max 1e-9 r.naive.Multicore.throughput_mpps) -. 1.0));
  Printf.printf "Average latency reduction: %.0f%% (paper: ~33%%)\n"
    (100.0
    *. mean (fun r -> 1.0 -. (r.clara.Multicore.latency_us /. max 1e-9 r.naive.Multicore.latency_us)));
  List.iter
    (fun r ->
      Printf.printf "%s placement: %s\n" r.nf
        (String.concat ", "
           (List.map (fun (s, l) -> Printf.sprintf "%s->%s" s (Mem.level_name l)) r.placement)))
    rows
