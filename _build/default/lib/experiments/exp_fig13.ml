(** Figure 13: memory access coalescing — variable packing reduces both
    the number of cores needed to saturate throughput and the latency.
    The paper reports 42-68% latency reduction and 25-55% fewer cores on
    the four scalar-heavy elements. *)

open Nicsim

let elements = [ "aggcounter"; "timefilter"; "webtcp"; "tcpgen" ]

type row = {
  nf : string;
  naive_cores : int;
  clara_cores : int;
  naive_lat : float;
  clara_lat : float;
  packs : Perf.packs;
}

let compute ?(spec = { (Common.mixed ~packets:1200 ()) with Workload.n_flows = 64 }) () =
  List.map
    (fun name ->
      let elt = Nf_lang.Corpus.find name in
      let naive = Nic.port elt spec in
      let packs, clara = Clara.Coalesce.apply elt spec in
      let lat_at ported =
        (Nic.measure ~cores:8 ported).Multicore.latency_us
      in
      {
        nf = name;
        naive_cores = Multicore.cores_to_saturate naive.Nic.demand;
        clara_cores = Multicore.cores_to_saturate clara.Nic.demand;
        naive_lat = lat_at naive;
        clara_lat = lat_at clara;
        packs;
      })
    elements

let run () =
  Common.banner "Figure 13: memory access coalescing (cores to saturate + latency)";
  let rows = compute () in
  Util.Table.print ~align:Util.Table.Left
    ~header:[ "Element"; "Clara cores"; "Naive cores"; "Clara Lat"; "Naive Lat"; "Lat change" ]
    (List.map
       (fun r ->
         [ r.nf;
           string_of_int r.clara_cores;
           string_of_int r.naive_cores;
           Common.fmt_us r.clara_lat;
           Common.fmt_us r.naive_lat;
           Printf.sprintf "%+.0f%%" (100.0 *. ((r.clara_lat /. max 1e-9 r.naive_lat) -. 1.0)) ])
       rows);
  print_newline ();
  List.iter
    (fun r ->
      List.iter
        (fun pack -> Printf.printf "%s pack: {%s}\n" r.nf (String.concat ", " pack))
        r.packs)
    rows;
  print_endline
    "\nPaper shape: packing cuts latency 42-68% and cores-to-saturate 25-55%;\ne.g. tcpgen clusters {sport,dport} and the ACK-path variables together."
