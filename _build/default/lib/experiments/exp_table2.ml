(** Table 2: corpus inventory — LoC, compiled instruction counts,
    statefulness, stateful memory instructions and framework API calls for
    every evaluated Click element. *)

open Nf_lang

let row (elt : Ast.element) =
  let vocab = Clara.Vocab.create () in
  let prep = Clara.Prepare.prepare vocab elt in
  let ir = prep.Clara.Prepare.ir in
  [ elt.Ast.name;
    string_of_int (Pp.loc elt);
    string_of_int (Nf_ir.Ir.count_total ir);
    (if Ast.is_stateful elt then "yes" else "no");
    string_of_int (Nf_ir.Ir.count_stateful_mem ir);
    string_of_int (Nf_ir.Ir.count_api ir) ]

let run () =
  Common.banner "Table 2: evaluated Click elements";
  Util.Table.print ~align:Util.Table.Left
    ~header:[ "Click element"; "LoC"; "Instr"; "State"; "Mem"; "API" ]
    (List.map row (Corpus.table2 ()));
  print_newline ();
  print_endline
    "Columns mirror the paper's Table 2: source lines, lowered IR instructions,";
  print_endline
    "statefulness, stateful memory instructions, and framework API call sites."
