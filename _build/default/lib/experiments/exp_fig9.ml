(** Figure 9: algorithm-identification precision/recall of Clara's
    SPE-features + SVM against kNN, DNN, DT, GBDT and AutoML baselines,
    all using the same feature space, evaluated on held-out
    implementation variants. *)

open Nf_lang

let split_corpus ?(seed = 97) corpus =
  let arr = Array.of_list corpus in
  let train_idx, test_idx =
    Mlkit.Metrics.train_test_split ~seed ~test_fraction:0.3 (Array.length arr)
  in
  ( Array.to_list (Array.map (fun i -> arr.(i)) train_idx),
    Array.to_list (Array.map (fun i -> arr.(i)) test_idx) )

(** Combined feature vector across the three class-specific gram sets. *)
let combined_features (clara : Clara.Algo_id.t) (elt : Ast.element) =
  Array.concat
    (List.map
       (fun cls -> Clara.Algo_id.class_features clara cls elt)
       [ Clara.Algo_corpus.Crc; Clara.Algo_corpus.Lpm; Clara.Algo_corpus.Checksum ])

type baseline_kind = Knn | Dnn | Dt | Gbdt | Automl | Nbayes

let kind_name = function
  | Knn -> "kNN"
  | Dnn -> "DNN"
  | Dt -> "DT"
  | Gbdt -> "GBDT"
  | Automl -> "AutoML"
  | Nbayes -> "NaiveBayes"

type scorer = float array -> float

(** Train a one-vs-rest scorer of [kind] for one class. *)
let train_scorer kind xs ys : scorer =
  match kind with
  | Knn ->
    let m = Mlkit.Simple.knn_fit ~k:3 xs ys in
    fun x -> Mlkit.Simple.knn_predict m x -. 0.5
  | Dnn ->
    let net =
      Mlkit.Nn.mlp_create (Util.Rng.create 171) ~in_dim:(Array.length xs.(0)) ~hidden:[ 16 ]
        ~out_dim:1
    in
    Mlkit.Nn.mlp_fit_binary ~epochs:40 net xs ys;
    fun x -> Mlkit.Nn.mlp_predict_binary net x -. 0.5
  | Dt ->
    let t = Mlkit.Tree.grow ~config:{ Mlkit.Tree.default_grow with Mlkit.Tree.max_depth = 5 } xs ys in
    fun x -> Mlkit.Tree.predict t x -. 0.5
  | Gbdt ->
    let g = Mlkit.Tree.gbdt_fit_binary ~n_stages:40 xs ys in
    fun x -> Mlkit.Tree.gbdt_predict_binary g x -. 0.5
  | Automl ->
    let f = Mlkit.Automl.search_classification xs ys in
    fun x -> Mlkit.Automl.predict_class f x -. 0.5
  | Nbayes ->
    let m = Mlkit.Bayes.fit xs ys in
    fun x -> Mlkit.Bayes.predict_binary m x -. 0.5

let classes = [ Clara.Algo_corpus.Crc; Clara.Algo_corpus.Lpm; Clara.Algo_corpus.Checksum ]

(** Multiclass classify from per-class scorers: argmax positive score. *)
let classify_with scorers x =
  List.fold_left
    (fun (best_l, best_s) (cls, scorer) ->
      let s = scorer x in
      if s > 0.0 && s > best_s then (cls, s) else (best_l, best_s))
    (Clara.Algo_corpus.Other, 0.0)
    scorers
  |> fst

(** Micro-averaged precision/recall for accelerator detection: a true
    positive is a correctly-labeled accelerator component. *)
let micro_pr predictions truths =
  let tp = ref 0 and fp = ref 0 and fn = ref 0 in
  List.iter2
    (fun p t ->
      match (p, t) with
      | Clara.Algo_corpus.Other, Clara.Algo_corpus.Other -> ()
      | Clara.Algo_corpus.Other, _ -> incr fn
      | _, Clara.Algo_corpus.Other -> incr fp
      | p, t -> if p = t then incr tp else (incr fp; incr fn))
    predictions truths;
  let precision = if !tp + !fp = 0 then 1.0 else float_of_int !tp /. float_of_int (!tp + !fp) in
  let recall = if !tp + !fn = 0 then 1.0 else float_of_int !tp /. float_of_int (!tp + !fn) in
  (precision, recall)

type results = { rows : (string * float * float) list }

let compute () =
  let corpus = Clara.Algo_corpus.labeled ~negatives:(Common.scale 60) () in
  let train, test = split_corpus corpus in
  let clara = Clara.Algo_id.train ~corpus:train () in
  let truths = List.map snd test in
  let clara_preds = List.map (fun (e, _) -> Clara.Algo_id.classify clara e) test in
  let cp, cr = micro_pr clara_preds truths in
  (* baselines on the same feature space *)
  let feats_train = List.map (fun (e, _) -> combined_features clara e) train in
  let xs = Array.of_list feats_train in
  let feats_test = List.map (fun (e, _) -> combined_features clara e) test in
  let baseline kind =
    let scorers =
      List.map
        (fun cls ->
          let ys = Array.of_list (List.map (fun (_, l) -> if l = cls then 1.0 else 0.0) train) in
          (cls, train_scorer kind xs ys))
        classes
    in
    let preds = List.map (classify_with scorers) feats_test in
    let p, r = micro_pr preds truths in
    (kind_name kind, p, r)
  in
  { rows =
      ("Clara", cp, cr)
      :: List.map baseline [ Automl; Knn; Dnn; Dt; Gbdt; Nbayes ] }

let run () =
  Common.banner "Figure 9: algorithm identification precision/recall";
  let r = compute () in
  Util.Table.print ~align:Util.Table.Left
    ~header:[ "Model"; "Precision"; "Recall" ]
    (List.map
       (fun (name, p, rec_) ->
         [ name; Util.Table.fmt_pct (100.0 *. p); Util.Table.fmt_pct (100.0 *. rec_) ])
       r.rows);
  print_newline ();
  print_endline
    "Paper shape: Clara ~96.6% precision / 83.3% recall; other models and AutoML";
  print_endline "are roughly on par because accelerator algorithms have distinct features."
