(** Partial offloading study (extension; §6 "Partial offloading").

    For each NF, every deployment plan — full NIC offload, host-only, and
    each state-disjoint split of the handler — is evaluated with the NIC
    simulator, the x86 host model and the PCIe link model; Clara
    recommends the best plan. *)

open Clara

let nfs = [ "dpi"; "anonipaddr"; "firewall"; "heavy_hitter" ]

let compute () =
  let spec =
    { Workload.default with Workload.n_packets = 400; Workload.proto = Workload.Mixed;
      Workload.payload_len = 200 }
  in
  List.map
    (fun name ->
      let elt = Nf_lang.Corpus.find name in
      (name, Partial.analyze elt spec))
    nfs

let run () =
  Common.banner "Partial offloading (extension): NIC vs host vs split plans";
  List.iter
    (fun (name, evals) ->
      Printf.printf "\n%s (best first, top 4 of %d feasible plans):\n" name (List.length evals);
      let top = List.filteri (fun i _ -> i < 4) evals in
      Util.Table.print ~align:Util.Table.Left
        ~header:[ "plan"; "Th (Mpps)"; "Lat (us)"; "NIC cores" ]
        (List.map
           (fun (e : Partial.evaluation) ->
             [ Partial.plan_name e.Partial.plan;
               Common.fmt_mpps e.Partial.throughput_mpps;
               Common.fmt_us e.Partial.latency_us;
               string_of_int e.Partial.nic_cores ])
           top))
    (compute ());
  print_endline
    "\nExpected shape: compute-light NFs stay on the NIC (host plans pay the PCIe\ncrossing for nothing); only when the NIC fabric is the bottleneck does a\nstate-disjoint split or the beefy host become attractive."
