(** Shared experiment infrastructure: scaling knobs, canonical workloads,
    and cached Clara model training so several experiments can reuse one
    trained bundle within a bench run. *)

(** CLARA_FULL=1 enlarges training sets and sweeps (closer convergence,
    longer runtime). *)
let full_mode () = match Sys.getenv_opt "CLARA_FULL" with Some ("" | "0") | None -> false | Some _ -> true

let scale n = if full_mode () then n * 3 else n

let banner = Util.Table.banner

(** Canonical workloads used across experiments. *)
let mixed ?(packets = 800) () =
  { Workload.default with Workload.n_packets = packets; Workload.proto = Workload.Mixed }

let large_flows ?(packets = 800) () = { Workload.large_flows with Workload.n_packets = packets }
let small_flows ?(packets = 800) () = { Workload.small_flows with Workload.n_packets = packets }

let fmt_mpps = Util.Table.fmt_f2
let fmt_us = Util.Table.fmt_f2

(* -- cached heavyweight training artifacts -- *)

let predictor_cache : (Clara.Predictor.dataset * Clara.Predictor.t) option ref = ref None

(** The instruction-prediction dataset and trained LSTM, shared by Figure 8
    and anything else needing compute predictions. *)
let predictor () =
  match !predictor_cache with
  | Some pair -> pair
  | None ->
    let ds = Clara.Predictor.synthesize_dataset ~n:(scale 100) () in
    let model = Clara.Predictor.train ~epochs:(if full_mode () then 20 else 12) ~hidden:40 ds in
    predictor_cache := Some (ds, model);
    (ds, model)

let algo_cache : Clara.Algo_id.t option ref = ref None

let algo_model () =
  match !algo_cache with
  | Some m -> m
  | None ->
    let m = Clara.Algo_id.train () in
    algo_cache := Some m;
    m

let scaleout_samples_cache : Clara.Scaleout.sample list option ref = ref None

let scaleout_samples () =
  match !scaleout_samples_cache with
  | Some s -> s
  | None ->
    let s = Clara.Scaleout.training_samples ~n_programs:(scale 60) () in
    scaleout_samples_cache := Some s;
    s

(** Demands of a pool of synthesized NFs — reused by the colocation
    experiments.  Cached per workload name. *)
let synth_demand_cache : (string, Nicsim.Perf.demand array) Hashtbl.t = Hashtbl.create 4

let synth_demands ?(spec : Workload.spec option) () =
  let spec =
    match spec with Some s -> s | None -> { (mixed ~packets:300 ()) with Workload.n_flows = 2048 }
  in
  match Hashtbl.find_opt synth_demand_cache spec.Workload.name with
  | Some d -> d
  | None ->
    let programs = Synth.Generator.batch ~seed:4242 (scale 40) in
    let demands =
      List.filter_map
        (fun elt ->
          match Nicsim.Nic.port elt spec with
          | ported -> Some ported.Nicsim.Nic.demand
          | exception _ -> None)
        programs
    in
    let arr = Array.of_list demands in
    Hashtbl.replace synth_demand_cache spec.Workload.name arr;
    arr

(** Port a corpus element under a config+spec and return its peak point. *)
let peak_of ?config name spec =
  let elt = Nf_lang.Corpus.find name in
  let ported = Nicsim.Nic.port ?config elt spec in
  (ported, Nicsim.Nic.peak ported)
