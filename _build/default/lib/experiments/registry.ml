(** Registry mapping experiment ids (paper table/figure numbers) to their
    runners; the bench harness and the CLI dispatch through this list. *)

type experiment = { id : string; title : string; run : unit -> unit }

let all =
  [ { id = "fig1"; title = "Figure 1: NF performance variability"; run = Exp_fig1.run };
    { id = "table1"; title = "Table 1: data-synthesis fidelity"; run = Exp_table1.run };
    { id = "table2"; title = "Table 2: corpus inventory"; run = Exp_table2.run };
    { id = "fig8"; title = "Figure 8: instruction-prediction WMAPE"; run = Exp_fig8.run };
    { id = "fig9"; title = "Figure 9: algorithm identification"; run = Exp_fig9.run };
    { id = "fig10"; title = "Figure 10: accelerator payoffs (PCA/CRC/LPM)"; run = Exp_fig10.run };
    { id = "fig11"; title = "Figure 11: multicore scale-out analysis"; run = Exp_fig11.run };
    { id = "fig12"; title = "Figure 12: NF state placement"; run = Exp_fig12.run };
    { id = "fig13"; title = "Figure 13: memory access coalescing"; run = Exp_fig13.run };
    { id = "fig14"; title = "Figure 14: NF colocation"; run = Exp_fig14.run };
    { id = "fig15"; title = "Figure 15: placement expert emulation"; run = Exp_fig15.run };
    { id = "fig16"; title = "Figure 16: coalescing expert emulation"; run = Exp_fig16.run };
    (* beyond the paper: ablations and §6 extensions *)
    { id = "ablation"; title = "Ablation: predictor design choices (extension)"; run = Exp_ablation.run };
    { id = "portability"; title = "Portability: other SmartNIC profiles (extension)"; run = Exp_portability.run };
    { id = "partial"; title = "Partial offloading: NIC/host/split plans (extension)"; run = Exp_partial.run };
    { id = "tco"; title = "Energy/TCO: SmartNIC vs x86 host (extension)"; run = Exp_tco.run } ]

let find id = List.find_opt (fun e -> String.equal e.id id) all

let run_all () = List.iter (fun e -> e.run ()) all
