(** Platform portability study (extension; §6 "Other SmartNICs").

    The same four NFs are evaluated across three SoC-SmartNIC profiles:
    the Netronome Agilio testbed, a BlueField-like few-big-cores design
    and a LiquidIO-like middle ground.  Knee positions and achievable
    peaks shift with the core complex and memory fabric, which is why the
    paper's cost models are trained per platform. *)

open Nicsim

let nfs = [ "Mazu-NAT"; "UDPCount"; "firewall"; "dpi" ]

let compute () =
  let spec =
    { Workload.default with Workload.n_packets = 500; Workload.proto = Workload.Mixed;
      Workload.n_flows = 8192 }
  in
  List.map
    (fun name ->
      let d = (Nic.port (Nf_lang.Corpus.find name) spec).Nic.demand in
      ( name,
        List.map
          (fun profile ->
            let knee = Profiles.optimal_cores profile d in
            let peak = Profiles.peak profile d in
            (profile.Profiles.name, knee, peak))
          Profiles.all ))
    nfs

let run () =
  Common.banner "Portability (extension): the same NFs across SmartNIC profiles";
  let rows =
    List.concat_map
      (fun (nf, per_profile) ->
        List.map
          (fun (pname, knee, (peak : Multicore.point)) ->
            [ nf; pname; string_of_int knee;
              Common.fmt_mpps peak.Multicore.throughput_mpps;
              Common.fmt_us peak.Multicore.latency_us ])
          per_profile)
      (compute ())
  in
  Util.Table.print ~align:Util.Table.Left
    ~header:[ "NF"; "platform"; "knee (cores)"; "peak Th (Mpps)"; "Lat@peak (us)" ]
    rows;
  print_endline
    "\nExpected shape: the BlueField-like profile saturates its few cores before\nits fabric (early knees); the Agilio spreads the same NF across many wimpy\ncores.  Clara's schedule suggestions are platform-specific, as §6 argues."
