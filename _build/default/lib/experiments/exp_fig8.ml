(** Figure 8: instruction-prediction accuracy (WMAPE, lower is better) of
    Clara's LSTM+FC against DNN, CNN, and AutoML baselines, per ported
    Click NF, all trained on the same synthesized dataset. *)

let test_nfs =
  [ "tcpack"; "udpipencap"; "timefilter"; "anonipaddr"; "tcpresp"; "forcetcp"; "aggcounter";
    "tcpgen" ]

type results = {
  per_nf : (string * float * float * float * float) list;
      (** nf, clara, dnn, cnn, automl WMAPEs *)
  automl_name : string;
}

let compute () =
  let ds, clara = Common.predictor () in
  let dnn = Clara.Predictor.train_dnn ds in
  let cnn = Clara.Predictor.train_cnn ds in
  let automl = Clara.Predictor.train_automl ds in
  let automl_name =
    match automl with Clara.Predictor.Automl f -> f.Mlkit.Automl.name | _ -> "?"
  in
  let vocab = ds.Clara.Predictor.vocab in
  let per_nf =
    List.map
      (fun name ->
        let elt = Nf_lang.Corpus.find name in
        ( name,
          Clara.Predictor.wmape_on_element clara elt,
          Clara.Predictor.baseline_wmape_on_element vocab dnn elt,
          Clara.Predictor.baseline_wmape_on_element vocab cnn elt,
          Clara.Predictor.baseline_wmape_on_element vocab automl elt ))
      test_nfs
  in
  { per_nf; automl_name }

let run () =
  Common.banner "Figure 8: instruction-prediction WMAPE (Clara vs DNN/CNN/AutoML)";
  let r = compute () in
  let rows =
    List.map
      (fun (nf, c, d, cn, a) ->
        [ nf; Util.Table.fmt_f3 c; Util.Table.fmt_f3 d; Util.Table.fmt_f3 cn; Util.Table.fmt_f3 a ])
      r.per_nf
  in
  Util.Table.print ~align:Util.Table.Left ~header:[ "NF"; "Clara"; "DNN"; "CNN"; "AutoML" ] rows;
  let mean f = Util.Stats.mean (Array.of_list (List.map f r.per_nf)) in
  Printf.printf "\nMean WMAPE: Clara %.3f | DNN %.3f | CNN %.3f | AutoML %.3f (pipeline: %s)\n"
    (mean (fun (_, c, _, _, _) -> c))
    (mean (fun (_, _, d, _, _) -> d))
    (mean (fun (_, _, _, cn, _) -> cn))
    (mean (fun (_, _, _, _, a) -> a))
    r.automl_name;
  (* memory-side accuracy headline from §5.2 *)
  let mem_accs =
    List.map (fun nf -> Clara.Predictor.memory_accuracy (Nf_lang.Corpus.find nf)) test_nfs
  in
  Printf.printf "Direct memory counting accuracy: %.1f%%-%.1f%% (paper: 96.4%%-100%%)\n"
    (100.0 *. List.fold_left min 1.0 mem_accs)
    (100.0 *. List.fold_left max 0.0 mem_accs);
  print_endline
    "Paper shape: Clara ~10.7% mean WMAPE (6.0-22.3% per NF), beating DNN/CNN/AutoML (~12.4%+)."
