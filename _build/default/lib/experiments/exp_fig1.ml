(** Figure 1: performance variability of five NFs, each ported 2-4 ways.

    NAT varies checksum-accelerator usage; DPI varies packet sizes; FW
    varies flow-state memory location and flow distribution; LPM varies
    rule counts and flow-cache usage; HH varies traffic profile.  Latency
    is normalized against the fastest version of each NF; the paper
    observes spreads up to 13.8x. *)

open Nicsim

type variant = { nf : string; desc : string; latency_us : float }

let measure_cores = 8

(** Rewrite incremental checksum updates into full header recomputation —
    the NAT variant whose software cost the ingress accelerator beats. *)
let with_full_checksum (elt : Nf_lang.Ast.element) =
  let open Nf_lang.Ast in
  let rec subst (s : stmt) =
    match s.node with
    | Api_stmt ("csum_incr_update", _) -> { s with node = Api_stmt ("checksum_update_ip", []) }
    | If (c, t, f) -> { s with node = If (c, List.map subst t, List.map subst f) }
    | While (c, b) -> { s with node = While (c, List.map subst b) }
    | For (v, lo, hi, b) -> { s with node = For (v, lo, hi, List.map subst b) }
    | Let _ | Set_global _ | Set_hdr _ | Set_payload _ | Arr_set _ | Map_find _ | Map_read _
    | Map_write _ | Map_insert _ | Map_erase _ | Vec_append _ | Vec_get _ | Vec_set _
    | Api_stmt _ | Emit _ | Drop | Call_sub _ | Return ->
      s
  in
  {
    elt with
    name = elt.name ^ "_fullcsum";
    handler = List.map subst elt.handler;
    subs = List.map (fun (n, body) -> (n, List.map subst body)) elt.subs;
  }

let latency_of ?(config = Nic.naive_port) elt spec =
  let ported = Nic.port ~config elt spec in
  (Nic.measure ~cores:measure_cores ported).Multicore.latency_us

let latency ?config name spec = latency_of ?config (Nf_lang.Corpus.find name) spec

let variants () =
  let mixed = Common.mixed () in
  let small = Common.small_flows () in
  let large = Common.large_flows () in
  let accel apis = { Nic.naive_port with Nic.accel_apis = apis } in
  let place name level elt_name =
    let elt = Nf_lang.Corpus.find elt_name in
    let names = Nic.state_names elt in
    Some (List.map (fun n -> (n, if String.equal n name then level else Mem.EMEM)) names)
  in
  let nat = with_full_checksum (Nf_lang.Corpus.find "Mazu-NAT") in
  [ (* NAT: checksum accelerator on/off *)
    { nf = "NAT"; desc = "software csum"; latency_us = latency_of nat mixed };
    { nf = "NAT"; desc = "csum accel";
      latency_us = latency_of ~config:(accel [ "checksum_update_ip" ]) nat mixed };
    (* DPI: packet sizes *)
    { nf = "DPI"; desc = "64B packets"; latency_us = latency "dpi" { mixed with Workload.payload_len = 10 } };
    { nf = "DPI"; desc = "512B packets"; latency_us = latency "dpi" { mixed with Workload.payload_len = 458 } };
    { nf = "DPI"; desc = "1500B packets"; latency_us = latency "dpi" { mixed with Workload.payload_len = 1446 } };
    (* FW: state location and flow distribution *)
    { nf = "FW"; desc = "EMEM state, small flows"; latency_us = latency "firewall" small };
    { nf = "FW"; desc = "EMEM state, large flows"; latency_us = latency "firewall" large };
    { nf = "FW"; desc = "IMEM state, large flows";
      latency_us =
        latency
          ~config:{ Nic.naive_port with Nic.placement = place "conn_track" Mem.IMEM "firewall" }
          "firewall" large };
    (* LPM: rule counts and the flow cache *)
    { nf = "LPM"; desc = "32 rules"; latency_us = latency "iplookup_32" mixed };
    { nf = "LPM"; desc = "512 rules"; latency_us = latency "iplookup_512" mixed };
    { nf = "LPM"; desc = "flow cache + engine";
      latency_us = latency ~config:(accel [ "lpm_lookup"; "flow_cache_lookup" ]) "iplookup_accel_256" mixed };
    (* HH: traffic profiles *)
    { nf = "HH"; desc = "low rate (large flows)"; latency_us = latency "heavy_hitter" large };
    { nf = "HH"; desc = "high rate (small flows)"; latency_us = latency "heavy_hitter" small } ]

let run () =
  Common.banner "Figure 1: NF performance variability on the SmartNIC";
  let vs = variants () in
  let groups = List.sort_uniq compare (List.map (fun v -> v.nf) vs) in
  let rows =
    List.concat_map
      (fun g ->
        let members = List.filter (fun v -> String.equal v.nf g) vs in
        let fastest = List.fold_left (fun acc v -> min acc v.latency_us) infinity members in
        List.map
          (fun v ->
            [ v.nf; v.desc; Common.fmt_us v.latency_us; Printf.sprintf "%.1fx" (v.latency_us /. fastest) ])
          members)
      groups
  in
  Util.Table.print ~align:Util.Table.Left
    ~header:[ "NF"; "variant"; "latency (us)"; "normalized" ]
    rows;
  let all_ratio =
    let ls = List.map (fun v -> v.latency_us) vs in
    List.fold_left max 0.0 ls /. List.fold_left min infinity ls
  in
  Printf.printf "\nMax latency spread across variants of the same NF: %.1fx (paper: up to 13.8x)\n"
    (List.fold_left
       (fun acc g ->
         let members = List.filter (fun v -> String.equal v.nf g) vs in
         let ls = List.map (fun v -> v.latency_us) members in
         max acc (List.fold_left max 0.0 ls /. List.fold_left min infinity ls))
       1.0 groups);
  Printf.printf "Overall spread across all NFs/variants: %.1fx\n" all_ratio
