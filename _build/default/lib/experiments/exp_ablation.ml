(** Ablation study (extension; motivated by §6 "Experience with ML
    models" and DESIGN.md's design-choice inventory).

    Three design choices of Clara's instruction predictor are ablated, all
    evaluated as per-block WMAPE on the same held-out Click NFs:

    1. Vocabulary compaction (§3.2): replace the abstracted words with
       concrete instructions.  The paper reports "much lower performance"
       without compaction — the vocabulary explodes, every test word is
       unseen, and the one-hot LSTM degenerates.
    2. Corpus-fitted data synthesis (Table 1): train on the baseline
       (uniform-grammar) synthesizer's programs instead.
    3. -O0-faithful IR (§3.1): analyze *optimized* IR with a model trained
       on -O0 IR — the distribution shift that "staying close to the
       original NF logic" avoids. *)

open Nf_lang

let test_nfs = [ "tcpack"; "udpipencap"; "anonipaddr"; "tcpresp"; "forcetcp"; "aggcounter" ]

let mean_wmape f = Util.Stats.mean (Array.of_list (List.map f test_nfs))

(* dataset construction with a custom word function / program source *)
let dataset_with ~word ~programs () =
  let vocab = Clara.Vocab.create () in
  let examples =
    List.concat_map
      (fun elt ->
        let ir = Nf_frontend.Lower.lower_element elt in
        let compiled = Nicsim.Nfcc.compile ir in
        Array.to_list
          (Array.map
             (fun (cb : Nicsim.Nfcc.compiled_block) ->
               let block = Nf_ir.Ir.block ir cb.Nicsim.Nfcc.bid in
               ( Clara.Vocab.encode_block_with ~word vocab block,
                 float_of_int (Nicsim.Isa.count_compute cb.Nicsim.Nfcc.instrs) ))
             compiled.Nicsim.Nfcc.cblocks))
      programs
    |> List.filter (fun (toks, _) -> Array.length toks > 0)
  in
  (vocab, Array.of_list examples)

let train_lstm vocab examples =
  Clara.Vocab.freeze vocab;
  let m = Mlkit.Lstm.create ~hidden:32 ~vocab:(Clara.Vocab.size vocab) 311 in
  Mlkit.Lstm.fit ~epochs:(Common.scale 6) m (Array.map (fun (t, y) -> (t, [| y |])) examples);
  m

(** Per-block WMAPE on one NF.  [transform] rewrites the IR the *predictor
    sees*; the ground truth is always the port of the original -O0 IR (the
    developer ships the original NF). *)
let wmape_with ~word vocab lstm ?(transform = fun ir -> ir) name =
  let ir = Nf_frontend.Lower.lower_element (Corpus.find name) in
  let analyzed = transform ir in
  let compiled = Nicsim.Nfcc.compile ir in
  let preds, truth =
    Array.to_list compiled.Nicsim.Nfcc.cblocks
    |> List.map (fun (cb : Nicsim.Nfcc.compiled_block) ->
           let block = Nf_ir.Ir.block analyzed cb.Nicsim.Nfcc.bid in
           let toks = Clara.Vocab.encode_block_with ~word vocab block in
           ( max 0.0 (Mlkit.Lstm.predict lstm toks).(0),
             float_of_int (Nicsim.Isa.count_compute cb.Nicsim.Nfcc.instrs) ))
    |> List.split
  in
  Mlkit.Metrics.wmape (Array.of_list preds) (Array.of_list truth)

type results = {
  full : float;
  no_compaction : float;
  vocab_full : int;
  vocab_concrete : int;
  baseline_synthesis : float;
  optimized_ir : float;
}

(** Feature-family ablation for algorithm identification: SPE n-grams vs
    manual features vs both, as micro precision/recall on a held-out
    split. *)
let algo_feature_ablation () =
  let corpus = Clara.Algo_corpus.labeled ~negatives:40 () in
  let arr = Array.of_list corpus in
  let train_idx, test_idx =
    Mlkit.Metrics.train_test_split ~seed:61 ~test_fraction:0.3 (Array.length arr)
  in
  let train = Array.to_list (Array.map (fun i -> arr.(i)) train_idx) in
  let test = Array.to_list (Array.map (fun i -> arr.(i)) test_idx) in
  let eval mode =
    let m = Clara.Algo_id.train ~mode ~corpus:train () in
    let preds = List.map (fun (e, _) -> Clara.Algo_id.classify m e) test in
    let truths = List.map snd test in
    let tp = ref 0 and fp = ref 0 and fn = ref 0 in
    List.iter2
      (fun p t ->
        match (p, t) with
        | Clara.Algo_corpus.Other, Clara.Algo_corpus.Other -> ()
        | Clara.Algo_corpus.Other, _ -> incr fn
        | _, Clara.Algo_corpus.Other -> incr fp
        | p, t -> if p = t then incr tp else (incr fp; incr fn))
      preds truths;
    let precision = if !tp + !fp = 0 then 1.0 else float_of_int !tp /. float_of_int (!tp + !fp) in
    let recall = if !tp + !fn = 0 then 1.0 else float_of_int !tp /. float_of_int (!tp + !fn) in
    (precision, recall)
  in
  [ ("SPE n-grams + manual (Clara)", eval `Both);
    ("SPE n-grams only", eval `Spe_only);
    ("manual features only", eval `Manual_only) ]

let compute () =
  let programs = Synth.Generator.batch ~seed:4501 (Common.scale 70) in
  (* full Clara *)
  let vocab, examples = dataset_with ~word:Clara.Vocab.word ~programs () in
  let lstm = train_lstm vocab examples in
  let full = mean_wmape (wmape_with ~word:Clara.Vocab.word vocab lstm) in
  (* 1: no vocabulary compaction *)
  let cvocab, cexamples = dataset_with ~word:Clara.Vocab.word_concrete ~programs () in
  let clstm = train_lstm cvocab cexamples in
  let no_compaction = mean_wmape (wmape_with ~word:Clara.Vocab.word_concrete cvocab clstm) in
  (* 2: baseline (unfitted) synthesizer as training data *)
  let base_programs = Synth.Generator.baseline_batch ~seed:4502 (Common.scale 70) in
  let bvocab, bexamples = dataset_with ~word:Clara.Vocab.word ~programs:base_programs () in
  let blstm = train_lstm bvocab bexamples in
  let baseline_synthesis = mean_wmape (wmape_with ~word:Clara.Vocab.word bvocab blstm) in
  (* 3: analyzing optimized IR with the -O0-trained model *)
  let optimized_ir =
    mean_wmape (wmape_with ~word:Clara.Vocab.word vocab lstm ~transform:Nf_ir.Opt.optimize)
  in
  {
    full;
    no_compaction;
    vocab_full = Clara.Vocab.size vocab;
    vocab_concrete = Clara.Vocab.size cvocab;
    baseline_synthesis;
    optimized_ir;
  }

let run () =
  Common.banner "Ablation (extension): Clara predictor design choices";
  let r = compute () in
  Util.Table.print ~align:Util.Table.Left
    ~header:[ "Configuration"; "mean WMAPE"; "vocabulary" ]
    [ [ "Clara (compacted vocab, fitted synth, -O0 IR)"; Util.Table.fmt_f3 r.full;
        string_of_int r.vocab_full ];
      [ "- without vocabulary compaction"; Util.Table.fmt_f3 r.no_compaction;
        string_of_int r.vocab_concrete ];
      [ "- trained on unfitted (baseline) synthesis"; Util.Table.fmt_f3 r.baseline_synthesis;
        string_of_int r.vocab_full ];
      [ "- analyzing optimized IR (distribution shift)"; Util.Table.fmt_f3 r.optimized_ir;
        string_of_int r.vocab_full ] ];
  print_endline
    "\nExpected shape: dropping compaction explodes the vocabulary and clearly\nhurts (the paper's \"much lower performance\", §6); unfitted synthesis hurts\nvia distribution shift; conservative per-block optimization shifts the IR\nonly mildly — the risk the paper avoids by disabling -O flags grows with\nthe aggressiveness of the optimizer.";
  Common.banner "Ablation (extension): algorithm-identification feature families";
  Util.Table.print ~align:Util.Table.Left
    ~header:[ "Features"; "Precision"; "Recall" ]
    (List.map
       (fun (name, (p, r)) ->
         [ name; Util.Table.fmt_pct (100.0 *. p); Util.Table.fmt_pct (100.0 *. r) ])
       (algo_feature_ablation ()));
  print_endline
    "\nExpected shape: combining SPE patterns with the manually-engineered\nfeatures (§4.1: \"by identifying and combining multiple features ... we\nachieve low false positive and negative rates\") dominates either family."
