lib/experiments/exp_tco.ml: Clara Common Energy Float List Multicore Nf_lang Nic Nicsim Perf Printf Util Workload
