lib/experiments/exp_fig13.ml: Clara Common List Multicore Nf_lang Nic Nicsim Perf Printf String Util Workload
