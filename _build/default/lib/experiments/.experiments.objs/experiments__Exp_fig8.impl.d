lib/experiments/exp_fig8.ml: Array Clara Common List Mlkit Nf_lang Printf Util
