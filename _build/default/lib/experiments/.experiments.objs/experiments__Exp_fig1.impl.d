lib/experiments/exp_fig1.ml: Common List Mem Multicore Nf_lang Nic Nicsim Printf String Util Workload
