lib/experiments/exp_fig12.ml: Array Clara Common List Mem Multicore Nf_lang Nic Nicsim Printf String Util
