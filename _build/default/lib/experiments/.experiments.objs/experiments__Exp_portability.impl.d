lib/experiments/exp_portability.ml: Common List Multicore Nf_lang Nic Nicsim Profiles Util Workload
