lib/experiments/exp_table1.ml: Array Clara Common List Nf_frontend Nf_lang Synth Util
