lib/experiments/exp_ablation.ml: Array Clara Common Corpus List Mlkit Nf_frontend Nf_ir Nf_lang Nicsim Synth Util
