lib/experiments/exp_fig11.ml: Array Clara Common List Mlkit Multicore Nf_lang Nic Nicsim Printf Util
