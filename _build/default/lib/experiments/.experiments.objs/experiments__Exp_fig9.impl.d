lib/experiments/exp_fig9.ml: Array Ast Clara Common List Mlkit Nf_lang Util
