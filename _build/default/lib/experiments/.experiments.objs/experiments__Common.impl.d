lib/experiments/common.ml: Array Clara Hashtbl List Nf_lang Nicsim Synth Sys Util Workload
