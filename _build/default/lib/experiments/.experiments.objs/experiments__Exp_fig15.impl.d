lib/experiments/exp_fig15.ml: Clara Common List Multicore Nf_lang Nic Nicsim Printf Util
