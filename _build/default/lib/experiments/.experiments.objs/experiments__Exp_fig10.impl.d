lib/experiments/exp_fig10.ml: Array Clara Common List Mlkit Multicore Nic Nicsim Printf Util
