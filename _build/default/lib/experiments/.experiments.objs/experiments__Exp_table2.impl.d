lib/experiments/exp_table2.ml: Ast Clara Common Corpus List Nf_ir Nf_lang Pp Util
