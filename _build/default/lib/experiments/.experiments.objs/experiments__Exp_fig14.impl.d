lib/experiments/exp_fig14.ml: Clara Colocate Common List Multicore Nf_lang Nic Nicsim Printf String Util Workload
