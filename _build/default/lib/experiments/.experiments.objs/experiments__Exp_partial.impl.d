lib/experiments/exp_partial.ml: Clara Common List Nf_lang Partial Printf Util Workload
