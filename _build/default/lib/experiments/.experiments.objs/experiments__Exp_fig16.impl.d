lib/experiments/exp_fig16.ml: Clara Common List Multicore Nf_lang Nic Nicsim Util Workload
