(** Figure 15: expert emulation for state placement — Clara's ILP vs an
    exhaustive per-structure sweep.  The paper finds Clara within 9.7%
    latency / 7.6% throughput of the exhaustive expert, which wins by
    exploiting aggregate-bandwidth effects the ILP cannot see. *)

open Nicsim

let nfs = [ "Mazu-NAT"; "DNSProxy"; "WebGen"; "UDPCount" ]

type row = { nf : string; clara : Multicore.point; expert : Multicore.point }

let compute ?(spec = Common.small_flows ()) () =
  List.map
    (fun name ->
      let elt = Nf_lang.Corpus.find name in
      let _, clara_ported = Clara.Placement.apply elt spec in
      let _, expert_ported = Clara.Placement.expert_search ~limit:4 elt spec in
      { nf = name; clara = Nic.peak clara_ported; expert = Nic.peak expert_ported })
    nfs

let run () =
  Common.banner "Figure 15: placement — Clara vs exhaustive 'expert' search";
  let rows = compute () in
  Util.Table.print ~align:Util.Table.Left
    ~header:[ "NF"; "Clara Th"; "Expert Th"; "Clara Lat"; "Expert Lat" ]
    (List.map
       (fun r ->
         [ r.nf;
           Common.fmt_mpps r.clara.Multicore.throughput_mpps;
           Common.fmt_mpps r.expert.Multicore.throughput_mpps;
           Common.fmt_us r.clara.Multicore.latency_us;
           Common.fmt_us r.expert.Multicore.latency_us ])
       rows);
  let worst_th =
    List.fold_left
      (fun acc r ->
        min acc (r.clara.Multicore.throughput_mpps /. max 1e-9 r.expert.Multicore.throughput_mpps))
      1.0 rows
  in
  let worst_lat =
    List.fold_left
      (fun acc r -> max acc ((r.clara.Multicore.latency_us /. max 1e-9 r.expert.Multicore.latency_us) -. 1.0))
      0.0 rows
  in
  Printf.printf
    "\nClara throughput within %.1f%% of the expert (paper: <=7.6%% lower);\nClara latency at most %.1f%% higher (paper: <=9.7%%).\nPaper shape: Clara is on-par with exhaustive per-structure tuning.\n"
    (100.0 *. (1.0 -. worst_th))
    (100.0 *. worst_lat)
