(** Energy / TCO study (extension; the introduction's motivation).

    For each NF, the SmartNIC deployment at its knee is compared with an
    equal-throughput x86-host deployment: watts, microjoules per packet,
    and three-year TCO per Mpps.  The SoC cores' energy advantage is the
    paper's TCO argument, quantified. *)

open Nicsim

let nfs = [ "Mazu-NAT"; "UDPCount"; "dpi"; "flowmonitor" ]

type row = {
  nf : string;
  nic_point : Multicore.point;
  nic_watts : float;
  nic_uj : float;
  host_cores : int;
  host_watts : float;
  host_uj : float;
}

let compute () =
  let spec =
    { Workload.default with Workload.n_packets = 500; Workload.proto = Workload.Mixed;
      Workload.n_flows = 8192 }
  in
  List.map
    (fun name ->
      let elt = Nf_lang.Corpus.find name in
      let ported = Nic.port elt spec in
      let knee = Nic.optimal_cores ported in
      let point = Nic.measure ~cores:knee ported in
      let d = ported.Nic.demand in
      let nic_watts = Energy.power_w Energy.smartnic d point in
      let nic_uj = Energy.energy_per_packet_uj Energy.smartnic d point in
      (* host deployment matching the NIC's delivered throughput *)
      let host = Clara.Partial.default_host in
      let cycles = Clara.Partial.host_cycles host elt in
      let mpps = point.Multicore.throughput_mpps in
      let host_cores =
        int_of_float (Float.round (ceil (mpps *. 1e6 *. cycles /. (host.Clara.Partial.freq_mhz *. 1e6))))
        |> max 1
      in
      let mem_per_pkt = Perf.total_mem_accesses d in
      let host_watts =
        Energy.host_power_w Energy.x86_host ~cores:host_cores ~mpps
          ~mem_accesses_per_pkt:mem_per_pkt
      in
      let host_uj = host_watts /. max 1.0 (mpps *. 1e6) *. 1e6 in
      { nf = name; nic_point = point; nic_watts; nic_uj; host_cores; host_watts; host_uj })
    nfs

let run () =
  Common.banner "Energy/TCO (extension): SmartNIC vs x86 host at equal throughput";
  let rows = compute () in
  Util.Table.print ~align:Util.Table.Left
    ~header:
      [ "NF"; "Mpps"; "NIC cores"; "NIC W"; "NIC uJ/pkt"; "host cores"; "host W"; "host uJ/pkt";
        "energy ratio" ]
    (List.map
       (fun r ->
         [ r.nf;
           Common.fmt_mpps r.nic_point.Multicore.throughput_mpps;
           string_of_int r.nic_point.Multicore.cores;
           Util.Table.fmt_f1 r.nic_watts;
           Util.Table.fmt_f2 r.nic_uj;
           string_of_int r.host_cores;
           Util.Table.fmt_f1 r.host_watts;
           Util.Table.fmt_f2 r.host_uj;
           Printf.sprintf "%.1fx" (r.host_uj /. max 1e-9 r.nic_uj) ])
       rows);
  let usd_per_kwh = 0.12 and years = 3.0 in
  Printf.printf "\n3-year TCO per Mpps (capex + electricity at $%.2f/kWh):\n" usd_per_kwh;
  List.iter
    (fun r ->
      let mpps = r.nic_point.Multicore.throughput_mpps in
      Printf.printf "  %-12s NIC $%.0f/Mpps vs host $%.0f/Mpps\n" r.nf
        (Energy.tco_per_mpps Energy.smartnic ~watts:r.nic_watts ~mpps ~years ~usd_per_kwh)
        (Energy.tco_per_mpps Energy.x86_host ~watts:r.host_watts ~mpps ~years ~usd_per_kwh))
    rows;
  print_endline
    "\nExpected shape: the SoC's wimpy cores deliver the same packet rate at a\nfraction of the energy — the introduction's TCO argument for offloading."
