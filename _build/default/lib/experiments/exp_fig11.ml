(** Figure 11: multicore scale-out factor analysis.

    (a) Core-count prediction MAE: Clara's GBDT vs kNN/DNN/AutoML.
    (b) Suggested vs optimal cores for the four most complex NFs.
    (c,d) Throughput/latency-ratio curves vs core count for large- and
          small-flow workloads (knees move right for small flows).
    (e,f) Detailed throughput and latency curves for Mazu-NAT and WebGen
          with Clara's prediction highlighted. *)

open Nicsim

let complex_nfs = [ "Mazu-NAT"; "DNSProxy"; "WebGen"; "UDPCount" ]

let model_mae () =
  let samples = Array.of_list (Common.scaleout_samples ()) in
  let train_idx, test_idx =
    Mlkit.Metrics.train_test_split ~seed:53 ~test_fraction:0.3 (Array.length samples)
  in
  let pick idx = Array.map (fun i -> samples.(i)) idx in
  let train = Array.to_list (pick train_idx) and test = pick test_idx in
  let truths = Array.map (fun s -> s.Clara.Scaleout.optimal) test in
  let clara = Clara.Scaleout.train ~samples:train () in
  let clara_preds =
    Array.map (fun s -> Mlkit.Tree.gbdt_predict clara.Clara.Scaleout.gbdt s.Clara.Scaleout.x) test
  in
  let baseline kind =
    let b = Clara.Scaleout.train_baseline kind train in
    Array.map (fun (s : Clara.Scaleout.sample) -> Clara.Scaleout.baseline_predict b s.Clara.Scaleout.x) test
  in
  ( clara,
    [ ("Clara (GBDT)", Mlkit.Metrics.mae clara_preds truths);
      ("AutoML", Mlkit.Metrics.mae (baseline `Automl) truths);
      ("kNN", Mlkit.Metrics.mae (baseline `Knn) truths);
      ("DNN", Mlkit.Metrics.mae (baseline `Dnn) truths) ] )

let suggestion_rows clara spec =
  List.map
    (fun name ->
      let elt = Nf_lang.Corpus.find name in
      let ported = Nic.port elt spec in
      let optimal = Multicore.optimal_cores ported.Nic.demand in
      let suggested = Clara.Scaleout.suggest clara ported.Nic.demand in
      let opt_pt = Nic.measure ~cores:optimal ported in
      let all_pt = Nic.measure ~cores:Multicore.default_nic.Multicore.n_cores ported in
      let score (p : Multicore.point) = p.Multicore.throughput_mpps /. max 1e-9 p.Multicore.latency_us in
      (name, suggested, optimal, score opt_pt /. max 1e-9 (score all_pt)))
    complex_nfs

let curve_rows spec =
  let cores = [ 1; 5; 10; 15; 20; 25; 30; 35; 40; 45; 50; 55; 60 ] in
  let demands =
    List.map (fun name -> (name, (Nic.port (Nf_lang.Corpus.find name) spec).Nic.demand)) complex_nfs
  in
  List.map
    (fun c ->
      string_of_int c
      :: List.map
           (fun (_, d) ->
             let p = Multicore.measure d ~cores:c in
             Util.Table.fmt_f2 (p.Multicore.throughput_mpps /. max 1e-9 p.Multicore.latency_us))
           demands)
    cores

let detail_rows name spec =
  let d = (Nic.port (Nf_lang.Corpus.find name) spec).Nic.demand in
  List.map
    (fun c ->
      let p = Multicore.measure d ~cores:c in
      [ string_of_int c; Common.fmt_mpps p.Multicore.throughput_mpps; Common.fmt_us p.Multicore.latency_us ])
    [ 1; 5; 10; 15; 20; 25; 30; 35; 40; 45; 50; 55; 60 ]

let run () =
  Common.banner "Figure 11a: scale-out prediction MAE (cores)";
  let clara, maes = model_mae () in
  Util.Table.print ~align:Util.Table.Left
    ~header:[ "Model"; "MAE (cores)" ]
    (List.map (fun (n, m) -> [ n; Util.Table.fmt_f2 m ]) maes);
  print_endline "Paper shape: Clara's GBDT attains the lowest MAE; AutoML also lands on GBDT.";
  let large = Common.large_flows () and small = Common.small_flows () in
  Common.banner "Figure 11b: suggested vs optimal cores (large flows)";
  Util.Table.print ~align:Util.Table.Left
    ~header:[ "NF"; "Clara"; "Optimal"; "peak gain vs all-60-cores" ]
    (List.map
       (fun (n, s, o, gain) ->
         [ n; string_of_int s; string_of_int o; Printf.sprintf "%.2fx" gain ])
       (suggestion_rows clara large));
  print_endline
    "Paper shape: suggestions within a few cores of optimal; optimal beats naive\nall-cores operation by up to 71.1% on the Th/Lat metric.";
  Common.banner "Figure 11c: Th/Lat ratio vs cores (large flows)";
  Util.Table.print ~header:("cores" :: complex_nfs) (curve_rows large);
  Common.banner "Figure 11d: Th/Lat ratio vs cores (small flows)";
  Util.Table.print ~header:("cores" :: complex_nfs) (curve_rows small);
  print_endline
    "Paper shape: every curve peaks inside 1..60; small-flow curves peak at higher\ncore counts than large-flow curves (cache misses waste core time).";
  Common.banner "Figure 11e: Mazu-NAT detail (large flows)";
  Util.Table.print ~header:[ "cores"; "Th (Mpps)"; "Lat (us)" ] (detail_rows "Mazu-NAT" large);
  Printf.printf "Clara predicts: %d cores\n"
    (Clara.Scaleout.suggest clara (Nic.port (Nf_lang.Corpus.find "Mazu-NAT") large).Nic.demand);
  Common.banner "Figure 11f: WebGen detail (large flows)";
  Util.Table.print ~header:[ "cores"; "Th (Mpps)"; "Lat (us)" ] (detail_rows "WebGen" large);
  Printf.printf "Clara predicts: %d cores\n"
    (Clara.Scaleout.suggest clara (Nic.port (Nf_lang.Corpus.find "WebGen") large).Nic.demand)
