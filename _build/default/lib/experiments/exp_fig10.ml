(** Figure 10: accelerator identification payoff.

    (a) PCA of the classifier feature space: positives and negatives
        separate along the leading components.
    (b) CRC accelerator: cmsketch and wepdecap, naive port vs Clara port
        (throughput up to ~1.6x, latency down ~25% in the paper).
    (c) LPM accelerator + flow cache: iplookup across rule counts — the
        Clara port wins by roughly an order of magnitude. *)

open Nicsim

(* -- (a) PCA separation -- *)

let pca_summary () =
  let clara = Common.algo_model () in
  let corpus = Clara.Algo_corpus.labeled ~negatives:30 () in
  let xs = Array.of_list (List.map (fun (e, _) -> Clara.Algo_id.class_features clara Clara.Algo_corpus.Crc e) corpus) in
  let labels = Array.of_list (List.map snd corpus) in
  let pca = Mlkit.Simple.pca_fit ~n_components:2 xs in
  let projected = Array.map (Mlkit.Simple.pca_transform pca) xs in
  let centroid label =
    let pts = ref [] in
    Array.iteri (fun i l -> if l = label then pts := projected.(i) :: !pts) labels;
    match !pts with
    | [] -> [| 0.0; 0.0 |]
    | pts ->
      let n = float_of_int (List.length pts) in
      let c = [| 0.0; 0.0 |] in
      List.iter (fun p -> c.(0) <- c.(0) +. (p.(0) /. n); c.(1) <- c.(1) +. (p.(1) /. n)) pts;
      c
  in
  let spread label c =
    let acc = ref 0.0 and n = ref 0 in
    Array.iteri
      (fun i l -> if l = label then begin
          acc := !acc +. Mlkit.La.euclidean projected.(i) c;
          incr n
        end)
      labels;
    if !n = 0 then 0.0 else !acc /. float_of_int !n
  in
  List.map
    (fun label ->
      let c = centroid label in
      (Clara.Algo_corpus.label_name label, c.(0), c.(1), spread label c))
    [ Clara.Algo_corpus.Crc; Clara.Algo_corpus.Lpm; Clara.Algo_corpus.Checksum; Clara.Algo_corpus.Other ]

(* -- (b) CRC accelerator benchmark -- *)

let crc_accel_rows () =
  let spec = Common.mixed () in
  let crc_config =
    { Nic.naive_port with Nic.accel_apis = [ "crc32_payload"; "crc16_payload" ] }
  in
  List.map
    (fun (label, naive_name, accel_name) ->
      let _, naive_peak = Common.peak_of naive_name spec in
      let _, clara_peak = Common.peak_of ~config:crc_config accel_name spec in
      (label, naive_peak, clara_peak))
    [ ("CMSketch", "cmsketch", "cmsketch_accel"); ("WepDecap", "wepdecap", "wepdecap_accel") ]

(* -- (c) LPM accelerator sweep -- *)

let lpm_rows () =
  let spec = Common.mixed () in
  let lpm_config =
    { Nic.naive_port with Nic.accel_apis = [ "lpm_lookup"; "flow_cache_lookup" ] }
  in
  List.map
    (fun rules ->
      let _, naive = Common.peak_of (Printf.sprintf "iplookup_%d" rules) spec in
      let _, clara = Common.peak_of ~config:lpm_config (Printf.sprintf "iplookup_accel_%d" rules) spec in
      (rules, naive, clara))
    [ 16; 32; 64; 128; 256; 512; 1024 ]

let run () =
  Common.banner "Figure 10a: PCA separation of accelerator classes";
  Util.Table.print ~align:Util.Table.Left
    ~header:[ "Class"; "PC1 centroid"; "PC2 centroid"; "intra-class spread" ]
    (List.map
       (fun (name, x, y, s) ->
         [ name; Util.Table.fmt_f2 x; Util.Table.fmt_f2 y; Util.Table.fmt_f2 s ])
       (pca_summary ()));
  print_endline "Expected shape: class centroids are separated by more than their spreads.";
  Common.banner "Figure 10b: CRC accelerator (naive vs Clara port)";
  Util.Table.print ~align:Util.Table.Left
    ~header:
      [ "NF"; "naive Th (Mpps)"; "Clara Th (Mpps)"; "Th gain"; "naive Lat (us)"; "Clara Lat (us)";
        "Lat change" ]
    (List.map
       (fun (label, (n : Multicore.point), (c : Multicore.point)) ->
         [ label;
           Common.fmt_mpps n.Multicore.throughput_mpps;
           Common.fmt_mpps c.Multicore.throughput_mpps;
           Printf.sprintf "%.2fx" (c.Multicore.throughput_mpps /. n.Multicore.throughput_mpps);
           Common.fmt_us n.Multicore.latency_us;
           Common.fmt_us c.Multicore.latency_us;
           Printf.sprintf "%+.0f%%"
             (100.0 *. ((c.Multicore.latency_us /. n.Multicore.latency_us) -. 1.0)) ])
       (crc_accel_rows ()));
  print_endline "Paper shape: up to 1.6x throughput, up to -25% latency.";
  Common.banner "Figure 10c: LPM accelerator across table sizes";
  Util.Table.print
    ~header:
      [ "rules"; "naive Th"; "Clara Th"; "naive Lat(us)"; "Clara Lat(us)"; "lat ratio" ]
    (List.map
       (fun (rules, (n : Multicore.point), (c : Multicore.point)) ->
         [ string_of_int rules;
           Common.fmt_mpps n.Multicore.throughput_mpps;
           Common.fmt_mpps c.Multicore.throughput_mpps;
           Common.fmt_us n.Multicore.latency_us;
           Common.fmt_us c.Multicore.latency_us;
           Printf.sprintf "%.1fx" (n.Multicore.latency_us /. c.Multicore.latency_us) ])
       (lpm_rows ()));
  print_endline
    "Paper shape: the flow-cache/LPM-engine port wins by roughly an order of magnitude,\nand the naive port degrades as the table grows."
