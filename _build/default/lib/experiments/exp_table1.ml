(** Table 1: fidelity of the data-synthesis engine.

    Compares the instruction distribution of synthesized Click programs
    against the real-world corpus, for Clara's corpus-fitted generator vs.
    a baseline generator that ignores Click's AST distribution, across six
    distance metrics.  Distributions are over compacted-vocabulary
    instruction words (opcode + type + operand kinds, concrete header
    fields), the granularity Clara's predictor consumes. *)

let word_histogram vocab elements =
  List.concat_map
    (fun elt ->
      let f = Nf_frontend.Lower.lower_element elt in
      List.concat_map (fun (_, toks) -> Array.to_list toks) (Clara.Vocab.encode_func vocab f))
    elements

let results ?(n = 60) () =
  (* one shared vocabulary so histograms are comparable *)
  let vocab = Clara.Vocab.create () in
  let real_words = word_histogram vocab (Nf_lang.Corpus.table2 ()) in
  let clara_words = word_histogram vocab (Synth.Generator.batch ~seed:7001 n) in
  let base_words = word_histogram vocab (Synth.Generator.baseline_batch ~seed:7002 n) in
  let card = Clara.Vocab.size vocab in
  let real = Util.Stats.histogram ~card real_words in
  let clara = Util.Stats.histogram ~card clara_words in
  let baseline = Util.Stats.histogram ~card base_words in
  List.map2
    (fun (metric, clara_d) (_, base_d) -> (metric, clara_d, base_d))
    (Util.Distance.all clara real)
    (Util.Distance.all baseline real)

let run () =
  Common.banner "Table 1: data-synthesis fidelity (distribution distances)";
  let rows =
    List.map
      (fun (metric, c, b) -> [ metric; Util.Table.fmt_f4 c; Util.Table.fmt_f4 b ])
      (results ~n:(Common.scale 60) ())
  in
  Util.Table.print ~align:Util.Table.Left ~header:[ "Metric"; "Clara"; "Baseline" ] rows;
  print_newline ();
  print_endline
    "Paper: Clara 0.030/0.120/0.035/0.027/0.061/0.307 vs baseline 0.101/0.406/0.126/0.116/0.138/0.671";
  print_endline "Expected shape: Clara's corpus-fitted generator is closer on every metric."
