lib/nf_frontend/lower.mli: Nf_ir Nf_lang
