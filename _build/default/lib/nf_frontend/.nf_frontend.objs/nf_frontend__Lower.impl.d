lib/nf_frontend/lower.ml: Ast Builder Ir List Nf_ir Nf_lang Printf String
