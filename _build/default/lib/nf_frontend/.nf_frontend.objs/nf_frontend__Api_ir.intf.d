lib/nf_frontend/api_ir.mli: Nf_ir Nf_lang
