lib/nf_frontend/api_ir.ml: Builder Ir List Nf_ir Nf_lang Printf String
