(** Reverse-ported IR implementations of the NF framework API (§3.3).

    For every Click library call, a replica of the *SmartNIC*
    implementation — fixed-bucket hash tables, mark-invalid deletes, NIC
    packet-metadata parsing — represented as IR split into a straight-line
    [fixed] part and an optional [per_unit] loop body.  The NIC compiler
    compiles both; a call costs [fixed + units * per_unit], units coming
    from the workload profile. *)

(** How many loop units a call performs at runtime. *)
type unit_source =
  | No_units  (** straight-line API: cost is [fixed] only *)
  | Map_probes of string  (** mean probes of the named map under the workload *)
  | Payload_bytes  (** packet payload length *)
  | Header_words of int  (** fixed word count *)

type impl = {
  api : string;  (** concrete call name, e.g. "map_find.flow_table" *)
  target : string option;  (** stateful structure accessed, if any *)
  fixed : Nf_ir.Ir.func;
  per_unit : Nf_ir.Ir.func option;
  units : unit_source;
}

(** The reverse-ported implementation for a concrete API call name, in the
    context of an element's state declarations.
    @raise Failure on unknown calls. *)
val impl_for : Nf_lang.Ast.element -> string -> impl

(** Implementations for every API call of a lowered element, keyed by the
    concrete call name. *)
val impls_for_element : Nf_lang.Ast.element -> Nf_ir.Ir.func -> (string * impl) list
