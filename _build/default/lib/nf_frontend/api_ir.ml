(** Reverse-ported IR implementations of the NF framework API (§3.3).

    For every Click library call the paper derives a Click-level replica of
    the *SmartNIC* implementation — fixed-bucket hash tables instead of
    linear probing, mark-invalid deletes instead of shrinking, NIC packet
    metadata parsing instead of `sk_buff` — and analyzes its compiled form
    directly (no learning).  We represent each replica as IR split into:

    - [fixed]: the straight-line portion executed once per call
      (hashing, bucket address computation, result extraction), and
    - [per_unit]: the loop body executed once per unit of work
      (per bucket probe, per payload byte, per header word).

    The NIC compiler compiles both parts; the runtime cost of a call is
    [cost(fixed) + units * cost(per_unit)], with the unit count coming from
    the workload profile (probe counts, payload lengths). *)

open Nf_ir
module B = Builder

(** How many loop units a call performs at runtime. *)
type unit_source =
  | No_units  (** straight-line API: cost is [fixed] only *)
  | Map_probes of string  (** mean probes of the named map under the workload *)
  | Payload_bytes  (** packet payload length *)
  | Header_words of int  (** fixed word count, e.g. 10 for an IP header *)

type impl = {
  api : string;  (** concrete call name, e.g. "map_find.flow_table" *)
  target : string option;  (** stateful structure accessed, if any *)
  fixed : Ir.func;
  per_unit : Ir.func option;
  units : unit_source;
}

let finish_ret b = B.finish b

(* -- small IR-building vocabulary -- *)

let compute b op args = B.emit_value b ~op ~args ~ty:Ir.I32 ~annot:Ir.Compute

let load_global b g =
  B.emit_value b ~op:Ir.Load ~args:[ Ir.Global g ] ~ty:Ir.I32 ~annot:(Ir.Mem_stateful g)

let store_global b g v =
  B.emit_void b ~op:Ir.Store ~args:[ Ir.Reg v; Ir.Global g ] ~ty:Ir.I32
    ~annot:(Ir.Mem_stateful g)

let load_via b g addr =
  B.emit_value b ~op:Ir.Load ~args:[ Ir.Reg addr ] ~ty:Ir.I32 ~annot:(Ir.Mem_stateful g)

let store_via b g addr v =
  B.emit_void b ~op:Ir.Store ~args:[ Ir.Reg v; Ir.Reg addr ] ~ty:Ir.I32
    ~annot:(Ir.Mem_stateful g)

let load_packet b loc =
  B.emit_value b ~op:Ir.Load ~args:[ loc ] ~ty:Ir.I32 ~annot:Ir.Mem_packet

(** FNV-style hash of [n] key words: xor + mul + shift per word. *)
let emit_hash b ~key_words =
  let acc = ref (compute b Ir.Or [ Ir.Imm 0x811c; Ir.Imm 0 ]) in
  for i = 0 to key_words - 1 do
    let w = load_packet b (Ir.Hdr (Printf.sprintf "key%d" i)) in
    let x = compute b Ir.Xor [ Ir.Reg !acc; Ir.Reg w ] in
    let m = compute b Ir.Mul [ Ir.Reg x; Ir.Imm 0x0100_0193 ] in
    let s = compute b Ir.Lshr [ Ir.Reg m; Ir.Imm 15 ] in
    acc := compute b Ir.Xor [ Ir.Reg m; Ir.Reg s ]
  done;
  !acc

(* -- map operations, NIC style: fixed buckets, bounded slots -- *)

let map_find_impl ~map ~key_words =
  let fixed =
    let b = B.create (Printf.sprintf "nic.map_find.%s.fixed" map) in
    let h = emit_hash b ~key_words in
    let bucket = compute b Ir.And [ Ir.Reg h; Ir.Imm 1023 ] in
    let scaled = compute b Ir.Shl [ Ir.Reg bucket; Ir.Imm 2 ] in
    ignore (compute b Ir.Gep [ Ir.Global map; Ir.Reg scaled ]);
    finish_ret b
  in
  let per_unit =
    let b = B.create (Printf.sprintf "nic.map_find.%s.probe" map) in
    (* probe one slot: load valid+key words, compare, advance *)
    let base = compute b Ir.Gep [ Ir.Global map; Ir.Imm 0 ] in
    let valid = load_via b map base in
    let k0 = load_via b map base in
    let eq0 = compute b (Ir.Icmp Ir.Ceq) [ Ir.Reg k0; Ir.Reg valid ] in
    (if key_words > 1 then begin
       let k1 = load_via b map base in
       let eq1 = compute b (Ir.Icmp Ir.Ceq) [ Ir.Reg k1; Ir.Reg k0 ] in
       ignore (compute b Ir.And [ Ir.Reg eq0; Ir.Reg eq1 ])
     end);
    ignore (compute b Ir.Add [ Ir.Reg base; Ir.Imm 16 ]);
    finish_ret b
  in
  { api = "map_find." ^ map; target = Some map; fixed; per_unit = Some per_unit;
    units = Map_probes map }

let map_read_impl ~map ~field =
  let fixed =
    let b = B.create (Printf.sprintf "nic.map_read.%s.%s" map field) in
    let addr = compute b Ir.Gep [ Ir.Global map; Ir.Imm 8 ] in
    ignore (load_via b map addr);
    finish_ret b
  in
  { api = Printf.sprintf "map_read.%s.%s" map field; target = Some map; fixed;
    per_unit = None; units = No_units }

let map_write_impl ~map ~field =
  let fixed =
    let b = B.create (Printf.sprintf "nic.map_write.%s.%s" map field) in
    let addr = compute b Ir.Gep [ Ir.Global map; Ir.Imm 8 ] in
    let v = compute b Ir.Or [ Ir.Imm 1; Ir.Imm 0 ] in
    store_via b map addr v;
    finish_ret b
  in
  { api = Printf.sprintf "map_write.%s.%s" map field; target = Some map; fixed;
    per_unit = None; units = No_units }

let map_insert_impl ~map ~key_words ~val_words =
  let fixed =
    let b = B.create (Printf.sprintf "nic.map_insert.%s.fixed" map) in
    let h = emit_hash b ~key_words in
    let bucket = compute b Ir.And [ Ir.Reg h; Ir.Imm 1023 ] in
    let scaled = compute b Ir.Shl [ Ir.Reg bucket; Ir.Imm 2 ] in
    let base = compute b Ir.Gep [ Ir.Global map; Ir.Reg scaled ] in
    (* write key words, value words and the valid flag into the free slot *)
    for _ = 1 to key_words + val_words + 1 do
      let v = compute b Ir.Or [ Ir.Imm 1; Ir.Imm 0 ] in
      store_via b map base v
    done;
    finish_ret b
  in
  let per_unit =
    let b = B.create (Printf.sprintf "nic.map_insert.%s.probe" map) in
    let base = compute b Ir.Gep [ Ir.Global map; Ir.Imm 0 ] in
    let valid = load_via b map base in
    ignore (compute b (Ir.Icmp Ir.Ceq) [ Ir.Reg valid; Ir.Imm 0 ]);
    ignore (compute b Ir.Add [ Ir.Reg base; Ir.Imm 16 ]);
    finish_ret b
  in
  { api = "map_insert." ^ map; target = Some map; fixed; per_unit = Some per_unit;
    units = Map_probes map }

(** NIC-style erase only flips the valid bit (no compaction, §3.3). *)
let map_erase_impl ~map =
  let fixed =
    let b = B.create (Printf.sprintf "nic.map_erase.%s" map) in
    let addr = compute b Ir.Gep [ Ir.Global map; Ir.Imm 0 ] in
    let zero = compute b Ir.Or [ Ir.Imm 0; Ir.Imm 0 ] in
    store_via b map addr zero;
    finish_ret b
  in
  { api = "map_erase." ^ map; target = Some map; fixed; per_unit = None; units = No_units }

(* -- vectors: fixed capacity, bounds-checked -- *)

let vec_append_impl ~vec =
  let fixed =
    let b = B.create (Printf.sprintf "nic.vec_append.%s" vec) in
    let len = load_global b vec in
    let cap = compute b Ir.Or [ Ir.Imm 256; Ir.Imm 0 ] in
    ignore (compute b (Ir.Icmp Ir.Clt) [ Ir.Reg len; Ir.Reg cap ]);
    let scaled = compute b Ir.Shl [ Ir.Reg len; Ir.Imm 2 ] in
    let addr = compute b Ir.Gep [ Ir.Global vec; Ir.Reg scaled ] in
    let v = compute b Ir.Or [ Ir.Imm 1; Ir.Imm 0 ] in
    store_via b vec addr v;
    let len' = compute b Ir.Add [ Ir.Reg len; Ir.Imm 1 ] in
    store_global b vec len';
    finish_ret b
  in
  { api = "vec_append." ^ vec; target = Some vec; fixed; per_unit = None; units = No_units }

let vec_get_impl ~vec =
  let fixed =
    let b = B.create (Printf.sprintf "nic.vec_get.%s" vec) in
    let len = load_global b vec in
    ignore (compute b (Ir.Icmp Ir.Clt) [ Ir.Imm 0; Ir.Reg len ]);
    let addr = compute b Ir.Gep [ Ir.Global vec; Ir.Imm 0 ] in
    ignore (load_via b vec addr);
    finish_ret b
  in
  { api = "vec_get." ^ vec; target = Some vec; fixed; per_unit = None; units = No_units }

let vec_set_impl ~vec =
  let fixed =
    let b = B.create (Printf.sprintf "nic.vec_set.%s" vec) in
    let len = load_global b vec in
    ignore (compute b (Ir.Icmp Ir.Clt) [ Ir.Imm 0; Ir.Reg len ]);
    let addr = compute b Ir.Gep [ Ir.Global vec; Ir.Imm 0 ] in
    let v = compute b Ir.Or [ Ir.Imm 1; Ir.Imm 0 ] in
    store_via b vec addr v;
    finish_ret b
  in
  { api = "vec_set." ^ vec; target = Some vec; fixed; per_unit = None; units = No_units }

let vec_len_impl ~vec =
  let fixed =
    let b = B.create (Printf.sprintf "nic.vec_len.%s" vec) in
    ignore (load_global b vec);
    finish_ret b
  in
  { api = "vec_len." ^ vec; target = Some vec; fixed; per_unit = None; units = No_units }

(* -- header accessors: nbi_meta packet-info parsing -- *)

let header_impl name depth =
  let fixed =
    let b = B.create ("nic." ^ name) in
    (* read packet metadata, compute the layer offset *)
    let meta = load_packet b Ir.Payload in
    let off = compute b Ir.And [ Ir.Reg meta; Ir.Imm 0xff ] in
    let adj = compute b Ir.Add [ Ir.Reg off; Ir.Imm (14 * depth) ] in
    ignore (compute b Ir.Gep [ Ir.Payload; Ir.Reg adj ]);
    finish_ret b
  in
  { api = name; target = None; fixed; per_unit = None; units = No_units }

(* -- checksum and hashing helpers -- *)

(** Full IP header checksum, computed procedurally word by word. *)
let checksum_ip_impl ~update =
  let name = if update then "checksum_update_ip" else "checksum_ip" in
  let fixed =
    let b = B.create ("nic." ^ name ^ ".fixed") in
    let sum = compute b Ir.Or [ Ir.Imm 0; Ir.Imm 0 ] in
    let hi = compute b Ir.Lshr [ Ir.Reg sum; Ir.Imm 16 ] in
    let lo = compute b Ir.And [ Ir.Reg sum; Ir.Imm 0xffff ] in
    let folded = compute b Ir.Add [ Ir.Reg hi; Ir.Reg lo ] in
    let inv = compute b Ir.Xor [ Ir.Reg folded; Ir.Imm 0xffff ] in
    if update then
      B.emit_void b ~op:Ir.Store ~args:[ Ir.Reg inv; Ir.Hdr "ip_csum" ] ~ty:Ir.I16
        ~annot:Ir.Mem_packet;
    finish_ret b
  in
  let per_unit =
    (* L4 checksums cover the payload byte stream: fetch, swizzle into
       host order, accumulate, fold the carry *)
    let b = B.create ("nic." ^ name ^ ".byte") in
    let w = load_packet b Ir.Payload in
    let lo = compute b Ir.And [ Ir.Reg w; Ir.Imm 0xff ] in
    let hi = compute b Ir.Shl [ Ir.Reg lo; Ir.Imm 8 ] in
    let acc = compute b Ir.Add [ Ir.Reg hi; Ir.Reg w ] in
    let carry = compute b Ir.Lshr [ Ir.Reg acc; Ir.Imm 16 ] in
    let folded = compute b Ir.Add [ Ir.Reg acc; Ir.Reg carry ] in
    ignore (compute b Ir.And [ Ir.Reg folded; Ir.Imm 0xffff ]);
    finish_ret b
  in
  { api = name; target = None; fixed; per_unit = Some per_unit; units = Payload_bytes }

let csum_incr_impl =
  let fixed =
    let b = B.create "nic.csum_incr_update" in
    let old_csum = load_packet b (Ir.Hdr "ip_csum") in
    let d = compute b Ir.Sub [ Ir.Imm 0; Ir.Imm 0 ] in
    let masked = compute b Ir.And [ Ir.Reg d; Ir.Imm 0xffff ] in
    let s = compute b Ir.Add [ Ir.Reg old_csum; Ir.Reg masked ] in
    let hi = compute b Ir.Lshr [ Ir.Reg s; Ir.Imm 16 ] in
    let lo = compute b Ir.And [ Ir.Reg s; Ir.Imm 0xffff ] in
    let folded = compute b Ir.Add [ Ir.Reg hi; Ir.Reg lo ] in
    B.emit_void b ~op:Ir.Store ~args:[ Ir.Reg folded; Ir.Hdr "ip_csum" ] ~ty:Ir.I16
      ~annot:Ir.Mem_packet;
    finish_ret b
  in
  { api = "csum_incr_update"; target = None; fixed; per_unit = None; units = No_units }

(** Procedural bitwise CRC over payload bytes: the expensive path the CRC
    accelerator replaces. *)
let crc_impl ~name =
  let fixed =
    let b = B.create ("nic." ^ name ^ ".fixed") in
    let init = compute b Ir.Or [ Ir.Imm 0xffff; Ir.Imm 0 ] in
    ignore (compute b Ir.Xor [ Ir.Reg init; Ir.Imm 0xffffffff ]);
    finish_ret b
  in
  let per_unit =
    let b = B.create ("nic." ^ name ^ ".byte") in
    let byte = load_packet b Ir.Payload in
    let acc = ref (compute b Ir.Xor [ Ir.Reg byte; Ir.Imm 0 ]) in
    (* eight unrolled polynomial steps per byte *)
    for _ = 1 to 8 do
      let lsb = compute b Ir.And [ Ir.Reg !acc; Ir.Imm 1 ] in
      let sh = compute b Ir.Lshr [ Ir.Reg !acc; Ir.Imm 1 ] in
      let mask = compute b Ir.Sub [ Ir.Imm 0; Ir.Reg lsb ] in
      let poly = compute b Ir.And [ Ir.Reg mask; Ir.Imm 0xedb88320 ] in
      acc := compute b Ir.Xor [ Ir.Reg sh; Ir.Reg poly ]
    done;
    finish_ret b
  in
  { api = name; target = None; fixed; per_unit = Some per_unit; units = Payload_bytes }

let hash32_impl =
  let fixed =
    let b = B.create "nic.hash32" in
    let _h = emit_hash b ~key_words:2 in
    finish_ret b
  in
  { api = "hash32"; target = None; fixed; per_unit = None; units = No_units }

let trivial_impl name ops =
  let fixed =
    let b = B.create ("nic." ^ name) in
    let r = ref (compute b Ir.Or [ Ir.Imm 0; Ir.Imm 0 ]) in
    for _ = 2 to ops do
      r := compute b Ir.Add [ Ir.Reg !r; Ir.Imm 1 ]
    done;
    finish_ret b
  in
  { api = name; target = None; fixed; per_unit = None; units = No_units }

(** Packet IO through the NBI engine: metadata write + ring doorbell. *)
let packet_io_impl name =
  let fixed =
    let b = B.create ("nic." ^ name) in
    let meta = compute b Ir.Or [ Ir.Imm 1; Ir.Imm 0 ] in
    B.emit_void b ~op:Ir.Store ~args:[ Ir.Reg meta; Ir.Payload ] ~ty:Ir.I32
      ~annot:Ir.Mem_packet;
    ignore (compute b Ir.Add [ Ir.Reg meta; Ir.Imm 1 ]);
    finish_ret b
  in
  { api = name; target = None; fixed; per_unit = None; units = No_units }

(** Build the reverse-ported implementation for a concrete API call name as
    it appears in lowered IR, in the context of an element's state
    declarations. *)
let impl_for (elt : Nf_lang.Ast.element) (call : string) : impl =
  let parts = String.split_on_char '.' call in
  let decl name = Nf_lang.Ast.find_state elt name in
  match parts with
  | [ "map_find"; map ] ->
    let key_words =
      match decl map with
      | Some (Nf_lang.Ast.Map { key_widths; _ }) -> List.length key_widths
      | Some _ | None -> 2
    in
    map_find_impl ~map ~key_words
  | [ "map_read"; map; field ] -> map_read_impl ~map ~field
  | [ "map_write"; map; field ] -> map_write_impl ~map ~field
  | [ "map_insert"; map ] ->
    let key_words, val_words =
      match decl map with
      | Some (Nf_lang.Ast.Map { key_widths; val_fields; _ }) ->
        (List.length key_widths, List.length val_fields)
      | Some _ | None -> (2, 2)
    in
    map_insert_impl ~map ~key_words ~val_words
  | [ "map_erase"; map ] -> map_erase_impl ~map
  | [ "vec_append"; vec ] -> vec_append_impl ~vec
  | [ "vec_get"; vec ] -> vec_get_impl ~vec
  | [ "vec_set"; vec ] -> vec_set_impl ~vec
  | [ "vec_len"; vec ] -> vec_len_impl ~vec
  | [ "eth_header" ] -> header_impl "eth_header" 0
  | [ "ip_header" ] -> header_impl "ip_header" 1
  | [ "tcp_header" ] | [ "udp_header" ] -> header_impl (List.hd parts) 2
  | [ "checksum_ip" ] -> checksum_ip_impl ~update:false
  | [ "checksum_update_ip" ] -> checksum_ip_impl ~update:true
  | [ "csum_incr_update" ] -> csum_incr_impl
  | [ "crc32_payload" ] -> crc_impl ~name:"crc32_payload"
  | [ "crc16_payload" ] -> crc_impl ~name:"crc16_payload"
  | [ "hash32" ] -> hash32_impl
  | [ "packet_len" ] -> trivial_impl "packet_len" 2
  | [ "lpm_lookup" ] -> trivial_impl "lpm_lookup" 6
  | [ "flow_cache_lookup" ] -> trivial_impl "flow_cache_lookup" 4
  | [ "rand16" ] -> trivial_impl "rand16" 4
  | [ "now" ] -> trivial_impl "now" 2
  | [ "min" ] | [ "max" ] -> trivial_impl (List.hd parts) 2
  | [ "send" ] -> packet_io_impl "send"
  | [ "kill" ] -> packet_io_impl "kill"
  | _ -> failwith (Printf.sprintf "Api_ir.impl_for: unknown API call %s" call)

(** Reverse-ported implementations for every API call of a lowered element. *)
let impls_for_element elt (f : Ir.func) =
  let calls =
    Ir.fold_instrs
      (fun acc i ->
        match (i.Ir.op, i.Ir.annot) with
        | Ir.Call name, Ir.Api _ -> name :: acc
        | _ -> acc)
      [] f
    |> List.sort_uniq compare
  in
  List.map (fun call -> (call, impl_for elt call)) calls
