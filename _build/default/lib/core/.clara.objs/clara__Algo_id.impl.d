lib/core/algo_id.ml: Algo_corpus Array Ast Hashtbl Ir List Mlkit Nf_frontend Nf_ir Nf_lang Option Printf Stdlib String
