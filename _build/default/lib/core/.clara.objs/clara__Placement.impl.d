lib/core/placement.ml: Array Ast Ilp List Nf_lang Nicsim Option Workload
