lib/core/vocab.ml: Array Hashtbl Ir List Nf_ir String
