lib/core/colocation.mli: Mlkit Nicsim
