lib/core/prepare.ml: Array Ast Ir List Nf_frontend Nf_ir Nf_lang Pp Vocab
