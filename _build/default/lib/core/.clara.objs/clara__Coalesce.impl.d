lib/core/coalesce.ml: Array Ast Hashtbl Interp List Mlkit Nf_lang Nicsim Option Workload
