lib/core/vocab.mli: Hashtbl Nf_ir
