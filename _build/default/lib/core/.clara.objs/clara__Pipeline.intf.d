lib/core/pipeline.mli: Algo_id Insights Nf_lang Predictor Scaleout Workload
