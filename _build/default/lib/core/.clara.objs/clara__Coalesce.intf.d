lib/core/coalesce.mli: Nf_lang Nicsim Workload
