lib/core/predictor.mli: Mlkit Nf_lang Vocab
