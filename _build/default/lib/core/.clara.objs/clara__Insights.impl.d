lib/core/insights.ml: Algo_corpus Ast Buffer List Nf_lang Nicsim Printf String
