lib/core/pipeline.ml: Algo_corpus Algo_id Ast Coalesce Insights List Nf_lang Nicsim Option Placement Predictor Prepare Scaleout Workload
