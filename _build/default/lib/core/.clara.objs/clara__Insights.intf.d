lib/core/insights.mli: Algo_corpus Nf_lang Nicsim
