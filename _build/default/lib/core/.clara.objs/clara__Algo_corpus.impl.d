lib/core/algo_corpus.ml: Build Corpus List Nf_lang Synth
