lib/core/partial.ml: Ast Build List Nf_frontend Nf_ir Nf_lang Nicsim Printf String Workload
