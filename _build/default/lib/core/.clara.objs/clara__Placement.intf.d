lib/core/placement.mli: Nf_lang Nicsim Workload
