lib/core/colocation.ml: Array List Mlkit Nicsim Util
