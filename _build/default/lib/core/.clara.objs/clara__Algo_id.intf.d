lib/core/algo_id.mli: Algo_corpus Hashtbl Mlkit Nf_lang
