lib/core/predictor.ml: Array Ast Ir List Mlkit Nf_frontend Nf_ir Nf_lang Nicsim Prepare Synth Util Vocab
