lib/core/partial.mli: Nf_lang Workload
