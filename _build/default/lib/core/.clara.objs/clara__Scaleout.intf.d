lib/core/scaleout.mli: Mlkit Nf_lang Nicsim Workload
