lib/core/scaleout.ml: Array Ast Float List Mlkit Nf_lang Nicsim Synth Util Workload
