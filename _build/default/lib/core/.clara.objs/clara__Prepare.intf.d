lib/core/prepare.mli: Nf_ir Nf_lang Vocab
