lib/core/algo_corpus.mli: Nf_lang
