(** NF state placement via ILP (§4.3, Figure 12).

    Clara profiles data-structure access frequencies by running the NF on
    the host (with reverse-ported data-structure semantics so the control
    flow matches the NIC) and solves

      min sum_ij L_j * p_ij * f_i
      s.t. every structure placed once; level capacities respected.

    The formulation deliberately ignores per-level *bandwidth* — the
    source of the small gap against exhaustive search the paper observes
    in §5.8 (spreading hot state across two levels can raise aggregate
    bandwidth). *)

open Nf_lang

(** Placement candidates: shared NF state cannot live in per-core LMEM. *)
let candidate_levels = [ Nicsim.Mem.CLS; Nicsim.Mem.CTM; Nicsim.Mem.IMEM; Nicsim.Mem.EMEM ]

(** Per-structure access frequencies (accesses/packet) under a workload,
    measured from the ported profile. *)
let access_frequencies (ported : Nicsim.Nic.ported) = ported.Nicsim.Nic.demand.Nicsim.Perf.per_structure

(** Solve the ILP for an element's structures.  Returns a
    {!Nicsim.Mem.placement}; structures the profile never touched still get
    placed (frequency 0 → cheapest feasible level last). *)
let solve (elt : Ast.element) (ported : Nicsim.Nic.ported) : Nicsim.Mem.placement =
  let sizes = Nicsim.Nic.state_sizes elt in
  let freqs = access_frequencies ported in
  let items = Array.of_list (List.map fst sizes) in
  let n = Array.length items in
  if n = 0 then []
  else begin
    let hit = ported.Nicsim.Nic.demand.Nicsim.Perf.emem_hit in
    let levels = Array.of_list candidate_levels in
    let freq i =
      Option.value ~default:0.0 (List.assoc_opt items.(i) freqs)
    in
    let problem =
      {
        Ilp.n_items = n;
        n_bins = Array.length levels;
        cost =
          (fun i b ->
            let level = levels.(b) in
            let latency =
              match level with
              | Nicsim.Mem.EMEM -> Nicsim.Mem.emem_latency ~hit_ratio:hit
              | Nicsim.Mem.LMEM | Nicsim.Mem.CLS | Nicsim.Mem.CTM | Nicsim.Mem.IMEM ->
                Nicsim.Mem.base_latency level
            in
            freq i *. latency);
        size = (fun i -> List.assoc items.(i) sizes);
        capacity = (fun b -> Nicsim.Mem.capacity_bytes levels.(b));
      }
    in
    match Ilp.solve problem with
    | Some { Ilp.assignment; _ } ->
      Array.to_list (Array.mapi (fun i b -> (items.(i), levels.(b))) assignment)
    | None ->
      (* capacities cannot be satisfied: fall back to all-EMEM *)
      Nicsim.Mem.naive_placement (Array.to_list items)
  end

(** End-to-end: port naively to profile, solve, and return the re-ported
    NF under the suggested placement. *)
let apply (elt : Ast.element) (spec : Workload.spec) =
  let naive = Nicsim.Nic.port elt spec in
  let placement = solve elt naive in
  let config = { Nicsim.Nic.naive_port with Nicsim.Nic.placement = Some placement } in
  (placement, Nicsim.Nic.port ~config elt spec)

(** Exhaustive per-structure search used by expert emulation (§5.8): every
    feasible assignment of the hottest [limit] structures is measured on
    the simulator (colder structures keep the ILP suggestion) and the best
    peak throughput wins.  Unlike the ILP, this search sees bandwidth
    effects: spreading hot state across levels can win. *)
let expert_search ?(limit = 5) (elt : Ast.element) (spec : Workload.spec) =
  let naive = Nicsim.Nic.port elt spec in
  let ilp_placement = solve elt naive in
  let sizes = Nicsim.Nic.state_sizes elt in
  let freqs = access_frequencies naive in
  let by_freq =
    List.map (fun (name, _) -> (name, Option.value ~default:0.0 (List.assoc_opt name freqs))) sizes
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  let hot = List.filteri (fun i _ -> i < limit) by_freq |> List.map fst in
  let items = Array.of_list hot in
  let levels = Array.of_list candidate_levels in
  let problem =
    {
      Ilp.n_items = Array.length items;
      n_bins = Array.length levels;
      cost = (fun _ _ -> 0.0);
      size = (fun i -> List.assoc items.(i) sizes);
      capacity = (fun b -> Nicsim.Mem.capacity_bytes levels.(b));
    }
  in
  let candidates = Ilp.enumerate problem in
  let best = ref None in
  List.iter
    (fun { Ilp.assignment; _ } ->
      let placement =
        Array.to_list (Array.mapi (fun i b -> (items.(i), levels.(b))) assignment)
        @ List.filter (fun (name, _) -> not (List.mem name hot)) ilp_placement
      in
      let config = { Nicsim.Nic.naive_port with Nicsim.Nic.placement = Some placement } in
      let ported = Nicsim.Nic.reconfigure naive config in
      let peak = Nicsim.Nic.peak ported in
      let better (p : Nicsim.Multicore.point) (q : Nicsim.Multicore.point) =
        (* throughput first; latency breaks near-ties *)
        q.Nicsim.Multicore.throughput_mpps > 1.005 *. p.Nicsim.Multicore.throughput_mpps
        || (q.Nicsim.Multicore.throughput_mpps >= 0.995 *. p.Nicsim.Multicore.throughput_mpps
           && q.Nicsim.Multicore.latency_us < p.Nicsim.Multicore.latency_us)
      in
      match !best with
      | Some (_, _, p) when not (better p peak) -> ()
      | _ -> best := Some (placement, ported, peak))
    candidates;
  match !best with
  | Some (placement, ported, _) -> (placement, ported)
  | None -> apply elt spec
