(** Offloading-insight reports — the tool's user-facing output
    (Figure 2c). *)

(** A detected accelerator opportunity: which component of the NF
    implements which accelerator algorithm. *)
type accel_suggestion = { component : string; algorithm : Algo_corpus.label }

(** Everything Clara derived for one NF under one workload. *)
type t = {
  nf_name : string;
  workload : string;
  predicted_compute : float;  (** NIC compute instructions (LSTM estimate) *)
  predicted_memory : float;  (** stateful memory accesses (direct count) *)
  api_calls : string list;  (** framework calls needing reverse porting *)
  accel : accel_suggestion list;
  suggested_cores : int option;  (** scale-out factor, when a model is loaded *)
  placement : Nicsim.Mem.placement;  (** ILP state placement *)
  packs : Nicsim.Perf.packs;  (** coalesced variable packs *)
}

(** Render the human-readable report. *)
val render : t -> string

(** API rewrites implied by the detected accelerator algorithms (the
    [accel_apis] to hand the NIC compiler). *)
val accel_apis : t -> string list

(** The porting configuration applying every insight in the bundle. *)
val to_port_config : t -> Nicsim.Nic.port_config

(** One-line summary for listings. *)
val summary : t -> Nf_lang.Ast.element -> string
