(** Memory access coalescing via access-vector clustering (§4.4,
    Figure 13).

    Each stateful scalar gets an access vector over code blocks
    (p_i = accesses from block i / total accesses); K-means clusters
    variables with similar vectors into allocation packs fetched with one
    coalesced access sized to the pack. *)

(** The scalars of an element eligible for packing. *)
val scalar_names : Nf_lang.Ast.element -> string list

(** Normalized access vectors per scalar.  Statement ids are coarsened
    into code blocks (consecutive sids with equal execution counts), so
    co-accessed variables share dimensions. *)
val access_vectors :
  Nf_lang.Ast.element -> Nf_lang.Interp.profile -> (string * float array) list

(** Mean silhouette score of a clustering; used to select k. *)
val silhouette : float array array -> int array -> int -> float

(** Suggested packs: K-means with silhouette-selected k over the access
    vectors; singletons are not packs. *)
val suggest : Nf_lang.Ast.element -> Nf_lang.Interp.profile -> Nicsim.Perf.packs

(** Coalesced access size for a pack, in bytes (§4.4: access sizes are set
    to match the variable pack). *)
val pack_access_bytes : Nf_lang.Ast.element -> string list -> int

(** End-to-end: port naively to profile, cluster, re-port with packs. *)
val apply :
  Nf_lang.Ast.element -> Workload.spec -> Nicsim.Perf.packs * Nicsim.Nic.ported

(** Expert emulation (§5.8): exhaustively try every partition of the
    [limit] hottest scalars into packs and keep the configuration with the
    fewest cores-to-saturate (latency breaking ties). *)
val expert_search :
  ?limit:int ->
  Nf_lang.Ast.element ->
  Workload.spec ->
  Nicsim.Perf.packs * Nicsim.Nic.ported
