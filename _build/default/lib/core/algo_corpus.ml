(** Labeled corpus of accelerator-algorithm implementations (§4.1).

    The paper's insight: the same algorithm is written many different ways
    (CRC with different widths, polynomials, bit orders, lookup tables;
    LPM with range/Patricia tries or linear scans), but its inherent
    logical workflow shows distinct features under the ML lens.  This
    module generates those implementation variants as NF elements so the
    classifier trains across implementation diversity, standing in for the
    paper's 600+ Click elements and 9000+ crawled programs. *)

open Nf_lang

type label = Crc | Lpm | Checksum | Other

let label_name = function Crc -> "CRC" | Lpm -> "LPM" | Checksum -> "Checksum" | Other -> "none"

(* -- CRC variants -- *)

(** Bitwise CRC, LSB-first (reflected). *)
let crc_reflected ~width ~poly ~bytes name =
  let mask = (1 lsl width) - 1 in
  let open Build in
  element name
    ~state:[ scalar "crc_out" ]
    [ let_ "crc" (i mask);
      for_ "ci" (i 0) (i bytes)
        [ let_ "crc" (l "crc" lxor payload (l "ci"));
          for_ "cb" (i 0) (i 8)
            [ let_ "lsb" (l "crc" land i 1);
              let_ "crc" (l "crc" lsr i 1);
              when_ (l "lsb" <> i 0) [ let_ "crc" (l "crc" lxor i poly) ] ] ];
      set_g "crc_out" (l "crc" land i mask);
      emit 0 ]

(** Bitwise CRC, MSB-first: shifts left and tests the top bit. *)
let crc_msb_first ~width ~poly ~bytes name =
  let top = 1 lsl (width - 1) in
  let mask = (1 lsl width) - 1 in
  let width_minus_8 = width - 8 in
  let open Build in
  element name
    ~state:[ scalar "crc_out" ]
    [ let_ "crc" (i 0);
      for_ "ci" (i 0) (i bytes)
        [ let_ "crc" (l "crc" lxor (payload (l "ci") lsl i width_minus_8));
          for_ "cb" (i 0) (i 8)
            [ let_ "hi" (l "crc" land i top);
              let_ "crc" ((l "crc" lsl i 1) land i mask);
              when_ (l "hi" <> i 0) [ let_ "crc" (l "crc" lxor i poly) ] ] ];
      set_g "crc_out" (l "crc");
      emit 0 ]

(** Table-driven CRC: one lookup + xor/shift per byte. *)
let crc_table_driven ~bytes name =
  let open Build in
  element name
    ~state:[ array "crc_table" 256; scalar "crc_out" ]
    [ let_ "crc" (i 0xffff);
      for_ "ci" (i 0) (i bytes)
        [ let_ "idx" ((l "crc" lxor payload (l "ci")) land i 255);
          let_ "crc" ((l "crc" lsr i 8) lxor arr_get "crc_table" (l "idx")) ];
      set_g "crc_out" (l "crc" lxor i 0xffff);
      emit 0 ]

(** CRC with explicit zero padding of a trailing partial chunk. *)
let crc_padded ~bytes name =
  let open Build in
  element name
    ~state:[ scalar "crc_out" ]
    [ let_ "crc" (i 0xffffffff);
      let_ "padded_len" ((i bytes + i 3) land not_ (i 3) land i 0xff);
      for_ "ci" (i 0) (l "padded_len")
        [ let_ "byte" (i 0);
          when_ (l "ci" < i bytes) [ let_ "byte" (payload (l "ci")) ];
          let_ "crc" (l "crc" lxor l "byte");
          for_ "cb" (i 0) (i 8)
            [ let_ "lsb" (l "crc" land i 1);
              let_ "crc" (l "crc" lsr i 1);
              when_ (l "lsb" <> i 0) [ let_ "crc" (l "crc" lxor i 0xedb88320) ] ] ];
      set_g "crc_out" (l "crc");
      emit 0 ]

let crc_variants () =
  [ crc_reflected ~width:32 ~poly:0xedb88320 ~bytes:8 "crc32_refl_8";
    crc_reflected ~width:32 ~poly:0xedb88320 ~bytes:16 "crc32_refl_16";
    crc_reflected ~width:16 ~poly:0xa001 ~bytes:8 "crc16_refl_8";
    crc_reflected ~width:16 ~poly:0x8408 ~bytes:12 "crc16_ccitt_12";
    crc_reflected ~width:8 ~poly:0xab ~bytes:8 "crc8_refl_8";
    crc_msb_first ~width:32 ~poly:0x04c11db7 ~bytes:8 "crc32_msb_8";
    crc_msb_first ~width:16 ~poly:0x1021 ~bytes:8 "crc16_msb_8";
    crc_msb_first ~width:16 ~poly:0x8005 ~bytes:16 "crc16_msb_16";
    crc_table_driven ~bytes:8 "crc_table_8";
    crc_table_driven ~bytes:16 "crc_table_16";
    crc_table_driven ~bytes:24 "crc_table_24";
    crc_padded ~bytes:10 "crc32_padded_10";
    crc_padded ~bytes:6 "crc32_padded_6" ]

(* -- LPM variants -- *)

(** Binary (Patricia-style) trie walk: pointer chasing over child arrays. *)
let lpm_binary_trie ~depth name =
  let open Build in
  element name
    ~state:[ array "left" 1024; array "right" 1024; array "nexthop" 1024; scalar "result" ]
    [ let_ "addr" (hdr Ip_dst);
      let_ "node" (i 0);
      let_ "best" (i 0);
      for_ "bit" (i 0) (i depth)
        [ let_ "nh" (arr_get "nexthop" (l "node"));
          when_ (l "nh" <> i 0) [ let_ "best" (l "nh") ];
          if_
            (((l "addr" lsr (i 31 - l "bit")) land i 1) = i 0)
            [ let_ "node" (arr_get "left" (l "node")) ]
            [ let_ "node" (arr_get "right" (l "node")) ] ];
      set_g "result" (l "best");
      emit 0 ]

(** Multibit-stride trie: wider child fan-out, fewer levels. *)
let lpm_multibit ~stride ~levels name =
  let chunk_mask = (1 lsl stride) - 1 in
  let open Build in
  element name
    ~state:[ array "children" 4096; array "prefixes" 4096; scalar "result" ]
    [ let_ "addr" (hdr Ip_dst);
      let_ "node" (i 0);
      let_ "best" (i 0);
      for_ "lvl" (i 0) (i levels)
        [ let_ "chunk" ((l "addr" lsr (i 32 - ((l "lvl" + i 1) * i stride))) land i chunk_mask);
          let_ "slot" ((l "node" lsl i stride) + l "chunk");
          let_ "pfx" (arr_get "prefixes" (l "slot" land i 4095));
          when_ (l "pfx" <> i 0) [ let_ "best" (l "pfx") ];
          let_ "node" (arr_get "children" (l "slot" land i 4095)) ];
      set_g "result" (l "best");
      emit 0 ]

(** Linear scan over (prefix, mask, nexthop) rule arrays, longest wins. *)
let lpm_linear_scan ~rules name =
  let open Build in
  element name
    ~state:
      [ array "rule_prefix" rules; array "rule_mask" rules; array "rule_nh" rules;
        scalar "result" ]
    [ let_ "addr" (hdr Ip_dst);
      let_ "best_len" (i 0);
      let_ "best" (i 0);
      for_ "ri" (i 0) (i rules)
        [ let_ "m" (arr_get "rule_mask" (l "ri"));
          when_
            ((l "addr" land l "m") = arr_get "rule_prefix" (l "ri") && l "m" >= l "best_len")
            [ let_ "best_len" (l "m"); let_ "best" (arr_get "rule_nh" (l "ri")) ] ];
      set_g "result" (l "best");
      emit 0 ]

let lpm_variants () =
  [ lpm_binary_trie ~depth:8 "lpm_trie_8";
    lpm_binary_trie ~depth:16 "lpm_trie_16";
    lpm_binary_trie ~depth:24 "lpm_trie_24";
    lpm_multibit ~stride:4 ~levels:4 "lpm_multibit_4x4";
    lpm_multibit ~stride:8 ~levels:3 "lpm_multibit_8x3";
    lpm_linear_scan ~rules:16 "lpm_scan_16";
    lpm_linear_scan ~rules:32 "lpm_scan_32";
    lpm_linear_scan ~rules:64 "lpm_scan_64" ]

(* -- checksum variants -- *)

(** Ones'-complement word sum over the header/payload. *)
let csum_word_sum ~words name =
  let open Build in
  element name
    ~state:[ scalar "csum_out" ]
    [ let_ "sum" (i 0);
      for_ "wi" (i 0) (i words)
        [ let_ "w" (payload (l "wi" * i 2) lor (payload ((l "wi" * i 2) + i 1) lsl i 8));
          let_ "sum" (l "sum" + l "w") ];
      let_ "sum" ((l "sum" land i 0xffff) + (l "sum" lsr i 16));
      let_ "sum" ((l "sum" land i 0xffff) + (l "sum" lsr i 16));
      set_g "csum_out" (l "sum" lxor i 0xffff);
      emit 0 ]

(** Deferred-carry variant: folds carries once at the end. *)
let csum_deferred ~words name =
  let open Build in
  element name
    ~state:[ scalar "csum_out" ]
    [ let_ "sum" (i 0);
      let_ "carry" (i 0);
      for_ "wi" (i 0) (i words)
        [ let_ "w" (payload (l "wi" * i 2) lor (payload ((l "wi" * i 2) + i 1) lsl i 8));
          let_ "next" (l "sum" + l "w");
          when_ (l "next" > i 0xffff) [ let_ "carry" (l "carry" + i 1) ];
          let_ "sum" (l "next" land i 0xffff) ];
      set_g "csum_out" ((l "sum" + l "carry") lxor i 0xffff);
      emit 0 ]

let checksum_variants () =
  [ csum_word_sum ~words:10 "csum_sum_10";
    csum_word_sum ~words:20 "csum_sum_20";
    csum_word_sum ~words:5 "csum_sum_5";
    csum_deferred ~words:10 "csum_defer_10";
    csum_deferred ~words:16 "csum_defer_16" ]

(** Full labeled training corpus: positives for each accelerator class plus
    negatives drawn from the synthesizer and non-algorithm corpus NFs. *)
let labeled ?(negatives = 60) ?(seed = 901) () =
  let pos =
    List.map (fun e -> (e, Crc)) (crc_variants ())
    @ List.map (fun e -> (e, Lpm)) (lpm_variants ())
    @ List.map (fun e -> (e, Checksum)) (checksum_variants ())
  in
  let neg_syn = Synth.Generator.batch ~seed negatives in
  let neg_corpus =
    List.map Corpus.find
      [ "anonipaddr"; "tcpack"; "udpipencap"; "forcetcp"; "tcpresp"; "tcpgen"; "aggcounter";
        "timefilter"; "iprewriter"; "Mazu-NAT"; "WebGen"; "webtcp" ]
  in
  pos @ List.map (fun e -> (e, Other)) (neg_syn @ neg_corpus)
