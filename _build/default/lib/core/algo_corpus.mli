(** Labeled corpus of accelerator-algorithm implementations (§4.1).

    The same algorithm appears in many idiosyncratic forms — CRCs differ
    in width, polynomial, bit order, table usage and padding; LPMs use
    binary or multibit tries or linear scans — yet each has an inherent
    logical workflow the classifier can learn.  These generators stand in
    for the paper's 600+ Click elements and 9000+ crawled programs. *)

(** Accelerator classes available on the simulated NIC, plus [Other]. *)
type label = Crc | Lpm | Checksum | Other

val label_name : label -> string

(** Bitwise CRC, LSB-first (reflected), over the first [bytes] payload
    bytes. *)
val crc_reflected : width:int -> poly:int -> bytes:int -> string -> Nf_lang.Ast.element

(** Bitwise CRC, MSB-first: shifts left and tests the top bit. *)
val crc_msb_first : width:int -> poly:int -> bytes:int -> string -> Nf_lang.Ast.element

(** Table-driven CRC: one lookup + xor/shift per byte. *)
val crc_table_driven : bytes:int -> string -> Nf_lang.Ast.element

(** CRC with explicit zero padding of a trailing partial chunk. *)
val crc_padded : bytes:int -> string -> Nf_lang.Ast.element

(** Thirteen CRC implementation variants. *)
val crc_variants : unit -> Nf_lang.Ast.element list

(** Binary (Patricia-style) trie walk: pointer chasing over child arrays. *)
val lpm_binary_trie : depth:int -> string -> Nf_lang.Ast.element

(** Multibit-stride trie: wider fan-out, fewer levels. *)
val lpm_multibit : stride:int -> levels:int -> string -> Nf_lang.Ast.element

(** Linear scan over (prefix, mask, nexthop) rule arrays. *)
val lpm_linear_scan : rules:int -> string -> Nf_lang.Ast.element

(** Eight LPM implementation variants. *)
val lpm_variants : unit -> Nf_lang.Ast.element list

(** Ones'-complement word-sum checksum. *)
val csum_word_sum : words:int -> string -> Nf_lang.Ast.element

(** Checksum with deferred carry folding. *)
val csum_deferred : words:int -> string -> Nf_lang.Ast.element

(** Five checksum implementation variants. *)
val checksum_variants : unit -> Nf_lang.Ast.element list

(** The full labeled training corpus: every positive variant plus
    [negatives] synthesized programs and the non-algorithm corpus NFs,
    labeled [Other]. *)
val labeled : ?negatives:int -> ?seed:int -> unit -> (Nf_lang.Ast.element * label) list
