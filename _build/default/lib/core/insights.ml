(** Offloading-insight reports — the tool's user-facing output (Figure 2c).

    An insight bundle collects everything Clara derived for one NF and a
    workload: predicted performance parameters, accelerator opportunities,
    the suggested scale-out factor, state placement, variable packs, and a
    rendering function producing the report the developer reads. *)

open Nf_lang

type accel_suggestion = { component : string; algorithm : Algo_corpus.label }

type t = {
  nf_name : string;
  workload : string;
  predicted_compute : float;  (** NIC compute instructions per packet path *)
  predicted_memory : float;  (** stateful memory accesses (direct count) *)
  api_calls : string list;
  accel : accel_suggestion list;
  suggested_cores : int option;
  placement : Nicsim.Mem.placement;
  packs : Nicsim.Perf.packs;
}

let render t =
  let b = Buffer.create 512 in
  let addf fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  addf "Clara offloading insights for %s (workload: %s)" t.nf_name t.workload;
  addf "  predicted compute instructions : %.1f" t.predicted_compute;
  addf "  predicted memory accesses      : %.1f" t.predicted_memory;
  addf "  framework API calls            : %s"
    (if t.api_calls = [] then "(none)" else String.concat ", " t.api_calls);
  (match t.accel with
  | [] -> addf "  accelerator opportunities      : none detected"
  | suggestions ->
    List.iter
      (fun s ->
        addf "  accelerator opportunity        : %s implements %s -> use the %s engine"
          s.component
          (Algo_corpus.label_name s.algorithm)
          (Algo_corpus.label_name s.algorithm))
      suggestions);
  (match t.suggested_cores with
  | Some c -> addf "  suggested scale-out            : %d cores" c
  | None -> addf "  suggested scale-out            : (no model)");
  (match t.placement with
  | [] -> addf "  state placement                : stateless NF"
  | p ->
    List.iter
      (fun (s, level) ->
        addf "  place %-24s -> %s" s (Nicsim.Mem.level_name level))
      p);
  (match t.packs with
  | [] -> addf "  memory coalescing              : no packs suggested"
  | packs ->
    List.iter
      (fun pack -> addf "  coalesce pack                  : {%s}" (String.concat ", " pack))
      packs);
  Buffer.contents b

(** Accelerated-API rewrite suggestions implied by detected algorithms. *)
let accel_apis t =
  List.concat_map
    (fun s ->
      match s.algorithm with
      | Algo_corpus.Crc -> [ "crc32_payload"; "crc16_payload" ]
      | Algo_corpus.Lpm -> [ "lpm_lookup"; "flow_cache_lookup" ]
      | Algo_corpus.Checksum -> [ "checksum_ip"; "checksum_update_ip" ]
      | Algo_corpus.Other -> [])
    t.accel
  |> List.sort_uniq compare

(** The porting configuration that applies every insight in the bundle. *)
let to_port_config t : Nicsim.Nic.port_config =
  {
    Nicsim.Nic.accel_apis = accel_apis t;
    placement = (match t.placement with [] -> None | p -> Some p);
    packs = t.packs;
  }

let summary t elt =
  Printf.sprintf "%s: %d state structures, %d accel suggestions, %s"
    t.nf_name
    (List.length elt.Ast.state)
    (List.length t.accel)
    (match t.suggested_cores with Some c -> Printf.sprintf "%d cores" c | None -> "cores n/a")
