(** Partial offloading analysis (§6 extension).

    Enumerates deployment plans for an NF — full NIC offload, host-only,
    and every state-disjoint split of the handler — prices each with the
    NIC simulator, a BOLT-style x86 host model and a PCIe link model, and
    recommends where the NF (or which half) should run. *)

(** x86 host cost model. *)
type host_model = {
  freq_mhz : float;
  cores : int;  (** cores budgeted for NF work *)
  ipc : float;  (** sustained instructions per cycle *)
  dram_cycles : float;  (** cache-filtered stateful access cost *)
  api_call_cycles : float;  (** cheap framework calls (header accessors etc.) *)
}

(** One quad-core 3.4 GHz Xeon socket, as in the paper's testbed. *)
val default_host : host_model

(** PCIe link between host and NIC. *)
type link_model = {
  crossing_us : float;  (** one-way DMA + doorbell latency *)
  link_gbps : float;
  max_mpps : float;  (** small-packet DMA descriptor limit *)
}

val default_link : link_model

(** Packet-rate cap of the link for a given wire size. *)
val link_cap_mpps : link_model -> wire_bytes:int -> float

(** Host-side per-packet cost in cycles, from the element's lowered IR
    with class-aware API costs (checksums dominate, data structures pay
    pointer chasing). *)
val host_cycles : host_model -> Nf_lang.Ast.element -> float

(** (throughput Mpps, latency us) of an element on the host alone. *)
val host_point : host_model -> Nf_lang.Ast.element -> float * float

(** Stateful structures referenced by an expression / statement / list. *)
val expr_globals : Nf_lang.Ast.expr -> string list

val deep_globals : Nf_lang.Ast.stmt -> string list
val globals_of : Nf_lang.Ast.stmt list -> string list

(** A deployment plan. *)
type plan =
  | Full_nic
  | Full_host
  | Split of int  (** first [k] top-level statements on the NIC, rest on host *)

val plan_name : plan -> string

type evaluation = {
  plan : plan;
  throughput_mpps : float;
  latency_us : float;
  nic_cores : int;  (** NIC cores used (0 for host-only) *)
}

(** Slice an element to a statement subset, keeping only the state it
    uses. *)
val sub_element :
  Nf_lang.Ast.element -> Nf_lang.Ast.stmt list -> string -> string list -> Nf_lang.Ast.element

(** Price one plan; [None] when the plan is unsound (shared state across
    PCIe, control flow crossing the split, or out-of-range split point). *)
val evaluate :
  ?host:host_model ->
  ?link:link_model ->
  Nf_lang.Ast.element ->
  Workload.spec ->
  plan ->
  evaluation option

(** All feasible plans, best first (throughput, then latency on ~ties). *)
val analyze :
  ?host:host_model -> ?link:link_model -> Nf_lang.Ast.element -> Workload.spec -> evaluation list

(** The recommended plan.  @raise Invalid_argument if nothing is feasible. *)
val recommend :
  ?host:host_model -> ?link:link_model -> Nf_lang.Ast.element -> Workload.spec -> evaluation
