(** Memory access coalescing via access-vector clustering (§4.4, Figure 13).

    For each stateful scalar v, Clara builds an access vector over the k
    code blocks: p_i = (accesses to v from block i) / (total accesses to
    v).  Variables with similar access vectors are accessed together, so
    K-means clusters become allocation packs fetched with one coalesced
    access sized to the pack. *)

open Nf_lang

(** Scalars eligible for packing. *)
let scalar_names (elt : Ast.element) =
  List.filter_map
    (fun d -> match d with Ast.Scalar { name; _ } -> Some name | Ast.Array _ | Ast.Map _ | Ast.Vector _ -> None)
    elt.Ast.state

(** The access vector of variable [v] over the code blocks that touch any
    scalar, normalized to a distribution (§4.4's p_i).

    Statement ids are coarsened into code blocks: consecutive statements
    with identical execution counts execute together (one straight-line
    region), so variables touched by the same region share a dimension —
    which is what makes `sport`/`dport`-style co-accessed variables have
    identical vectors. *)
let access_vectors (elt : Ast.element) (profile : Interp.profile) =
  let scalars = scalar_names elt in
  let sids = Hashtbl.create 32 in
  let note tbl =
    Hashtbl.iter
      (fun (g, sid) _ -> if List.mem g scalars then Hashtbl.replace sids sid ())
      tbl
  in
  note profile.Interp.global_reads;
  note profile.Interp.global_writes;
  let sorted = List.sort compare (Hashtbl.fold (fun sid () acc -> sid :: acc) sids []) in
  (* group into blocks: adjacent sids with equal execution counts *)
  let groups =
    List.fold_left
      (fun acc sid ->
        match acc with
        | (last_sid, count, members) :: rest
          when sid - last_sid <= 3 && Interp.stmt_count profile sid = count ->
          (sid, count, sid :: members) :: rest
        | _ -> (sid, Interp.stmt_count profile sid, [ sid ]) :: acc)
      [] sorted
    |> List.rev_map (fun (_, _, members) -> members)
  in
  let vector v =
    let counts =
      List.map
        (fun members ->
          float_of_int
            (List.fold_left (fun acc sid -> acc + Interp.global_accesses_at profile v sid) 0 members))
        groups
    in
    let total = List.fold_left ( +. ) 0.0 counts in
    if total <= 0.0 then None
    else Some (Array.of_list (List.map (fun c -> c /. total) counts))
  in
  List.filter_map (fun v -> Option.map (fun vec -> (v, vec)) (vector v)) scalars

(** Mean silhouette score of a clustering (used to pick k). *)
let silhouette xs assign k =
  let n = Array.length xs in
  if n < 3 || k < 2 then 0.0
  else begin
    let mean_dist i members =
      let ds = List.filter_map (fun j -> if j = i then None else Some (Mlkit.La.euclidean xs.(i) xs.(j))) members in
      match ds with [] -> 0.0 | _ -> List.fold_left ( +. ) 0.0 ds /. float_of_int (List.length ds)
    in
    let clusters = Array.make k [] in
    Array.iteri (fun i c -> clusters.(c) <- i :: clusters.(c)) assign;
    let scores =
      Array.to_list
        (Array.mapi
           (fun i c ->
             let a = mean_dist i clusters.(c) in
             let b = ref infinity in
             Array.iteri
               (fun c' members -> if c' <> c && members <> [] then b := min !b (mean_dist i members))
               clusters;
             if !b = infinity || max a !b = 0.0 then 0.0 else (!b -. a) /. max a !b)
           assign)
    in
    List.fold_left ( +. ) 0.0 scores /. float_of_int n
  end

(** Suggest variable packs for an element under a profile: K-means over
    access vectors with silhouette-selected k; singleton clusters are not
    packs. *)
let suggest (elt : Ast.element) (profile : Interp.profile) : Nicsim.Perf.packs =
  let vectors = access_vectors elt profile in
  let names = Array.of_list (List.map fst vectors) in
  let xs = Array.of_list (List.map snd vectors) in
  let n = Array.length xs in
  if n < 2 then []
  else begin
    let best = ref ([||], neg_infinity) in
    for k = 2 to min 5 (n - 1) do
      let km = Mlkit.Simple.kmeans_fit ~k xs in
      let assign = Array.map (Mlkit.Simple.kmeans_assign km) xs in
      let s = silhouette xs assign (Array.length km.Mlkit.Simple.centroids) in
      if s > snd !best then best := (assign, s)
    done;
    let assign, _ = !best in
    if Array.length assign = 0 then []
    else begin
      let k = 1 + Array.fold_left max 0 assign in
      let packs = Array.make k [] in
      Array.iteri (fun i c -> packs.(c) <- names.(i) :: packs.(c)) assign;
      Array.to_list packs |> List.filter (fun p -> List.length p >= 2) |> List.map List.rev
    end
  end

(** Suggested coalesced access size in bytes for a pack (§4.4: sizes are
    set to match the variable pack). *)
let pack_access_bytes (elt : Ast.element) pack =
  List.fold_left
    (fun acc v ->
      match Ast.find_state elt v with
      | Some (Ast.Scalar { width; _ }) -> acc + max 1 (width / 8)
      | Some (Ast.Array _ | Ast.Map _ | Ast.Vector _) | None -> acc + 4)
    0 pack

(** End-to-end: port naively to profile, cluster, and re-port with packs. *)
let apply (elt : Ast.element) (spec : Workload.spec) =
  let naive = Nicsim.Nic.port elt spec in
  let packs = suggest elt naive.Nicsim.Nic.profile in
  let config = { Nicsim.Nic.naive_port with Nicsim.Nic.packs } in
  (packs, Nicsim.Nic.port ~config elt spec)

(** Expert emulation (§5.8): exhaustively try all partitions of the most
    frequently accessed variables (up to [limit] of them) into packs and
    keep the configuration with the fewest cores-to-saturate. *)
let expert_search ?(limit = 6) (elt : Ast.element) (spec : Workload.spec) =
  let naive = Nicsim.Nic.port elt spec in
  let profile = naive.Nicsim.Nic.profile in
  let by_freq =
    scalar_names elt
    |> List.map (fun v -> (v, Interp.global_accesses profile v))
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  let hot = List.filteri (fun i _ -> i < limit) by_freq |> List.map fst in
  (* enumerate set partitions of [hot] *)
  let rec partitions = function
    | [] -> [ [] ]
    | x :: rest ->
      List.concat_map
        (fun part ->
          (* put x in each existing block, or alone *)
          let with_existing =
            List.mapi
              (fun i _ -> List.mapi (fun j blk -> if i = j then x :: blk else blk) part)
              part
          in
          ([ x ] :: part) :: with_existing)
        (partitions rest)
  in
  let best = ref None in
  List.iter
    (fun partition ->
      let packs = List.filter (fun p -> List.length p >= 2) partition in
      let config = { Nicsim.Nic.naive_port with Nicsim.Nic.packs } in
      let ported = Nicsim.Nic.reconfigure naive config in
      let cores = Nicsim.Multicore.cores_to_saturate ported.Nicsim.Nic.demand in
      let lat = (Nicsim.Nic.peak ported).Nicsim.Multicore.latency_us in
      match !best with
      | Some (_, _, bc, bl) when (bc, bl) <= (cores, lat) -> ()
      | _ -> best := Some (packs, ported, cores, lat))
    (partitions hot);
  match !best with
  | Some (packs, ported, _, _) -> (packs, ported)
  | None -> apply elt spec
