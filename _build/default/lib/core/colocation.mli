(** NF colocation analysis via pairwise ranking (§4.5, Figure 14).

    A LambdaMART ranker is trained over groups of candidate NF pairs with
    the paper's features — per-NF arithmetic intensity, compute counts and
    the intensity ratio — against measured colocation degradation under
    one of four objectives. *)

(** Ranking objectives (§5.7's four trained models). *)
type objective = Total_throughput | Avg_throughput | Total_latency | Avg_latency

val objective_name : objective -> string
val all_objectives : objective list

(** Feature vector of a candidate pair (10 features). *)
val pair_features : Nicsim.Perf.demand -> Nicsim.Perf.demand -> float array

(** Measured degradation of a colocated pair under an objective. *)
val degradation : objective -> Nicsim.Colocate.result -> float

(** Build ranking groups from a demand pool: each group holds
    [group_size] random pairs with relevance = -degradation. *)
val make_groups :
  ?n_groups:int ->
  ?group_size:int ->
  ?seed:int ->
  objective ->
  Nicsim.Perf.demand array ->
  Mlkit.Rank.group list

type t = { objective : objective; ranker : Mlkit.Rank.t }

(** Train the LambdaMART ranker (groups are generated from [demands] if
    not supplied). *)
val train :
  ?groups:Mlkit.Rank.group list -> ?objective:objective -> Nicsim.Perf.demand array -> t

(** Rank candidate pairs best-first; returns indices into the candidate
    list. *)
val rank : t -> (Nicsim.Perf.demand * Nicsim.Perf.demand) list -> int list

(** Fraction of labeled test groups whose truly-best pair lands in the
    ranker's top [k] (the Figure 14a metric). *)
val topk_accuracy : t -> Mlkit.Rank.group list -> int -> float
