(** NF state placement via ILP (§4.3, Figure 12).

    Minimizes total weighted access latency — access frequencies from a
    workload profile, per-level latencies from the memory hierarchy —
    subject to level capacities.  Deliberately ignores per-level
    bandwidth, the source of the small expert-emulation gap the paper
    analyzes in §5.8. *)

(** Levels shared NF state may occupy (per-core LMEM is excluded). *)
val candidate_levels : Nicsim.Mem.level list

(** Measured per-structure accesses per packet under the ported profile. *)
val access_frequencies : Nicsim.Nic.ported -> (string * float) list

(** Solve the placement ILP for an element given its profiled port.
    Falls back to all-EMEM if capacities cannot be satisfied. *)
val solve : Nf_lang.Ast.element -> Nicsim.Nic.ported -> Nicsim.Mem.placement

(** End-to-end: port naively to profile, solve, re-port under the
    suggested placement. *)
val apply :
  Nf_lang.Ast.element -> Workload.spec -> Nicsim.Mem.placement * Nicsim.Nic.ported

(** Expert emulation (§5.8): exhaustively measure every feasible placement
    of the [limit] hottest structures (colder ones keep the ILP answer)
    and return the best-performing one.  Unlike the ILP, the search sees
    bandwidth-aggregation effects. *)
val expert_search :
  ?limit:int ->
  Nf_lang.Ast.element ->
  Workload.spec ->
  Nicsim.Mem.placement * Nicsim.Nic.ported
