(** Algorithm identification for accelerator offloading (§4.1, Figures 7,
    9, 10a).

    Features combine Sequential Pattern Extraction — frequent opcode
    n-grams with high support in positives and high confidence against
    negatives — with the paper's manually-engineered features (bitwise-op
    density for CRC, bounded pointer chasing for LPM).  A linear SVM is
    trained one-vs-rest per accelerator class; inference labels every
    component (loop nest) of an NF. *)

(** The outermost loop statements of a handler, recursing through
    branches. *)
val outermost_loops : Nf_lang.Ast.stmt list -> Nf_lang.Ast.stmt list

(** Analyzable components of an element: [(name, component)] for the whole
    handler plus each outermost loop (accelerator algorithms live in loop
    nests). *)
val components : Nf_lang.Ast.element -> (string * Nf_lang.Ast.element) list

(** The element's flattened opcode-index sequence (lowered IR). *)
val opcode_seq : Nf_lang.Ast.element -> int array

(** Canonical string key of an opcode n-gram. *)
val gram_key : int list -> string

(** Multiset of the [n]-grams of a sequence, keyed by {!gram_key}. *)
val grams_of_seq : int array -> int -> (string, int) Hashtbl.t

(** Mine up to [top] discriminative n-grams: support >= 0.5 among
    positives and confidence >= 0.7 against negatives (§4.1's
    high-support / high-confidence criteria). *)
val mine_grams :
  ?ns:int list ->
  ?top:int ->
  positives:int array list ->
  negatives:int array list ->
  unit ->
  (string * int) list

(** The hand-crafted feature vector: bitop/shift/load/add/compare
    densities, the pointer-chase flag, and loop-nest depth. *)
val manual_features : Nf_lang.Ast.element -> float array

(** One per-class one-vs-rest model. *)
type model = {
  label : Algo_corpus.label;
  grams : (string * int) list;  (** selected (gram key, n) features *)
  svm : Mlkit.Simple.svm;
}

(** Which feature families to use — [`Both] is Clara; the others exist for
    the feature-ablation experiment. *)
type feature_mode = [ `Both | `Manual_only | `Spe_only ]

type t = { models : model list; mode : feature_mode }

(** Feature vector of an element against a gram set. *)
val feature_vector :
  ?mode:feature_mode -> (string * int) list -> Nf_lang.Ast.element -> float array

(** Train the per-class SVMs.  The corpus is expanded to component level so
    training matches what {!detect} classifies. *)
val train :
  ?mode:feature_mode ->
  ?corpus:(Nf_lang.Ast.element * Algo_corpus.label) list ->
  unit ->
  t

(** Label one element/component: the accelerator whose SVM fires with the
    highest margin, or [Other]. *)
val classify : t -> Nf_lang.Ast.element -> Algo_corpus.label

(** Scan a full NF: every component with a detected accelerator algorithm,
    as [(component name, label)]. *)
val detect : t -> Nf_lang.Ast.element -> (string * Algo_corpus.label) list

(** Feature vector against a given class model — the Figure 10a PCA input. *)
val class_features : t -> Algo_corpus.label -> Nf_lang.Ast.element -> float array
