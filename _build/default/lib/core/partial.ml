(** Partial offloading analysis — the paper's §6 extension.

    "A partial offloading scenario might split the NF program between host
    CPUs and SmartNICs [52, 58].  In order to handle such scenarios, Clara
    would also need to reason about the communication between SmartNICs
    and the host, and borrow from work in host performance analysis."

    This module implements that reasoning: it enumerates top-level split
    points of an NF handler, models the host half with a BOLT-style x86
    cost model, charges the PCIe crossing, and recommends full-NIC,
    full-host, or a split.  A split is valid only when no stateful
    structure is touched on both sides (shared state across PCIe would
    need coherence traffic the model deliberately refuses to hide). *)

open Nf_lang

(* -- host (x86) cost model -- *)

type host_model = {
  freq_mhz : float;
  cores : int;
  ipc : float;  (** sustained instructions per cycle *)
  dram_cycles : float;  (** effective stateful access cost, cache-filtered *)
  api_call_cycles : float;
}

(** A slice of the paper's testbed: six quad-core 3.4GHz Xeons; we assume
    one quad-core socket is budgeted for NF work. *)
let default_host = { freq_mhz = 3400.0; cores = 4; ipc = 2.0; dram_cycles = 24.0; api_call_cycles = 25.0 }

(* -- PCIe link between host and NIC -- *)

type link_model = {
  crossing_us : float;  (** one-way DMA + doorbell latency *)
  link_gbps : float;
  max_mpps : float;  (** small-packet DMA descriptor limit *)
}

let default_link = { crossing_us = 0.9; link_gbps = 63.0; max_mpps = 45.0 }

let link_cap_mpps link ~wire_bytes =
  min link.max_mpps (link.link_gbps *. 1000.0 /. (8.0 *. float_of_int wire_bytes))

(** Host-side per-packet cost (cycles) of an element, from its lowered IR:
    compute/stateless instructions stream through the pipeline at [ipc];
    stateful accesses pay the cache-filtered DRAM cost; framework calls
    are native Click code with a fixed overhead. *)
let host_cycles (host : host_model) (elt : Ast.element) =
  let ir = Nf_frontend.Lower.lower_element elt in
  let instrs = float_of_int (Nf_ir.Ir.count_total ir) in
  let stateful = float_of_int (Nf_ir.Ir.count_stateful_mem ir) in
  (* per-call cost by API class: byte-streaming checksums dominate, data
     structures pay pointer chasing, header accessors are nearly free *)
  let api_cost =
    Nf_ir.Ir.fold_instrs
      (fun acc (i : Nf_ir.Ir.instr) ->
        match (i.Nf_ir.Ir.op, i.Nf_ir.Ir.annot) with
        | Nf_ir.Ir.Call name, Nf_ir.Ir.Api _ -> (
          let base =
            match String.index_opt name '.' with
            | Some k -> String.sub name 0 k
            | None -> name
          in
          match Nf_lang.Api.classify base with
          | Nf_lang.Api.Checksum -> acc +. 250.0
          | Nf_lang.Api.Data_structure -> acc +. 60.0
          | Nf_lang.Api.Header_accessor | Nf_lang.Api.Pure_helper | Nf_lang.Api.Packet_io ->
            acc +. host.api_call_cycles)
        | _ -> acc)
      0.0 ir
  in
  (instrs /. host.ipc) +. (stateful *. host.dram_cycles) +. api_cost

let host_point (host : host_model) (elt : Ast.element) =
  let cycles = host_cycles host elt in
  let th = float_of_int host.cores *. host.freq_mhz /. cycles in
  let lat = cycles /. host.freq_mhz in
  (th, lat)

(* -- split enumeration -- *)

let rec expr_globals (e : Ast.expr) =
  match e with
  | Ast.Global g -> [ g ]
  | Ast.Arr_get (g, idx) -> g :: expr_globals idx
  | Ast.Vec_len g -> [ g ]
  | Ast.Bin (_, a, b) | Ast.Cmp (_, a, b) | Ast.And_also (a, b) | Ast.Or_else (a, b) ->
    expr_globals a @ expr_globals b
  | Ast.Not a | Ast.Payload_byte a -> expr_globals a
  | Ast.Api_expr (_, args) -> List.concat_map expr_globals args
  | Ast.Int _ | Ast.Local _ | Ast.Hdr _ | Ast.Packet_len -> []

(** Every stateful structure a statement subtree touches. *)
let rec deep_globals (s : Ast.stmt) =
  let sub =
    match s.Ast.node with
    | Ast.If (c, t, f) -> expr_globals c @ List.concat_map deep_globals (t @ f)
    | Ast.While (c, b) -> expr_globals c @ List.concat_map deep_globals b
    | Ast.For (_, lo, hi, b) ->
      expr_globals lo @ expr_globals hi @ List.concat_map deep_globals b
    | Ast.Map_find (g, keys, _) -> g :: List.concat_map expr_globals keys
    | Ast.Map_read (g, _, _) | Ast.Map_erase g -> [ g ]
    | Ast.Map_write (g, _, e) -> g :: expr_globals e
    | Ast.Map_insert (g, keys, vals) -> g :: List.concat_map expr_globals (keys @ vals)
    | Ast.Vec_append (g, e) -> g :: expr_globals e
    | Ast.Vec_get (g, e, _) -> g :: expr_globals e
    | Ast.Vec_set (g, a, b) -> g :: expr_globals a @ expr_globals b
    | Ast.Arr_set (g, a, b) -> g :: expr_globals a @ expr_globals b
    | Ast.Set_global (g, e) -> g :: expr_globals e
    | Ast.Let (_, e) | Ast.Set_hdr (_, e) -> expr_globals e
    | Ast.Set_payload (a, b) -> expr_globals a @ expr_globals b
    | Ast.Api_stmt (_, args) -> List.concat_map expr_globals args
    | Ast.Emit _ | Ast.Drop | Ast.Call_sub _ | Ast.Return -> []
  in
  List.sort_uniq compare sub

let globals_of stmts = List.sort_uniq compare (List.concat_map deep_globals stmts)

(** A deployment plan for an NF. *)
type plan =
  | Full_nic
  | Full_host
  | Split of int  (** first [k] top-level statements on the NIC, rest on host *)

let plan_name = function
  | Full_nic -> "full NIC offload"
  | Full_host -> "host only"
  | Split k -> Printf.sprintf "split after statement %d (NIC prefix + host suffix)" k

type evaluation = {
  plan : plan;
  throughput_mpps : float;
  latency_us : float;
  nic_cores : int;  (** NIC cores used (0 for host-only) *)
}

let sub_element (elt : Ast.element) stmts suffix used =
  let state = List.filter (fun d -> List.mem (Ast.state_name d) used) elt.Ast.state in
  { elt with Ast.name = elt.Ast.name ^ suffix; Ast.handler = stmts; Ast.state = state }

(** Evaluate a plan under a workload. *)
let evaluate ?(host = default_host) ?(link = default_link) (elt : Ast.element)
    (spec : Workload.spec) (plan : plan) : evaluation option =
  let wire_bytes = 54 + spec.Workload.payload_len in
  (* every plan's traffic still enters through the NIC's port *)
  let wire_cap =
    Nicsim.Multicore.default_nic.Nicsim.Multicore.wire_gbps *. 1000.0
    /. (8.0 *. float_of_int (wire_bytes + 20))
  in
  let link_cap = min (link_cap_mpps link ~wire_bytes) wire_cap in
  match plan with
  | Full_nic ->
    let ported = Nicsim.Nic.port elt spec in
    let peak = Nicsim.Nic.peak ported in
    Some
      {
        plan;
        throughput_mpps = peak.Nicsim.Multicore.throughput_mpps;
        latency_us = peak.Nicsim.Multicore.latency_us;
        nic_cores = peak.Nicsim.Multicore.cores;
      }
  | Full_host ->
    let th, lat = host_point host elt in
    (* packets must cross PCIe down and up *)
    Some
      {
        plan;
        throughput_mpps = min th link_cap;
        latency_us = lat +. (2.0 *. link.crossing_us);
        nic_cores = 0;
      }
  | Split k ->
    let n = List.length elt.Ast.handler in
    if k <= 0 || k >= n then None
    else begin
      let prefix = List.filteri (fun i _ -> i < k) elt.Ast.handler in
      let suffix = List.filteri (fun i _ -> i >= k) elt.Ast.handler in
      let g_pre = globals_of prefix and g_suf = globals_of suffix in
      let shared = List.filter (fun g -> List.mem g g_suf) g_pre in
      (* a Return in the prefix would skip the host half; subroutine calls
         may touch state on either side — both make the split unsound *)
      let has_control (s : Ast.stmt) =
        match s.Ast.node with Ast.Return | Ast.Call_sub _ -> true | _ -> false
      in
      if shared <> [] || List.exists has_control prefix then None
      else begin
        let nic_elt =
          sub_element elt (prefix @ [ Build.emit 0 ]) "_nic_half" g_pre
        in
        let host_elt = sub_element elt suffix "_host_half" g_suf in
        match Nicsim.Nic.port nic_elt spec with
        | exception _ -> None
        | ported ->
          let peak = Nicsim.Nic.peak ported in
          let host_th, host_lat = host_point host host_elt in
          Some
            {
              plan;
              throughput_mpps =
                min peak.Nicsim.Multicore.throughput_mpps (min host_th link_cap);
              latency_us =
                peak.Nicsim.Multicore.latency_us +. link.crossing_us +. host_lat;
              nic_cores = peak.Nicsim.Multicore.cores;
            }
      end
    end

(** Enumerate all plans and return them best-throughput-first (latency
    breaks ties). *)
let analyze ?(host = default_host) ?(link = default_link) (elt : Ast.element)
    (spec : Workload.spec) : evaluation list =
  let n = List.length elt.Ast.handler in
  let plans = Full_nic :: Full_host :: List.init (max 0 (n - 1)) (fun k -> Split (k + 1)) in
  let evals = List.filter_map (evaluate ~host ~link elt spec) plans in
  List.sort
    (fun a b ->
      (* throughputs within 0.5% are a tie; latency then decides *)
      if
        abs_float (a.throughput_mpps -. b.throughput_mpps)
        <= 0.005 *. max a.throughput_mpps b.throughput_mpps
      then compare a.latency_us b.latency_us
      else compare b.throughput_mpps a.throughput_mpps)
    evals

(** The recommended plan. *)
let recommend ?host ?link elt spec =
  match analyze ?host ?link elt spec with
  | best :: _ -> best
  | [] -> invalid_arg "Partial.recommend: no feasible plan"
