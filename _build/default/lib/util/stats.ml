(** Descriptive statistics and histogram utilities shared across the
    simulator, the ML toolkit and the experiment harness. *)

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    acc /. float_of_int (n - 1)

let stddev xs = sqrt (variance xs)

(** [percentile p xs] with linear interpolation; [p] in [\[0,100\]]. *)
let percentile p xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let w = rank -. float_of_int lo in
    ((1.0 -. w) *. sorted.(lo)) +. (w *. sorted.(hi))

let median xs = percentile 50.0 xs

let min_arr xs = Array.fold_left min xs.(0) xs
let max_arr xs = Array.fold_left max xs.(0) xs

let argmax xs =
  let best = ref 0 in
  Array.iteri (fun i x -> if x > xs.(!best) then best := i) xs;
  !best

let argmin xs =
  let best = ref 0 in
  Array.iteri (fun i x -> if x < xs.(!best) then best := i) xs;
  !best

let sum xs = Array.fold_left ( +. ) 0.0 xs

(** Normalize a non-negative array into a probability distribution.  A zero
    array maps to the uniform distribution. *)
let normalize xs =
  let total = sum xs in
  let n = Array.length xs in
  if total <= 0.0 then Array.make n (1.0 /. float_of_int n)
  else Array.map (fun x -> x /. total) xs

(** Frequency table over integer-keyed observations in [\[0, card)]. *)
let histogram ~card observations =
  let h = Array.make card 0.0 in
  List.iter
    (fun k ->
      if k < 0 || k >= card then invalid_arg "Stats.histogram: out of range";
      h.(k) <- h.(k) +. 1.0)
    observations;
  h

(** Pearson correlation coefficient. *)
let correlation xs ys =
  let n = Array.length xs in
  if n <> Array.length ys || n < 2 then invalid_arg "Stats.correlation";
  let mx = mean xs and my = mean ys in
  let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxy := !sxy +. (dx *. dy);
    sxx := !sxx +. (dx *. dx);
    syy := !syy +. (dy *. dy)
  done;
  if !sxx = 0.0 || !syy = 0.0 then 0.0 else !sxy /. sqrt (!sxx *. !syy)
