(** Plain-text table rendering: every experiment prints its paper
    table/figure through this module so output is uniform. *)

type align = Left | Right

(** Pad each column to its widest cell; a dash separator follows the
    header. *)
val render : ?align:align -> header:string list -> string list list -> string

val print : ?align:align -> header:string list -> string list list -> unit

val fmt_f1 : float -> string
val fmt_f2 : float -> string
val fmt_f3 : float -> string
val fmt_f4 : float -> string
val fmt_pct : float -> string

(** Section banner between experiments in bench output. *)
val banner : string -> unit
