(** Distribution distance metrics for the data-synthesis evaluation
    (Table 1).  Inputs are normalized defensively with additive (Laplace)
    smoothing so support mismatches don't blow up unbounded divergences. *)

val smooth_normalize : float array -> float array
val kl_divergence : float array -> float array -> float

(** Jensen-Shannon divergence (base e, bounded by ln 2); symmetric. *)
val jensen_shannon : float array -> float array -> float

(** Renyi divergence of order [alpha] (default 2).
    @raise Invalid_argument for alpha <= 0 or alpha = 1. *)
val renyi : ?alpha:float -> float array -> float array -> float

val bhattacharyya : float array -> float array -> float

(** Cosine distance (1 - cosine similarity). *)
val cosine : float array -> float array -> float

val euclidean : float array -> float array -> float

(** Total variation scaled as in the paper's table (sum of absolute
    differences). *)
val variational : float array -> float array -> float

(** All six Table-1 metrics as (name, value) pairs. *)
val all : float array -> float array -> (string * float) list
