(** Descriptive statistics and histogram utilities shared across the
    simulator, ML toolkit and experiment harness. *)

val mean : float array -> float

(** Sample variance (n-1 denominator); 0 for fewer than two points. *)
val variance : float array -> float

val stddev : float array -> float

(** Percentile with linear interpolation; [p] in [0,100].
    @raise Invalid_argument on an empty array. *)
val percentile : float -> float array -> float

val median : float array -> float
val min_arr : float array -> float
val max_arr : float array -> float

(** Index of the maximum (first winner on ties). *)
val argmax : float array -> int

val argmin : float array -> int
val sum : float array -> float

(** Normalize a non-negative array into a distribution; an all-zero array
    maps to uniform. *)
val normalize : float array -> float array

(** Frequency table over integer observations in [0, card).
    @raise Invalid_argument on out-of-range keys. *)
val histogram : card:int -> int list -> float array

(** Pearson correlation.  @raise Invalid_argument on mismatched or short
    inputs. *)
val correlation : float array -> float array -> float
