(** Deterministic, splittable pseudo-random number generator (splitmix64).
    All randomness in the repository flows through this module so every
    experiment is reproducible from a single integer seed. *)

type t

val create : int -> t

(** Advance and return the next mixed 64-bit value. *)
val next_int64 : t -> int64

(** Fork an independent generator; the parent stream advances once. *)
val split : t -> t

(** Uniform integer in [0, bound).
    @raise Invalid_argument unless bound > 0. *)
val int : t -> int -> int

(** Uniform float in [0, 1). *)
val float : t -> float

val float_range : t -> float -> float -> float

(** Standard normal via Box-Muller. *)
val gaussian : t -> float

val bool : t -> bool

(** Bernoulli trial with probability [p]. *)
val bernoulli : t -> float -> bool

(** Uniform element of a non-empty list. *)
val choose : t -> 'a list -> 'a

(** Index sampled proportionally to non-negative [weights].
    @raise Invalid_argument when no weight is positive. *)
val weighted_index : t -> float array -> int

(** Value sampled from weighted (weight, value) choices. *)
val weighted_choose : t -> (float * 'a) list -> 'a

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit

(** [k] distinct indices from [0, n). *)
val sample_without_replacement : t -> int -> int -> int array
