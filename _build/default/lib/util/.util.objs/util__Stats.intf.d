lib/util/stats.mli:
