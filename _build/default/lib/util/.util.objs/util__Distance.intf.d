lib/util/distance.mli:
