lib/util/rng.mli:
