lib/util/distance.ml: Array Stats
