lib/util/table.mli:
