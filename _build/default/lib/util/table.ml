(** Plain-text table rendering for the benchmark harness.  Every experiment
    prints its paper table/figure as rows through this module so the output
    format is uniform. *)

type align = Left | Right

(** [render ~header rows] pads each column to its widest cell. *)
let render ?(align = Right) ~header rows =
  let all_rows = header :: rows in
  let cols = List.fold_left (fun m r -> max m (List.length r)) 0 all_rows in
  let widths = Array.make cols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all_rows;
  let pad i cell =
    let w = widths.(i) in
    let n = w - String.length cell in
    match align with
    | Left -> cell ^ String.make n ' '
    | Right -> String.make n ' ' ^ cell
  in
  let line row = String.concat "  " (List.mapi pad row) in
  let sep = String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths)) in
  String.concat "\n" (line header :: sep :: List.map line rows)

let print ?align ~header rows = print_endline (render ?align ~header rows)

let fmt_f1 x = Printf.sprintf "%.1f" x
let fmt_f2 x = Printf.sprintf "%.2f" x
let fmt_f3 x = Printf.sprintf "%.3f" x
let fmt_f4 x = Printf.sprintf "%.4f" x
let fmt_pct x = Printf.sprintf "%.1f%%" x

(** Section banner used between experiments in bench output. *)
let banner title =
  let bar = String.make (String.length title + 8) '=' in
  Printf.printf "\n%s\n=== %s ===\n%s\n" bar title bar
