(** Distribution distance metrics used by the data-synthesis evaluation
    (paper Table 1).  All functions take two discrete distributions of the
    same cardinality; inputs are normalized defensively. *)

(** Normalize with additive (Laplace) smoothing so support mismatches do
    not blow up the unbounded divergences (Renyi, KL). *)
let smooth_normalize xs =
  let p = Stats.normalize xs in
  let n = float_of_int (Array.length p) in
  let lambda = 1e-3 in
  Array.map (fun v -> (v +. (lambda /. n)) /. (1.0 +. lambda)) p

let check p q =
  if Array.length p <> Array.length q then invalid_arg "Distance: cardinality mismatch";
  (smooth_normalize p, smooth_normalize q)

let epsilon = 1e-12

let kl_divergence p q =
  let p, q = check p q in
  let acc = ref 0.0 in
  Array.iteri
    (fun i pi -> if pi > 0.0 then acc := !acc +. (pi *. log (pi /. max epsilon q.(i))))
    p;
  !acc

(** Jensen-Shannon divergence (base e, bounded by ln 2). *)
let jensen_shannon p q =
  let p, q = check p q in
  let m = Array.mapi (fun i pi -> 0.5 *. (pi +. q.(i))) p in
  (0.5 *. kl_divergence p m) +. (0.5 *. kl_divergence q m)

(** Rényi divergence of order [alpha] (default 2). *)
let renyi ?(alpha = 2.0) p q =
  if alpha <= 0.0 || alpha = 1.0 then invalid_arg "Distance.renyi: alpha";
  let p, q = check p q in
  let acc = ref 0.0 in
  Array.iteri
    (fun i pi ->
      if pi > 0.0 then
        acc := !acc +. ((pi ** alpha) *. (max epsilon q.(i) ** (1.0 -. alpha))))
    p;
  log (max epsilon !acc) /. (alpha -. 1.0)

let bhattacharyya p q =
  let p, q = check p q in
  let bc = ref 0.0 in
  Array.iteri (fun i pi -> bc := !bc +. sqrt (pi *. q.(i))) p;
  -.log (max epsilon (min 1.0 !bc))

let cosine p q =
  let p, q = check p q in
  let dot = ref 0.0 and np = ref 0.0 and nq = ref 0.0 in
  Array.iteri
    (fun i pi ->
      dot := !dot +. (pi *. q.(i));
      np := !np +. (pi *. pi);
      nq := !nq +. (q.(i) *. q.(i)))
    p;
  if !np = 0.0 || !nq = 0.0 then 1.0 else 1.0 -. (!dot /. (sqrt !np *. sqrt !nq))

let euclidean p q =
  let p, q = check p q in
  let acc = ref 0.0 in
  Array.iteri
    (fun i pi ->
      let d = pi -. q.(i) in
      acc := !acc +. (d *. d))
    p;
  sqrt !acc

(** Total variation distance scaled as in the paper's table (sum of absolute
    differences, i.e. twice the usual TV). *)
let variational p q =
  let p, q = check p q in
  let acc = ref 0.0 in
  Array.iteri (fun i pi -> acc := !acc +. abs_float (pi -. q.(i))) p;
  !acc

(** All six Table-1 metrics as (name, value) pairs. *)
let all p q =
  [ ("Jensen-Shannon divergence", jensen_shannon p q);
    ("Renyi divergence", renyi p q);
    ("Bhattacharyya distance", bhattacharyya p q);
    ("Cosine distance", cosine p q);
    ("Euclidean distance", euclidean p q);
    ("Variational distance", variational p q) ]
