(** SmartNIC platform profiles (§6 "Other SmartNICs"): core complexes and
    memory fabrics of SoC-SmartNIC families, for the portability study. *)

type t = { name : string; nic : Multicore.nic; hw : Multicore.hw }

(** The paper's testbed: 60 wimpy 1.2 GHz cores, deep software-managed
    hierarchy. *)
val agilio : t

(** Few beefy ARM cores on a 100G port. *)
val bluefield_like : t

(** A middle ground: 36 cores at 1.8 GHz. *)
val liquidio_like : t

val all : t list

(** Measure a demand on a profile. *)
val measure : t -> Perf.demand -> cores:int -> Multicore.point

(** The profile-specific knee. *)
val optimal_cores : t -> Perf.demand -> int

(** Peak point across the profile's core range. *)
val peak : t -> Perf.demand -> Multicore.point
