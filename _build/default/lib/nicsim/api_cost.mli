(** Cost derivation for framework API calls via their reverse-ported
    implementations (§3.3): each implementation is compiled with NFCC-sim
    and its issue cycles / memory references become the per-call cost —
    the same no-learning mechanism the paper uses for framework calls. *)

(** Aggregated cost of one straight-line IR fragment. *)
type part = {
  cycles : float;  (** core issue cycles (compute + memory commands) *)
  mem : (string * float) list;  (** stateful accesses per structure *)
  local_mem : float;  (** LMEM (spill) accesses *)
}

val zero_part : part

(** Compiled cost profile of one API implementation: a fixed part plus an
    optional per-unit (per probe / per byte / per word) part. *)
type profile = {
  impl : Nf_frontend.Api_ir.impl;
  fixed : part;
  per_unit : part;  (** zero when the API has no loop *)
}

(** Cost of an instruction list. *)
val part_of_instrs : Isa.instr list -> part

(** Compile an IR fragment and cost it. *)
val part_of_func : Nf_ir.Ir.func -> part

(** Compile both halves of an implementation. *)
val profile_of_impl : Nf_frontend.Api_ir.impl -> profile

(** Runtime loop-unit count of an API under a workload/profile (map probe
    averages, payload lengths, fixed word counts). *)
val units_of :
  Nf_frontend.Api_ir.unit_source -> Nf_lang.Interp.profile -> Workload.spec -> float

(** Full per-call cost: fixed + units * per_unit. *)
val call_cost : profile -> Nf_lang.Interp.profile -> Workload.spec -> part
