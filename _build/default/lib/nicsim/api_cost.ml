(** Cost derivation for framework API calls via their reverse-ported
    implementations (§3.3).

    Each {!Nf_frontend.Api_ir.impl} is compiled with NFCC-sim; its issue
    cycles and memory references become the per-call cost profile.  Clara
    uses exactly the same mechanism (machine code compiled from the
    SmartNIC compiler directly, no learning), so ground truth and analysis
    agree by construction for framework calls, as in the paper. *)

(** Aggregated cost of one straight-line IR fragment. *)
type part = {
  cycles : float;  (** core issue cycles (compute + command formation) *)
  mem : (string * float) list;  (** stateful accesses per structure *)
  local_mem : float;  (** LMEM (spill) accesses *)
}

let zero_part = { cycles = 0.0; mem = []; local_mem = 0.0 }

type profile = {
  impl : Nf_frontend.Api_ir.impl;
  fixed : part;
  per_unit : part;  (** zero when the API has no loop *)
}

let part_of_instrs (instrs : Isa.instr list) =
  let cycles = List.fold_left (fun acc i -> acc +. float_of_int (Isa.issue_cycles i)) 0.0 instrs in
  let tbl = Hashtbl.create 4 in
  let local = ref 0.0 in
  List.iter
    (fun i ->
      match Isa.mem_target i with
      | Some g -> Hashtbl.replace tbl g (1.0 +. Option.value ~default:0.0 (Hashtbl.find_opt tbl g))
      | None -> if Isa.is_local_mem i then local := !local +. 1.0)
    instrs;
  { cycles; mem = Hashtbl.fold (fun g n acc -> (g, n) :: acc) tbl []; local_mem = !local }

let part_of_func f =
  let compiled = Nfcc.compile f in
  part_of_instrs (Nfcc.all_instrs compiled)

let profile_of_impl (impl : Nf_frontend.Api_ir.impl) =
  {
    impl;
    fixed = part_of_func impl.Nf_frontend.Api_ir.fixed;
    per_unit =
      (match impl.Nf_frontend.Api_ir.per_unit with
      | Some f -> part_of_func f
      | None -> zero_part);
  }

(** Number of loop units for this API under a concrete workload/profile. *)
let units_of profile_src (interp_profile : Nf_lang.Interp.profile) (spec : Workload.spec) =
  match profile_src with
  | Nf_frontend.Api_ir.No_units -> 0.0
  | Nf_frontend.Api_ir.Map_probes map -> Nf_lang.Interp.mean_probes interp_profile map
  | Nf_frontend.Api_ir.Payload_bytes -> float_of_int spec.Workload.payload_len
  | Nf_frontend.Api_ir.Header_words k -> float_of_int k

(** Full per-call cost: fixed + units * per_unit. *)
let call_cost (p : profile) interp_profile spec =
  let u = units_of p.impl.Nf_frontend.Api_ir.units interp_profile spec in
  let scale_mem m = List.map (fun (g, n) -> (g, n *. u)) m in
  {
    cycles = p.fixed.cycles +. (u *. p.per_unit.cycles);
    mem = p.fixed.mem @ scale_mem p.per_unit.mem;
    local_mem = p.fixed.local_mem +. (u *. p.per_unit.local_mem);
  }
