(** Multicore run-to-completion performance model (§4.2).

    Shared memory levels and engines are open queues; throughput is the
    unique fixed point of [t = min(cores/s(t), wire, caps)] (solved by
    bisection, so it is monotone in cores), while latency follows the
    *offered* load — past saturation, Little's law makes per-packet
    latency climb with every extra core while throughput plateaus,
    producing Figure 11's knees. *)

(** Core complex and port of a SmartNIC. *)
type nic = { n_cores : int; freq_mhz : float; wire_gbps : float }

(** Netronome Agilio CX-like: 60 wimpy 1.2 GHz cores on a 40 Gbps port. *)
val default_nic : nic

(** Memory-fabric parameters of a SmartNIC family (§6 portability).
    Bandwidths in accesses/cycle; [lat_scale] multiplies base latencies. *)
type hw = {
  hw_name : string;
  cls_bw : float;
  ctm_bw : float;
  imem_bw : float;
  emem_cache_bw : float;
  emem_dram_bw : float;
  lat_scale : float;
}

val agilio_hw : hw

(** One operating point. *)
type point = { cores : int; throughput_mpps : float; latency_us : float }

(** Utilization ceiling keeping the queueing law finite. *)
val rho_cap : float

(** Aggregate bandwidth of a level; EMEM blends cache and DRAM by hit
    ratio. *)
val level_bandwidth : ?hw:hw -> emem_hit:float -> Mem.level -> float

(** Unloaded latency of a level under a hardware profile. *)
val level_base_latency : ?hw:hw -> emem_hit:float -> Mem.level -> float

(** Line rate in packets per core-cycle for a wire size. *)
val wire_limit : nic -> wire_bytes:int -> float

(** M/M/1-style queueing delay at a resource. *)
val queue_delay : bandwidth:float -> rho:float -> float

(** Service time (cycles/packet) under given per-level and per-engine
    queueing delays. *)
val service_time :
  ?hw:hw -> Perf.demand -> float array -> (Accel.engine * float) list -> float

(** Hard throughput ceiling from resource bandwidths (packets/cycle). *)
val bandwidth_cap : ?hw:hw -> Perf.demand -> float

(** Queue state at a driving rate; fills [q_levels], returns engine
    queues. *)
val queues_at :
  ?hw:hw ->
  Perf.demand ->
  float ->
  float array ->
  (Accel.engine * float) list ->
  (Accel.engine * float) list

(** Solve the contention fixed point: (throughput pkts/cycle, latency
    cycles). *)
val solve : ?hw:hw -> nic -> Perf.demand -> cores:int -> float * float

(** Measure one operating point. *)
val measure : ?hw:hw -> ?nic:nic -> Perf.demand -> cores:int -> point

(** All operating points, 1..n_cores. *)
val sweep : ?hw:hw -> ?nic:nic -> Perf.demand -> point list

(** The knee: the smallest core count within 1% of the best
    throughput/latency ratio (§4.2's operating-point criterion). *)
val optimal_cores : ?hw:hw -> ?nic:nic -> Perf.demand -> int

(** Minimum cores reaching [fraction] of the sweep's peak throughput
    (Figure 13's saturation metric). *)
val cores_to_saturate : ?hw:hw -> ?nic:nic -> ?fraction:float -> Perf.demand -> int
