(** SmartNIC platform profiles (§6 "Other SmartNICs").

    The paper's techniques target SoC SmartNICs with explicit ISAs:
    Netronome Agilio (the prototype), Nvidia BlueField, Marvell LiquidIO,
    Broadcom Stingray, Fungible DPUs, Pensando DSCs.  Each profile pairs a
    core complex ({!Multicore.nic}) with a memory fabric
    ({!Multicore.hw}); the knee positions and accelerator payoffs shift
    accordingly, which the portability experiment demonstrates. *)

type t = { name : string; nic : Multicore.nic; hw : Multicore.hw }

(** The paper's testbed: many wimpy cores, deep software-managed
    hierarchy. *)
let agilio =
  {
    name = "Netronome Agilio CX (60x 1.2GHz)";
    nic = Multicore.default_nic;
    hw = Multicore.agilio_hw;
  }

(** BlueField-like: few beefy ARM cores on a 100G port; the fast clock
    makes memory look slower in cycles, but coherent caches give more
    bandwidth per cycle of DRAM. *)
let bluefield_like =
  {
    name = "BlueField-like (8x 2.5GHz)";
    nic = { Multicore.n_cores = 8; freq_mhz = 2500.0; wire_gbps = 100.0 };
    hw =
      {
        Multicore.hw_name = "bluefield-like";
        cls_bw = 0.8;
        ctm_bw = 0.9;
        imem_bw = 1.2;
        emem_cache_bw = 0.5;
        emem_dram_bw = 0.2;
        lat_scale = 1.6;
      };
  }

(** LiquidIO-like: a middle ground — 36 MIPS-style cores at 1.8 GHz. *)
let liquidio_like =
  {
    name = "LiquidIO-like (36x 1.8GHz)";
    nic = { Multicore.n_cores = 36; freq_mhz = 1800.0; wire_gbps = 50.0 };
    hw =
      {
        Multicore.hw_name = "liquidio-like";
        cls_bw = 0.5;
        ctm_bw = 0.6;
        imem_bw = 0.9;
        emem_cache_bw = 0.3;
        emem_dram_bw = 0.12;
        lat_scale = 1.25;
      };
  }

let all = [ agilio; bluefield_like; liquidio_like ]

(** Measure one operating point of a demand on a profile. *)
let measure t d ~cores = Multicore.measure ~hw:t.hw ~nic:t.nic d ~cores

let optimal_cores t d = Multicore.optimal_cores ~hw:t.hw ~nic:t.nic d

(** Peak point across the profile's core range. *)
let peak t d =
  let points = Multicore.sweep ~hw:t.hw ~nic:t.nic d in
  List.fold_left
    (fun acc (p : Multicore.point) ->
      if p.Multicore.throughput_mpps > acc.Multicore.throughput_mpps then p else acc)
    (List.hd points) points
