(** Per-packet resource demand of a ported NF (single-core view): the
    bridge between compiled code + workload profile and the multicore
    performance model. *)

(** Per-packet demand under a concrete workload and porting
    configuration. *)
type demand = {
  d_name : string;
  compute : float;  (** core cycles per packet (issue time incl. memory commands) *)
  levels : float array;  (** memory accesses per packet, indexed by {!Mem.level_index} *)
  accel_ops : (Accel.engine * float) list;  (** engine invocations per packet *)
  per_structure : (string * float) list;
      (** stateful accesses per packet per structure (after coalescing) *)
  emem_hit : float;  (** EMEM SRAM cache hit ratio under this workload *)
  payload_bytes : int;
  wire_bytes : int;  (** on-wire packet size, for line-rate limits *)
}

(** Per-packet rx/tx fixed path cost in cycles. *)
val fixed_io_cycles : float

(** Assumed bytes per cached flow entry (EMEM-cache sizing). *)
val flow_entry_bytes : int

(** Analytic EMEM cache hit ratio of a workload. *)
val emem_hit_ratio : Workload.spec -> float

(** Execution count of a compiled block under an interpreter profile,
    resolving the frontend's [src_sid] encoding (0 = per packet, positive
    = statement count, negative = loop-header condition count). *)
val block_exec : Nf_lang.Interp.profile -> Nfcc.compiled_block -> int

(** Variable packs from memory coalescing: within a block, members of one
    pack are fetched together. *)
type packs = string list list

(** The pack containing variable [g], if any. *)
val pack_of : packs -> string -> string list option

(** Merge a block's per-structure access counts by pack (the pack costs
    its most-accessed member rather than the sum, §4.4). *)
val coalesce_block_refs : packs -> (string * float) list -> (string * float) list

(** Assemble the demand of an element.  [compiled] must come from lowering
    [elt] under the desired accelerator configuration; [profile] from
    interpreting it (NIC data-structure mode) over the packets of
    [spec]. *)
val demand_of :
  ?packs:packs ->
  placement:Mem.placement ->
  spec:Workload.spec ->
  Nf_lang.Ast.element ->
  Nfcc.compiled ->
  Nf_lang.Interp.profile ->
  demand

(** Compute cycles per stateful memory access — the feature driving
    scale-out and colocation behaviour (§4.2, §4.5). *)
val arithmetic_intensity : demand -> float

val total_mem_accesses : demand -> float
