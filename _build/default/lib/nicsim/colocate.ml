(** NF colocation model (§4.5).

    Two NFs share the SmartNIC: cores are partitioned, but memory levels
    and accelerator engines are shared, so each NF's traffic inflates the
    other's effective memory latency.  The joint fixed point yields the
    per-NF colocated throughputs, from which the paper's degradation
    metrics (colocated throughput normalized by exclusive-use throughput)
    are computed. *)

type result = {
  t1 : Multicore.point;
  t2 : Multicore.point;
  solo1 : Multicore.point;  (** NF1 alone at its exclusive-use knee *)
  solo2 : Multicore.point;
  lat_base1 : Multicore.point;  (** NF1 alone on its colocated core share *)
  lat_base2 : Multicore.point;
}

let solve_pair nic (d1 : Perf.demand) (d2 : Perf.demand) ~cores1 ~cores2 =
  let engines =
    List.sort_uniq compare (List.map fst (d1.Perf.accel_ops @ d2.Perf.accel_ops))
  in
  let hit = 0.5 *. (d1.Perf.emem_hit +. d2.Perf.emem_hit) in
  let w1 = Multicore.wire_limit nic ~wire_bytes:d1.Perf.wire_bytes in
  let w2 = Multicore.wire_limit nic ~wire_bytes:d2.Perf.wire_bytes in
  let cap1 = Multicore.bandwidth_cap d1 and cap2 = Multicore.bandwidth_cap d2 in
  (* queue state under joint driving rates (r1, r2) *)
  let joint_queues r1 r2 q q_accel =
    List.iter
      (fun level ->
        let idx = Mem.level_index level in
        let b = Multicore.level_bandwidth ~emem_hit:hit level in
        let load = (r1 *. d1.Perf.levels.(idx)) +. (r2 *. d2.Perf.levels.(idx)) in
        let rho = min Multicore.rho_cap (load /. b) in
        q.(idx) <- Multicore.queue_delay ~bandwidth:b ~rho)
      Mem.all_levels;
    List.map
      (fun (e, _) ->
        let n1 = try List.assoc e d1.Perf.accel_ops with Not_found -> 0.0 in
        let n2 = try List.assoc e d2.Perf.accel_ops with Not_found -> 0.0 in
        let b = Accel.bandwidth e in
        let rho = min Multicore.rho_cap (((r1 *. n1) +. (r2 *. n2)) /. b) in
        (e, Multicore.queue_delay ~bandwidth:b ~rho))
      q_accel
  in
  (* phase A: joint throughput fixed point with served rates *)
  let q = Array.make 5 0.0 in
  let q_accel = ref (List.map (fun e -> (e, 0.0)) engines) in
  let t1 = ref 0.0 and t2 = ref 0.0 in
  let s1 = ref 1.0 and s2 = ref 1.0 in
  for _ = 1 to 100 do
    s1 := Multicore.service_time d1 q !q_accel;
    s2 := Multicore.service_time d2 q !q_accel;
    t1 := (0.5 *. !t1) +. (0.5 *. min (float_of_int cores1 /. !s1) (min w1 cap1));
    t2 := (0.5 *. !t2) +. (0.5 *. min (float_of_int cores2 /. !s2) (min w2 cap2));
    q_accel := joint_queues !t1 !t2 q !q_accel
  done;
  let th1 = min (float_of_int cores1 /. !s1) (min w1 cap1) in
  let th2 = min (float_of_int cores2 /. !s2) (min w2 cap2) in
  (* phase B: latency under offered pressure *)
  let p1 = min (float_of_int cores1 /. !s1) (1.02 *. min w1 cap1) in
  let p2 = min (float_of_int cores2 /. !s2) (1.02 *. min w2 cap2) in
  let q2 = Array.make 5 0.0 in
  let qa2 = joint_queues p1 p2 q2 !q_accel in
  let sl1 = Multicore.service_time d1 q2 qa2 in
  let sl2 = Multicore.service_time d2 q2 qa2 in
  let lat s cap w cores =
    let ti = min (float_of_int cores /. s) cap in
    if w < ti then s else max s (float_of_int cores /. max 1e-12 ti)
  in
  ( { Multicore.cores = cores1; throughput_mpps = th1 *. nic.Multicore.freq_mhz;
      latency_us = lat sl1 cap1 w1 cores1 /. nic.Multicore.freq_mhz },
    { Multicore.cores = cores2; throughput_mpps = th2 *. nic.Multicore.freq_mhz;
      latency_us = lat sl2 cap2 w2 cores2 /. nic.Multicore.freq_mhz } )

(** Colocate two NFs with an equal core split (the paper's default).  The
    exclusive-use baseline runs each NF alone at its own knee — the
    operating point an operator would actually pick (running a lone NF on
    all 60 cores just queues packets past saturation). *)
let colocate ?(nic = Multicore.default_nic) (d1 : Perf.demand) (d2 : Perf.demand) =
  let half = nic.Multicore.n_cores / 2 in
  let t1, t2 = solve_pair nic d1 d2 ~cores1:half ~cores2:half in
  let solo d = Multicore.measure ~nic d ~cores:(Multicore.optimal_cores ~nic d) in
  (* pure-interference latency baseline: the same core share, no partner *)
  let lat_base d = Multicore.measure ~nic d ~cores:half in
  { t1; t2; solo1 = solo d1; solo2 = solo d2; lat_base1 = lat_base d1; lat_base2 = lat_base d2 }

(** Total-throughput degradation: colocated aggregate normalized by the sum
    of exclusive-use throughputs (ranking objective (a), §5.7). *)
let total_throughput_loss r =
  let coloc = r.t1.Multicore.throughput_mpps +. r.t2.Multicore.throughput_mpps in
  let solo = r.solo1.Multicore.throughput_mpps +. r.solo2.Multicore.throughput_mpps in
  1.0 -. (coloc /. max 1e-9 solo)

(** Average of per-NF relative throughput losses (objective (b)). *)
let avg_throughput_loss r =
  let l1 = 1.0 -. (r.t1.Multicore.throughput_mpps /. max 1e-9 r.solo1.Multicore.throughput_mpps) in
  let l2 = 1.0 -. (r.t2.Multicore.throughput_mpps /. max 1e-9 r.solo2.Multicore.throughput_mpps) in
  0.5 *. (l1 +. l2)

let total_latency_loss r =
  let coloc = r.t1.Multicore.latency_us +. r.t2.Multicore.latency_us in
  let base = r.lat_base1.Multicore.latency_us +. r.lat_base2.Multicore.latency_us in
  (coloc /. max 1e-9 base) -. 1.0

let avg_latency_loss r =
  let l1 = (r.t1.Multicore.latency_us /. max 1e-9 r.lat_base1.Multicore.latency_us) -. 1.0 in
  let l2 = (r.t2.Multicore.latency_us /. max 1e-9 r.lat_base2.Multicore.latency_us) -. 1.0 in
  0.5 *. (l1 +. l2)
