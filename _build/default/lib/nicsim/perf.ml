(** Per-packet resource demand of a ported NF (single-core view).

    Combines the compiled NIC code, the workload-specific execution profile
    from the host interpreter, the reverse-ported API cost profiles, the
    state placement, and optional variable packing into one demand record;
    {!Multicore} turns demands into throughput/latency points. *)

open Nf_lang
open Nf_ir

type demand = {
  d_name : string;
  compute : float;  (** core cycles per packet (issue time incl. mem commands) *)
  levels : float array;  (** memory accesses per packet per {!Mem.level} *)
  accel_ops : (Accel.engine * float) list;  (** engine invocations per packet *)
  per_structure : (string * float) list;
      (** stateful accesses per packet per structure (after coalescing) *)
  emem_hit : float;  (** EMEM SRAM cache hit ratio under this workload *)
  payload_bytes : int;
  wire_bytes : int;  (** on-wire packet size for line-rate limits *)
}

let fixed_io_cycles = 80.0
(** per-packet rx/tx path: metadata parse, buffer credit, doorbell *)

let flow_entry_bytes = 64

let emem_hit_ratio (spec : Workload.spec) =
  let cache_flows = Mem.emem_cache_bytes / flow_entry_bytes in
  Workload.cache_hit_ratio spec ~cache_flows

(** Execution count of a compiled block under the interpreter profile.
    Resolution of the [src_sid] encoding established by the frontend. *)
let block_exec (profile : Interp.profile) (cb : Nfcc.compiled_block) =
  if cb.Nfcc.src_sid = 0 then profile.Interp.packets
  else if cb.Nfcc.src_sid > 0 then Interp.stmt_count profile cb.Nfcc.src_sid
  else if cb.Nfcc.src_sid < -1 then Interp.cond_count profile (-cb.Nfcc.src_sid - 1)
  else profile.Interp.packets

(** Variable packs from memory coalescing: within a block, accesses to
    members of the same pack are fetched together, so the pack costs as
    much as its most-accessed member rather than the sum (§4.4). *)
type packs = string list list

let pack_of (packs : packs) g = List.find_opt (fun pack -> List.mem g pack) packs

(** Apply coalescing to a per-target access count list within one block. *)
let coalesce_block_refs (packs : packs) (refs : (string * float) list) =
  let in_pack, alone = List.partition (fun (g, _) -> pack_of packs g <> None) refs in
  let by_pack = Hashtbl.create 4 in
  List.iter
    (fun (g, n) ->
      match pack_of packs g with
      | Some pack ->
        let key = String.concat "," pack in
        let cur = Option.value ~default:0.0 (Hashtbl.find_opt by_pack key) in
        Hashtbl.replace by_pack key (max cur n)
      | None -> ())
    in_pack;
  let packed =
    Hashtbl.fold
      (fun key n acc ->
        match String.split_on_char ',' key with
        | first :: _ -> (first, n) :: acc
        | [] -> acc)
      by_pack []
  in
  alone @ packed

let add_level levels placement g n =
  let level = Mem.level_of placement g in
  let idx = Mem.level_index level in
  levels.(idx) <- levels.(idx) +. n

(** Payload accesses are issued as 8-byte bursts against the CTM packet
    buffer, so per-byte IR accesses amortize 8:1. *)
let payload_burst = 0.125

let scale_packet_buffer g n = if String.equal g Mem.packet_buffer then payload_burst *. n else n

let bump_tbl tbl g n =
  Hashtbl.replace tbl g (n +. Option.value ~default:0.0 (Hashtbl.find_opt tbl g))

(** Assemble the demand for an element.

    [compiled] must come from lowering [elt] and compiling with the desired
    accelerator configuration; [profile] from running the interpreter (in
    NIC data-structure mode) over the packets of [spec]. *)
let demand_of ?(packs : packs = []) ~(placement : Mem.placement) ~(spec : Workload.spec)
    (elt : Ast.element) (compiled : Nfcc.compiled) (profile : Interp.profile) : demand =
  let packets = float_of_int (max 1 profile.Interp.packets) in
  let compute = ref fixed_io_cycles in
  let levels = Array.make 5 0.0 in
  let structure_tbl = Hashtbl.create 8 in
  let accel_tbl = Hashtbl.create 4 in
  let bump_accel e n =
    Hashtbl.replace accel_tbl e (n +. Option.value ~default:0.0 (Hashtbl.find_opt accel_tbl e))
  in
  let api_profiles =
    List.map
      (fun (call, impl) -> (call, Api_cost.profile_of_impl impl))
      (Nf_frontend.Api_ir.impls_for_element elt compiled.Nfcc.source)
  in
  Array.iter
    (fun cb ->
      let n = float_of_int (block_exec profile cb) /. packets in
      if n > 0.0 then begin
        (* core issue cycles for the block's own instructions *)
        List.iter
          (fun i ->
            compute := !compute +. (n *. float_of_int (Isa.issue_cycles i));
            match i.Isa.op with
            | Isa.Local_mem _ -> levels.(Mem.level_index Mem.LMEM) <- levels.(Mem.level_index Mem.LMEM) +. n
            | Isa.Accel_call api -> (
              match Accel.engine_of_api api with
              | Some e -> bump_accel e n
              | None -> ())
            | _ -> ())
          cb.Nfcc.instrs;
        (* stateful refs of this block, coalesced by packs, then placed *)
        let refs = Hashtbl.create 4 in
        List.iter
          (fun i ->
            match Isa.mem_target i with
            | Some g ->
              Hashtbl.replace refs g (n +. Option.value ~default:0.0 (Hashtbl.find_opt refs g))
            | None -> ())
          cb.Nfcc.instrs;
        let ref_list = Hashtbl.fold (fun g c acc -> (g, c) :: acc) refs [] in
        List.iter
          (fun (g, c) ->
            let c = scale_packet_buffer g c in
            add_level levels placement g c;
            bump_tbl structure_tbl g c)
          (coalesce_block_refs packs ref_list)
      end)
    compiled.Nfcc.cblocks;
  (* framework API callee costs (reverse-ported implementations) for calls
     that were not handed to an accelerator *)
  Array.iter
    (fun cb ->
      let n = float_of_int (block_exec profile cb) /. packets in
      if n > 0.0 then begin
        let source_block = Ir.block compiled.Nfcc.source cb.Nfcc.bid in
        List.iter
          (fun (i : Ir.instr) ->
            match (i.Ir.op, i.Ir.annot) with
            | Ir.Call callee, Ir.Api _
              when not (List.exists (fun inst -> inst.Isa.op = Isa.Accel_call callee) cb.Nfcc.instrs)
              -> (
              match List.assoc_opt callee api_profiles with
              | Some p ->
                let cost = Api_cost.call_cost p profile spec in
                compute := !compute +. (n *. cost.Api_cost.cycles);
                levels.(Mem.level_index Mem.LMEM) <-
                  levels.(Mem.level_index Mem.LMEM) +. (n *. cost.Api_cost.local_mem);
                List.iter
                  (fun (g, c) ->
                    let c = scale_packet_buffer g (n *. c) in
                    add_level levels placement g c;
                    bump_tbl structure_tbl g c)
                  cost.Api_cost.mem
              | None -> ())
            | _ -> ())
          source_block.Ir.instrs
      end)
    compiled.Nfcc.cblocks;
  {
    d_name = elt.Ast.name;
    compute = !compute;
    levels;
    accel_ops = Hashtbl.fold (fun e n acc -> (e, n) :: acc) accel_tbl [];
    per_structure =
      List.sort compare (Hashtbl.fold (fun g n acc -> (g, n) :: acc) structure_tbl []);
    emem_hit = emem_hit_ratio spec;
    payload_bytes = spec.Workload.payload_len;
    wire_bytes = 54 + spec.Workload.payload_len;
  }

(** Arithmetic intensity: compute cycles per stateful memory access, the
    feature driving scale-out and colocation behaviour (§4.2, §4.5). *)
let arithmetic_intensity d =
  let mem = Array.fold_left ( +. ) 0.0 d.levels -. d.levels.(Mem.level_index Mem.LMEM) in
  d.compute /. max 1.0 mem

let total_mem_accesses d = Array.fold_left ( +. ) 0.0 d.levels
