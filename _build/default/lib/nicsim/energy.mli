(** Energy and total-cost-of-ownership model — quantifying the
    introduction's motivation that SoC cores "drive down the TCO". *)

(** Power/price parameters of a packet-processing platform. *)
type platform = {
  e_name : string;
  core_active_w : float;  (** per busy core *)
  static_w : float;  (** fabric, SRAM, PHYs *)
  mem_nj_per_access : float;
  accel_nj_per_op : float;
  capex_usd : float;
}

(** Wimpy 1.2 GHz NFP-style cores: fractions of a watt each. *)
val smartnic : platform

(** Xeon-class cores, an order of magnitude hungrier. *)
val x86_host : platform

(** Platform power at an operating point of a demand. *)
val power_w : platform -> Perf.demand -> Multicore.point -> float

(** Microjoules per packet at an operating point. *)
val energy_per_packet_uj : platform -> Perf.demand -> Multicore.point -> float

(** Watts of a host deployment pushing [mpps] on [cores] cores. *)
val host_power_w : platform -> cores:int -> mpps:float -> mem_accesses_per_pkt:float -> float

(** TCO over [years] in USD: capex plus electricity. *)
val tco_usd : platform -> watts:float -> years:float -> usd_per_kwh:float -> float

(** TCO per delivered Mpps — the deployment-planning figure of merit. *)
val tco_per_mpps :
  platform -> watts:float -> mpps:float -> years:float -> usd_per_kwh:float -> float
