(** Energy and total-cost-of-ownership model.

    The paper's introduction motivates offloading with energy efficiency:
    "SmartNIC SoC cores are also more energy-efficient, driving down the
    total cost of ownership (TCO)."  This module quantifies that argument
    for the simulator: per-packet energy at an operating point and a
    simple multi-year TCO (capex + electricity) per unit of delivered
    throughput. *)

(** Power/price parameters of a packet-processing platform. *)
type platform = {
  e_name : string;
  core_active_w : float;  (** per busy core *)
  static_w : float;  (** fabric, SRAM, PHYs *)
  mem_nj_per_access : float;  (** off-chip access energy *)
  accel_nj_per_op : float;
  capex_usd : float;
}

(** Wimpy 1.2 GHz NFP-style cores: fractions of a watt each. *)
let smartnic =
  { e_name = "SmartNIC"; core_active_w = 0.35; static_w = 8.0; mem_nj_per_access = 15.0;
    accel_nj_per_op = 5.0; capex_usd = 600.0 }

(** Xeon-class cores are an order of magnitude hungrier. *)
let x86_host =
  { e_name = "x86 host"; core_active_w = 12.0; static_w = 45.0; mem_nj_per_access = 20.0;
    accel_nj_per_op = 0.0; capex_usd = 2500.0 }

(** Platform power when [cores] cores run a demand at [point]. *)
let power_w (p : platform) (d : Perf.demand) (point : Multicore.point) =
  let pkts_per_s = point.Multicore.throughput_mpps *. 1e6 in
  let mem_accesses_per_s = pkts_per_s *. Perf.total_mem_accesses d in
  let accel_ops_per_s =
    pkts_per_s *. List.fold_left (fun acc (_, n) -> acc +. n) 0.0 d.Perf.accel_ops
  in
  p.static_w
  +. (float_of_int point.Multicore.cores *. p.core_active_w)
  +. (mem_accesses_per_s *. p.mem_nj_per_access *. 1e-9)
  +. (accel_ops_per_s *. p.accel_nj_per_op *. 1e-9)

(** Energy per packet in microjoules at an operating point. *)
let energy_per_packet_uj (p : platform) (d : Perf.demand) (point : Multicore.point) =
  let pkts_per_s = max 1.0 (point.Multicore.throughput_mpps *. 1e6) in
  power_w p d point /. pkts_per_s *. 1e6

(** Watts for a host deployment processing [mpps] on [cores] x86 cores. *)
let host_power_w (p : platform) ~cores ~mpps ~mem_accesses_per_pkt =
  p.static_w
  +. (float_of_int cores *. p.core_active_w)
  +. (mpps *. 1e6 *. mem_accesses_per_pkt *. p.mem_nj_per_access *. 1e-9)

(** TCO over [years] in USD: capex plus electricity at [usd_per_kwh]. *)
let tco_usd (p : platform) ~watts ~years ~usd_per_kwh =
  let hours = years *. 365.25 *. 24.0 in
  p.capex_usd +. (watts /. 1000.0 *. hours *. usd_per_kwh)

(** TCO per delivered Mpps — the deployment-planning figure of merit. *)
let tco_per_mpps (p : platform) ~watts ~mpps ~years ~usd_per_kwh =
  tco_usd p ~watts ~years ~usd_per_kwh /. max 1e-9 mpps
