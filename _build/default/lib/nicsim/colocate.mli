(** NF colocation model (§4.5): cores are partitioned, memory levels and
    engines are shared, so each NF inflates the other's effective memory
    latency through a joint contention fixed point. *)

type result = {
  t1 : Multicore.point;  (** NF1 colocated (half the cores) *)
  t2 : Multicore.point;
  solo1 : Multicore.point;  (** NF1 alone at its exclusive-use knee *)
  solo2 : Multicore.point;
  lat_base1 : Multicore.point;  (** NF1 alone on its colocated core share *)
  lat_base2 : Multicore.point;
}

(** Joint fixed point for an explicit core split. *)
val solve_pair :
  Multicore.nic ->
  Perf.demand ->
  Perf.demand ->
  cores1:int ->
  cores2:int ->
  Multicore.point * Multicore.point

(** Colocate two NFs with an equal core split (the paper's default). *)
val colocate : ?nic:Multicore.nic -> Perf.demand -> Perf.demand -> result

(** Colocated aggregate throughput normalized by the sum of exclusive-use
    throughputs (ranking objective (a), §5.7). *)
val total_throughput_loss : result -> float

(** Mean of per-NF relative throughput losses (objective (b)). *)
val avg_throughput_loss : result -> float

(** Latency inflation vs running alone on the same core share
    (objective (c)). *)
val total_latency_loss : result -> float

(** Mean of per-NF latency inflations (objective (d)). *)
val avg_latency_loss : result -> float
