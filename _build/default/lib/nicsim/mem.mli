(** SmartNIC memory hierarchy (§4.3): Netronome-style levels with
    increasing capacity and latency, an EMEM SRAM cache, and per-level
    aggregate bandwidth. *)

type level = LMEM | CLS | CTM | IMEM | EMEM

val all_levels : level list
val level_name : level -> string

(** Dense index in [0..4], LMEM first. *)
val level_index : level -> int

(** Inverse of {!level_index}.  @raise Invalid_argument out of range. *)
val level_of_index : int -> level

(** Capacity in bytes available for NF state at each level. *)
val capacity_bytes : level -> int

(** Unloaded access latency in core cycles. *)
val base_latency : level -> float

(** Aggregate level bandwidth in accesses per core cycle (LMEM is per-core
    and effectively uncontended).  Platform profiles override this via
    {!Multicore.hw}. *)
val bandwidth : level -> float

(** EMEM SRAM cache capacity in bytes. *)
val emem_cache_bytes : int

val emem_cache_hit_latency : float

(** Effective EMEM latency for a hit ratio in [0,1]. *)
val emem_latency : hit_ratio:float -> float

(** A placement maps each stateful structure to a level. *)
type placement = (string * level) list

(** The packet-buffer pseudo-structure; payload bytes always live in CTM. *)
val packet_buffer : string

(** Level of a structure under a placement; unplaced structures default to
    EMEM; {!packet_buffer} is pinned to CTM. *)
val level_of : placement -> string -> level

(** The naive port: every structure in EMEM (§5.5 baseline). *)
val naive_placement : string list -> placement

(** Do the placed structures fit every level's capacity? *)
val feasible : placement -> sizes:(string * int) list -> bool
