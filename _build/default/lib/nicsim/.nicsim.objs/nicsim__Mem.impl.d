lib/nicsim/mem.ml: List Printf String
