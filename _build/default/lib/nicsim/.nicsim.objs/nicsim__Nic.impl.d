lib/nicsim/nic.ml: Accel Ast Interp List Mem Multicore Nf_frontend Nf_ir Nf_lang Nfcc Perf State Workload
