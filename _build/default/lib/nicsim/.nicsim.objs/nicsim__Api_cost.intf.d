lib/nicsim/api_cost.mli: Isa Nf_frontend Nf_ir Nf_lang Workload
