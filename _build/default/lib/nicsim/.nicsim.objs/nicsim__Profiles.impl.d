lib/nicsim/profiles.ml: List Multicore
