lib/nicsim/energy.ml: List Multicore Perf
