lib/nicsim/nfcc.ml: Array Hashtbl Ir Isa List Nf_ir Option String
