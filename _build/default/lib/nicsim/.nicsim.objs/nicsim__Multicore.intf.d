lib/nicsim/multicore.mli: Accel Mem Perf
