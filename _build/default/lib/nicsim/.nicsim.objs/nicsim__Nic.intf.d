lib/nicsim/nic.mli: Mem Multicore Nf_ir Nf_lang Nfcc Perf Workload
