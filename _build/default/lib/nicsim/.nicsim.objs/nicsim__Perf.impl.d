lib/nicsim/perf.ml: Accel Api_cost Array Ast Hashtbl Interp Ir Isa List Mem Nf_frontend Nf_ir Nf_lang Nfcc Option String Workload
