lib/nicsim/profiles.mli: Multicore Perf
