lib/nicsim/energy.mli: Multicore Perf
