lib/nicsim/mem.mli:
