lib/nicsim/api_cost.ml: Hashtbl Isa List Nf_frontend Nf_lang Nfcc Option Workload
