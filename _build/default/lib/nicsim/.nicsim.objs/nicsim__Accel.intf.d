lib/nicsim/accel.mli: Nfcc
