lib/nicsim/perf.mli: Accel Mem Nf_lang Nfcc Workload
