lib/nicsim/isa.ml: List
