lib/nicsim/accel.ml: List Nfcc
