lib/nicsim/colocate.mli: Multicore Perf
