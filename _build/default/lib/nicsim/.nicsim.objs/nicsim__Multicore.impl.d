lib/nicsim/multicore.ml: Accel Array List Mem Perf
