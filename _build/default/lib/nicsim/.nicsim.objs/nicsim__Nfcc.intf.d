lib/nicsim/nfcc.mli: Hashtbl Isa Nf_ir
