lib/nicsim/colocate.ml: Accel Array List Mem Multicore Perf
