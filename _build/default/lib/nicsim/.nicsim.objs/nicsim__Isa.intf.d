lib/nicsim/isa.mli:
