(** SmartNIC memory hierarchy (§4.3).

    Netronome-style levels with increasing capacity and latency: per-core
    local memory (LMEM), cluster local scratch (CLS), cluster target memory
    (CTM), internal SRAM (IMEM) and external DRAM (EMEM).  EMEM is fronted
    by a shared SRAM cache whose hit rate depends on the workload's flow
    locality.  Each level has an aggregate bandwidth; saturation inflates
    effective latency in the multicore model. *)

type level = LMEM | CLS | CTM | IMEM | EMEM

let all_levels = [ LMEM; CLS; CTM; IMEM; EMEM ]

let level_name = function
  | LMEM -> "LMEM"
  | CLS -> "CLS"
  | CTM -> "CTM"
  | IMEM -> "IMEM"
  | EMEM -> "EMEM"

let level_index = function LMEM -> 0 | CLS -> 1 | CTM -> 2 | IMEM -> 3 | EMEM -> 4

let level_of_index = function
  | 0 -> LMEM
  | 1 -> CLS
  | 2 -> CTM
  | 3 -> IMEM
  | 4 -> EMEM
  | i -> invalid_arg (Printf.sprintf "Mem.level_of_index: %d" i)

(** Capacity in bytes available for NF state at each level. *)
let capacity_bytes = function
  | LMEM -> 1 lsl 10  (* 1 KiB per core; registers/locals only *)
  | CLS -> 16 * 1024  (* the island scratch is mostly reserved for firmware *)
  | CTM -> 256 * 1024
  | IMEM -> 4 * 1024 * 1024
  | EMEM -> 512 * 1024 * 1024

(** Unloaded access latency in core cycles. *)
let base_latency = function LMEM -> 3.0 | CLS -> 30.0 | CTM -> 80.0 | IMEM -> 200.0 | EMEM -> 500.0

(** Aggregate level bandwidth in accesses per core cycle (across all
    cores).  LMEM is per-core and effectively uncontended. *)
let bandwidth = function LMEM -> 1000.0 | CLS -> 6.0 | CTM -> 10.0 | IMEM -> 16.0 | EMEM -> 7.0

(** EMEM SRAM cache: capacity and hit latency. *)
let emem_cache_bytes = 3 * 1024 * 1024

let emem_cache_hit_latency = 150.0

(** Effective EMEM latency for a given cache hit ratio in [0,1]. *)
let emem_latency ~hit_ratio =
  (hit_ratio *. emem_cache_hit_latency) +. ((1.0 -. hit_ratio) *. base_latency EMEM)

(** A placement maps each stateful structure to a level. *)
type placement = (string * level) list

(** The packet buffer pseudo-structure: payload bytes always live in CTM. *)
let packet_buffer = "__pkt"

let level_of (p : placement) name =
  if String.equal name packet_buffer then CTM
  else match List.assoc_opt name p with Some l -> l | None -> EMEM

(** The naive port drops every structure into EMEM (§5.5 baseline). *)
let naive_placement names = List.map (fun n -> (n, EMEM)) names

(** Check capacity feasibility of a placement given structure sizes. *)
let feasible (p : placement) ~(sizes : (string * int) list) =
  List.for_all
    (fun level ->
      let used =
        List.fold_left
          (fun acc (name, l) ->
            if l = level then acc + (try List.assoc name sizes with Not_found -> 0) else acc)
          0 p
      in
      used <= capacity_bytes level)
    all_levels
