(** SmartNIC instruction set, Netronome-NFP flavored.

    The quirks that make the IR→assembly mapping non-trivial: fused
    shift-ALU ops, multi-step multiplies, magnitude-dependent immediates,
    byte-field moves covering zext/trunc and packet access, fused
    compare-branches, and memory operations whose latency is decided by
    data placement at run time. *)

type mem_dir = Read | Write

type op =
  | Alu  (** add/sub/and/or/xor on registers or small immediates *)
  | Alu_shf  (** ALU with fused operand shift *)
  | Shf  (** plain shift/rotate *)
  | Immed  (** materialize a large immediate *)
  | Ld_field  (** byte-field extract/insert; packet/xfer register access *)
  | Mul_step  (** one step of a multi-step multiply *)
  | Mem of mem_dir * string  (** access to the named stateful structure *)
  | Local_mem of mem_dir  (** spilled-local access (per-core LMEM) *)
  | Br  (** branch *)
  | Br_cmp  (** fused compare-and-branch *)
  | Csr  (** control/status register access (IO, doorbells) *)
  | Accel_call of string  (** hand-off to an ASIC accelerator *)
  | Nop

type instr = { op : op }

val mk : op -> instr

(** Issue cost in core cycles, excluding memory wait time (the performance
    model adds that from the placement). *)
val issue_cycles : instr -> int

(** Access to a named stateful structure (or the packet buffer)? *)
val is_mem : instr -> bool

(** Spilled-local (LMEM) access? *)
val is_local_mem : instr -> bool

(** The structure a memory operation targets. *)
val mem_target : instr -> string option

(** "Compute instruction" in the paper's sense: everything executed by the
    core pipeline, i.e. non-memory instructions. *)
val is_compute : instr -> bool

val op_str : op -> string
val count_compute : instr list -> int
val count_mem : instr list -> int
val count_local_mem : instr list -> int
