(** ASIC accelerator models (§2, §4.1): CRC/checksum engines on the
    ingress path and an LPM lookup engine fronted by a flow cache.  Each
    engine has an invocation latency and a shared ops/cycle bandwidth. *)

type engine = Crc | Checksum | Lpm | Flow_cache

val engine_name : engine -> string

(** The engine handling an accelerated API call, if any. *)
val engine_of_api : string -> engine option

(** Invocation latency in core cycles; the streaming CRC engine scales
    with payload size. *)
val latency : engine -> payload_bytes:int -> float

(** Aggregate engine bandwidth in operations per core cycle. *)
val bandwidth : engine -> float

(** An {!Nfcc.config} that offloads the listed API call names. *)
val accel_config : string list -> Nfcc.config
