(** ASIC accelerator models (§2, §4.1).

    Netronome-style engines: CRC/checksum units on the packet ingress path
    and an LPM lookup engine with a "flow cache" front-end.  Each engine has
    an invocation latency (replacing hundreds-to-thousands of core cycles of
    procedural code — the paper quotes 2000+ cycles for a software header
    checksum vs ~300 on the ingress accelerator) and a finite ops/cycle
    bandwidth shared by all cores. *)

type engine = Crc | Checksum | Lpm | Flow_cache

let engine_name = function
  | Crc -> "crc"
  | Checksum -> "checksum"
  | Lpm -> "lpm"
  | Flow_cache -> "flow_cache"

(** Engine handling an accelerated API call, if any. *)
let engine_of_api = function
  | "crc32_payload" | "crc16_payload" | "hash32" -> Some Crc
  | "checksum_ip" | "checksum_update_ip" | "csum_incr_update" -> Some Checksum
  | "lpm_lookup" -> Some Lpm
  | "flow_cache_lookup" -> Some Flow_cache
  | _ -> None

(** Invocation latency in core cycles.  [payload_bytes] matters for the
    streaming CRC engine. *)
let latency engine ~payload_bytes =
  match engine with
  | Crc -> 60.0 +. (float_of_int payload_bytes /. 8.0)
  | Checksum -> 300.0
  | Lpm -> 150.0
  | Flow_cache -> 60.0

(** Aggregate operations per core cycle. *)
let bandwidth = function Crc -> 2.0 | Checksum -> 4.0 | Lpm -> 4.0 | Flow_cache -> 8.0

(** The accelerator predicate for {!Nfcc.config} given a list of API call
    names that should be offloaded. *)
let accel_config apis : Nfcc.config =
  { Nfcc.default_config with Nfcc.accel = (fun name -> List.mem name apis) }
