(** Statistical profile of a Click-element corpus (§3.2 data synthesis).

    The paper customizes YarpGen so that generated programs follow the AST
    distribution of real Click elements.  This module extracts that
    distribution: statement-kind frequencies, operator frequencies, header
    field popularity, literal magnitudes, and structural parameters
    (handler length, branch length, loop bounds). *)

open Nf_lang

type t = {
  stmt_kinds : float array;  (** indexed by {!stmt_kind_index} *)
  binops : float array;  (** 8 binops *)
  cmpops : float array;  (** 6 comparisons *)
  hdr_fields : float array;  (** 22 header fields *)
  expr_leaves : float array;  (** const, local, global, hdr, payload, pkt_len *)
  const_small : float;  (** fraction of literals below 256 *)
  mean_handler_len : float;
  mean_branch_len : float;
  mean_loop_bound : float;
  stateful_fraction : float;
  mean_scalars : float;
  mean_arrays : float;
  map_fraction : float;
}

let stmt_kind_count = 10

(** let=0 set_hdr=1 set_global=2 arr=3 map=4 if=5 for=6 api=7 payload=8 verdict=9 *)
let stmt_kind_index (s : Ast.stmt) =
  match s.Ast.node with
  | Ast.Let (_, _) -> 0
  | Ast.Set_hdr (_, _) -> 1
  | Ast.Set_global (_, _) -> 2
  | Ast.Arr_set (_, _, _) -> 3
  | Ast.Map_find (_, _, _) | Ast.Map_read (_, _, _) | Ast.Map_write (_, _, _)
  | Ast.Map_insert (_, _, _) | Ast.Map_erase _ | Ast.Vec_append (_, _) | Ast.Vec_get (_, _, _)
  | Ast.Vec_set (_, _, _) ->
    4
  | Ast.If (_, _, _) -> 5
  | Ast.For (_, _, _, _) | Ast.While (_, _) -> 6
  | Ast.Api_stmt (_, _) -> 7
  | Ast.Set_payload (_, _) -> 8
  | Ast.Emit _ | Ast.Drop | Ast.Return | Ast.Call_sub _ -> 9

let binop_index = function
  | Ast.Add -> 0
  | Ast.Sub -> 1
  | Ast.Mul -> 2
  | Ast.BAnd -> 3
  | Ast.BOr -> 4
  | Ast.BXor -> 5
  | Ast.Shl -> 6
  | Ast.Shr -> 7

let all_binops = [| Ast.Add; Ast.Sub; Ast.Mul; Ast.BAnd; Ast.BOr; Ast.BXor; Ast.Shl; Ast.Shr |]

let cmpop_index = function
  | Ast.Eq -> 0
  | Ast.Ne -> 1
  | Ast.Lt -> 2
  | Ast.Le -> 3
  | Ast.Gt -> 4
  | Ast.Ge -> 5

let all_cmpops = [| Ast.Eq; Ast.Ne; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge |]

let all_fields =
  [| Ast.Eth_type; Ast.Ip_src; Ast.Ip_dst; Ast.Ip_proto; Ast.Ip_ttl; Ast.Ip_len; Ast.Ip_hl;
     Ast.Ip_tos; Ast.Ip_id; Ast.Ip_csum; Ast.Tcp_sport; Ast.Tcp_dport; Ast.Tcp_seq;
     Ast.Tcp_ack; Ast.Tcp_off; Ast.Tcp_flags; Ast.Tcp_win; Ast.Tcp_csum; Ast.Udp_sport;
     Ast.Udp_dport; Ast.Udp_len; Ast.Udp_csum |]

let field_index f =
  let rec scan i = if all_fields.(i) == f || all_fields.(i) = f then i else scan (i + 1) in
  scan 0

(* leaves: const=0 local=1 global=2 hdr=3 payload=4 pkt_len=5 *)
let leaf_count = 6

let rec walk_expr acc_binop acc_cmp acc_field acc_leaf consts (e : Ast.expr) =
  let recur = walk_expr acc_binop acc_cmp acc_field acc_leaf consts in
  match e with
  | Ast.Int n ->
    acc_leaf.(0) <- acc_leaf.(0) +. 1.0;
    consts := n :: !consts
  | Ast.Local _ -> acc_leaf.(1) <- acc_leaf.(1) +. 1.0
  | Ast.Global _ -> acc_leaf.(2) <- acc_leaf.(2) +. 1.0
  | Ast.Hdr f ->
    acc_leaf.(3) <- acc_leaf.(3) +. 1.0;
    acc_field.(field_index f) <- acc_field.(field_index f) +. 1.0
  | Ast.Payload_byte e1 ->
    acc_leaf.(4) <- acc_leaf.(4) +. 1.0;
    recur e1
  | Ast.Packet_len -> acc_leaf.(5) <- acc_leaf.(5) +. 1.0
  | Ast.Bin (op, a, b) ->
    acc_binop.(binop_index op) <- acc_binop.(binop_index op) +. 1.0;
    recur a;
    recur b
  | Ast.Cmp (op, a, b) ->
    acc_cmp.(cmpop_index op) <- acc_cmp.(cmpop_index op) +. 1.0;
    recur a;
    recur b
  | Ast.Not a -> recur a
  | Ast.And_also (a, b) | Ast.Or_else (a, b) ->
    recur a;
    recur b
  | Ast.Arr_get (_, idx) -> recur idx
  | Ast.Vec_len _ -> ()
  | Ast.Api_expr (_, args) -> List.iter recur args

(** Extract the statistical profile from a set of elements. *)
let of_corpus (elts : Ast.element list) : t =
  let stmt_kinds = Array.make stmt_kind_count 0.0 in
  let binops = Array.make 8 0.0 in
  let cmpops = Array.make 6 0.0 in
  let hdr_fields = Array.make (Array.length all_fields) 0.0 in
  let leaves = Array.make leaf_count 0.0 in
  let consts = ref [] in
  let branch_lens = ref [] and loop_bounds = ref [] in
  let rec walk_stmt (s : Ast.stmt) =
    stmt_kinds.(stmt_kind_index s) <- stmt_kinds.(stmt_kind_index s) +. 1.0;
    let we = walk_expr binops cmpops hdr_fields leaves consts in
    match s.Ast.node with
    | Ast.Let (_, e) | Ast.Set_global (_, e) | Ast.Set_hdr (_, e) | Ast.Map_write (_, _, e)
    | Ast.Vec_append (_, e) ->
      we e
    | Ast.Set_payload (a, b) | Ast.Arr_set (_, a, b) | Ast.Vec_set (_, a, b) ->
      we a;
      we b
    | Ast.Map_find (_, keys, _) -> List.iter we keys
    | Ast.Map_insert (_, keys, vals) -> List.iter we (keys @ vals)
    | Ast.Map_read (_, _, _) | Ast.Map_erase _ | Ast.Emit _ | Ast.Drop | Ast.Call_sub _
    | Ast.Return ->
      ()
    | Ast.Vec_get (_, e, _) -> we e
    | Ast.If (c, t, f) ->
      we c;
      branch_lens := List.length t :: !branch_lens;
      if f <> [] then branch_lens := List.length f :: !branch_lens;
      List.iter walk_stmt t;
      List.iter walk_stmt f
    | Ast.While (c, body) ->
      we c;
      loop_bounds := 8 :: !loop_bounds;
      List.iter walk_stmt body
    | Ast.For (_, lo, hi, body) ->
      we lo;
      we hi;
      (match (lo, hi) with
      | Ast.Int a, Ast.Int b -> loop_bounds := (b - a) :: !loop_bounds
      | _ -> loop_bounds := 8 :: !loop_bounds);
      List.iter walk_stmt body
    | Ast.Api_stmt (_, args) -> List.iter we args
  in
  let handler_lens = List.map (fun e -> List.length e.Ast.handler) elts in
  List.iter (fun e -> List.iter walk_stmt (e.Ast.handler @ List.concat_map snd e.Ast.subs)) elts;
  let mean xs = if xs = [] then 0.0 else float_of_int (List.fold_left ( + ) 0 xs) /. float_of_int (List.length xs) in
  let n_elts = float_of_int (max 1 (List.length elts)) in
  let small = List.length (List.filter (fun n -> abs n < 256) !consts) in
  {
    stmt_kinds;
    binops;
    cmpops;
    hdr_fields;
    expr_leaves = leaves;
    const_small =
      (if !consts = [] then 0.8 else float_of_int small /. float_of_int (List.length !consts));
    mean_handler_len = mean handler_lens;
    mean_branch_len = max 1.0 (mean !branch_lens);
    mean_loop_bound = max 2.0 (mean !loop_bounds);
    stateful_fraction =
      float_of_int (List.length (List.filter Ast.is_stateful elts)) /. n_elts;
    mean_scalars =
      List.fold_left
        (fun acc e ->
          acc
          +. float_of_int
               (List.length
                  (List.filter (function Ast.Scalar _ -> true | _ -> false) e.Ast.state)))
        0.0 elts
      /. n_elts;
    mean_arrays =
      List.fold_left
        (fun acc e ->
          acc
          +. float_of_int
               (List.length
                  (List.filter (function Ast.Array _ -> true | _ -> false) e.Ast.state)))
        0.0 elts
      /. n_elts;
    map_fraction =
      float_of_int
        (List.length
           (List.filter
              (fun e -> List.exists (function Ast.Map _ -> true | _ -> false) e.Ast.state)
              elts))
      /. n_elts;
  }

(** Uniform profile: what a generator ignorant of Click statistics would
    use (the Table-1 baseline). *)
let uniform : t =
  {
    stmt_kinds = Array.make stmt_kind_count 1.0;
    binops = Array.make 8 1.0;
    cmpops = Array.make 6 1.0;
    hdr_fields = Array.make (Array.length all_fields) 1.0;
    expr_leaves = Array.make leaf_count 1.0;
    const_small = 0.5;
    mean_handler_len = 10.0;
    mean_branch_len = 3.0;
    mean_loop_bound = 12.0;
    stateful_fraction = 0.5;
    mean_scalars = 2.0;
    mean_arrays = 1.0;
    map_fraction = 0.5;
  }
