lib/synth/generator.mli: Ast_stats Nf_lang
