lib/synth/generator.ml: Array Ast Ast_stats Build Corpus List Nf_lang Printf Util
