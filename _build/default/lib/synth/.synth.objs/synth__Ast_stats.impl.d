lib/synth/ast_stats.ml: Array Ast List Nf_lang
