lib/synth/ast_stats.mli: Nf_lang
