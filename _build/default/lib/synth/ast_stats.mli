(** Statistical profile of a Click-element corpus (§3.2 data synthesis):
    the AST distribution the customized generator follows — statement and
    operator frequencies, header-field popularity, literal magnitudes,
    and structural parameters. *)

type t = {
  stmt_kinds : float array;  (** indexed by {!stmt_kind_index} *)
  binops : float array;
  cmpops : float array;
  hdr_fields : float array;  (** indexed like {!all_fields} *)
  expr_leaves : float array;  (** const, local, global, hdr, payload, pkt_len *)
  const_small : float;  (** fraction of literals below 256 *)
  mean_handler_len : float;
  mean_branch_len : float;
  mean_loop_bound : float;
  stateful_fraction : float;
  mean_scalars : float;
  mean_arrays : float;
  map_fraction : float;
}

val stmt_kind_count : int

(** Kind bucket of a statement (let/set_hdr/set_global/arr/map/if/loop/
    api/payload/verdict). *)
val stmt_kind_index : Nf_lang.Ast.stmt -> int

val binop_index : Nf_lang.Ast.binop -> int
val all_binops : Nf_lang.Ast.binop array
val cmpop_index : Nf_lang.Ast.cmpop -> int
val all_cmpops : Nf_lang.Ast.cmpop array
val all_fields : Nf_lang.Ast.header_field array
val field_index : Nf_lang.Ast.header_field -> int
val leaf_count : int

(** Extract the profile from a set of elements. *)
val of_corpus : Nf_lang.Ast.element list -> t

(** The unfitted profile a Click-ignorant generator would use (the Table-1
    baseline). *)
val uniform : t
