(** YarpGen-style random NF generator guided by corpus statistics (§3.2):
    programs are generated top-down from weighted production rules fitted
    to the real corpus, wrapped in Click Element classes, and guaranteed
    well-formed (interpretable, lowerable, compilable). *)

type config = {
  stats : Ast_stats.t;
  max_depth : int;  (** nesting depth for if/for *)
  seed : int;
}

val default_config : Ast_stats.t -> config

(** Generate one element under a statistics profile; deterministic in
    [seed]. *)
val generate :
  ?config:config -> stats:Ast_stats.t -> seed:int -> string -> Nf_lang.Ast.element

(** [n] elements with distinct derived seeds, fitted to the Table-2 corpus
    statistics by default. *)
val batch : ?stats:Ast_stats.t -> ?seed:int -> int -> Nf_lang.Ast.element list

(** The Table-1 baseline: same generator under uniform (unfitted)
    weights. *)
val baseline_batch : ?seed:int -> int -> Nf_lang.Ast.element list
