(** clara — command-line front-end for the Clara reproduction.

    Subcommands:
    - [list]                      corpus inventory
    - [show NF]                   pretty-print an element and its stats
    - [analyze NF]                train (quick) and print insights
    - [port NF]                   measure naive vs Clara-configured port
    - [sweep NF]                  print the core-count sweep
    - [experiment ID...]          run paper experiments (or 'all') *)

open Cmdliner

let workload_conv =
  let parse s =
    match s with
    | "mixed" -> Ok { Workload.default with Workload.proto = Workload.Mixed; Workload.n_packets = 800 }
    | "large" -> Ok { Workload.large_flows with Workload.n_packets = 800 }
    | "small" -> Ok { Workload.small_flows with Workload.n_packets = 800 }
    | _ -> Error (`Msg "workload must be one of: mixed, large, small")
  in
  let print fmt (w : Workload.spec) = Format.fprintf fmt "%s" w.Workload.name in
  Arg.conv (parse, print)

let workload_arg =
  Arg.(value & opt workload_conv { Workload.default with Workload.proto = Workload.Mixed; Workload.n_packets = 800 }
       & info [ "w"; "workload" ] ~docv:"WORKLOAD" ~doc:"Traffic profile: mixed, large or small flows.")

let nf_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"NF" ~doc:"Corpus element name (see 'clara list').")

(* -- list -- *)

let list_cmd =
  let run () =
    Util.Table.print ~align:Util.Table.Left
      ~header:[ "name"; "LoC"; "stateful"; "structures" ]
      (List.map
         (fun e ->
           [ e.Nf_lang.Ast.name;
             string_of_int (Nf_lang.Pp.loc e);
             (if Nf_lang.Ast.is_stateful e then "yes" else "no");
             string_of_int (List.length e.Nf_lang.Ast.state) ])
         (Nf_lang.Corpus.all ()))
  in
  Cmd.v (Cmd.info "list" ~doc:"List the NF corpus") Term.(const run $ const ())

(* -- show -- *)

let show_cmd =
  let run name =
    let elt = Nf_lang.Corpus.find name in
    print_endline (Nf_lang.Pp.to_string elt);
    let v = Clara.Vocab.create () in
    let prep = Clara.Prepare.prepare v elt in
    Printf.printf
      "\n; %d LoC, %d IR instructions (%d compute, %d stateful memory), %d API call sites, %d blocks\n"
      prep.Clara.Prepare.loc
      (Nf_ir.Ir.count_total prep.Clara.Prepare.ir)
      (Nf_ir.Ir.count_compute prep.Clara.Prepare.ir)
      (Nf_ir.Ir.count_stateful_mem prep.Clara.Prepare.ir)
      (Nf_ir.Ir.count_api prep.Clara.Prepare.ir)
      (List.length prep.Clara.Prepare.blocks)
  in
  Cmd.v (Cmd.info "show" ~doc:"Pretty-print an element and its IR statistics")
    Term.(const run $ nf_arg)

(* -- analyze -- *)

let analyze_cmd =
  let run name spec full =
    let elt = Nf_lang.Corpus.find name in
    Printf.printf "Training Clara (%s mode)...\n%!" (if full then "full" else "quick");
    let models = Clara.Pipeline.train ~quick:(not full) () in
    print_endline (Clara.Pipeline.report models elt spec);
    Printf.printf "\nPrediction quality vs the NIC compiler: WMAPE %.1f%%, memory accuracy %.1f%%\n"
      (100.0 *. Clara.Predictor.wmape_on_element models.Clara.Pipeline.predictor elt)
      (100.0 *. Clara.Predictor.memory_accuracy elt)
  in
  let full = Arg.(value & flag & info [ "full" ] ~doc:"Use full-size training sets.") in
  Cmd.v (Cmd.info "analyze" ~doc:"Generate offloading insights for an unported NF")
    Term.(const run $ nf_arg $ workload_arg $ full)

(* -- port -- *)

let port_cmd =
  let run name spec =
    let elt = Nf_lang.Corpus.find name in
    let naive = Nicsim.Nic.port elt spec in
    let placement, placed = Clara.Placement.apply elt spec in
    let packs, _ = Clara.Coalesce.apply elt spec in
    let config =
      { Nicsim.Nic.accel_apis = []; placement = Some placement; packs }
    in
    let clara = Nicsim.Nic.port ~config elt spec in
    let show label p =
      let peak = Nicsim.Nic.peak p in
      Printf.printf "%-12s peak %.2f Mpps at %d cores, latency %.2f us\n" label
        peak.Nicsim.Multicore.throughput_mpps peak.Nicsim.Multicore.cores
        peak.Nicsim.Multicore.latency_us
    in
    show "naive:" naive;
    ignore placed;
    show "clara:" clara;
    List.iter
      (fun (s, l) -> Printf.printf "  place %s -> %s\n" s (Nicsim.Mem.level_name l))
      placement;
    List.iter (fun p -> Printf.printf "  pack {%s}\n" (String.concat ", " p)) packs
  in
  Cmd.v (Cmd.info "port" ~doc:"Measure naive vs Clara-configured ports on the simulated NIC")
    Term.(const run $ nf_arg $ workload_arg)

(* -- sweep -- *)

let sweep_cmd =
  let run name spec =
    let ported = Nicsim.Nic.port (Nf_lang.Corpus.find name) spec in
    Util.Table.print ~header:[ "cores"; "Th (Mpps)"; "Lat (us)"; "Th/Lat" ]
      (List.filter_map
         (fun (p : Nicsim.Multicore.point) ->
           if p.Nicsim.Multicore.cores mod 4 = 0 || p.Nicsim.Multicore.cores = 1 then
             Some
               [ string_of_int p.Nicsim.Multicore.cores;
                 Printf.sprintf "%.2f" p.Nicsim.Multicore.throughput_mpps;
                 Printf.sprintf "%.2f" p.Nicsim.Multicore.latency_us;
                 Printf.sprintf "%.1f"
                   (p.Nicsim.Multicore.throughput_mpps /. max 1e-9 p.Nicsim.Multicore.latency_us) ]
           else None)
         (Nicsim.Nic.sweep ported));
    Printf.printf "knee (max Th/Lat): %d cores\n" (Nicsim.Nic.optimal_cores ported)
  in
  Cmd.v (Cmd.info "sweep" ~doc:"Core-count sweep for an NF under a workload")
    Term.(const run $ nf_arg $ workload_arg)

(* -- profile -- *)

let profile_cmd =
  let run name spec =
    let elt = Nf_lang.Corpus.find name in
    let interp = Nf_lang.Interp.create ~mode:Nf_lang.State.Nic elt in
    let profile = Nf_lang.Interp.run interp (Workload.generate spec) in
    print_string (Nf_lang.Profile_report.render elt profile)
  in
  Cmd.v (Cmd.info "profile" ~doc:"Run an NF over a workload and print its execution profile")
    Term.(const run $ nf_arg $ workload_arg)

(* -- experiment -- *)

let experiment_cmd =
  let run ids =
    match ids with
    | [] | [ "all" ] -> Experiments.Registry.run_all ()
    | ids ->
      List.iter
        (fun id ->
          match Experiments.Registry.find id with
          | Some e -> e.Experiments.Registry.run ()
          | None -> Printf.printf "unknown experiment: %s\n" id)
        ids
  in
  let ids = Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (fig1..fig16, table1, table2) or 'all'.") in
  Cmd.v (Cmd.info "experiment" ~doc:"Run paper experiments") Term.(const run $ ids)

let () =
  let doc = "Clara: automated SmartNIC offloading insights (SOSP'21 reproduction)" in
  let info = Cmd.info "clara" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; show_cmd; analyze_cmd; port_cmd; sweep_cmd; profile_cmd; experiment_cmd ]))
