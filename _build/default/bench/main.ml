(** Benchmark harness.

    - `bench/main.exe` (no args): regenerate every paper table and figure,
      printing the same rows/series the paper reports.
    - `bench/main.exe <id> [...]`: run selected experiments (ids: fig1,
      table1, table2, fig8..fig16).
    - `bench/main.exe micro`: Bechamel micro-benchmarks, one per
      table/figure kernel.
    - `bench/main.exe list`: list experiment ids.

    CLARA_FULL=1 enlarges training sets and sweeps. *)

let usage () =
  print_endline "usage: main.exe [list | micro | <experiment id>...]";
  print_endline "experiments:";
  List.iter
    (fun e -> Printf.printf "  %-8s %s\n" e.Experiments.Registry.id e.Experiments.Registry.title)
    Experiments.Registry.all

(* -- Bechamel micro-benchmarks: one kernel per table/figure -- *)

let micro_tests () =
  let open Bechamel in
  let spec = { Workload.default with Workload.n_packets = 200; Workload.proto = Workload.Mixed } in
  let mazu = Nf_lang.Corpus.find "Mazu-NAT" in
  let ported = Nicsim.Nic.port mazu spec in
  let demand = ported.Nicsim.Nic.demand in
  let ir = Nf_frontend.Lower.lower_element (Nf_lang.Corpus.find "iplookup_256") in
  let vocab = Clara.Vocab.create () in
  let prep = Clara.Prepare.prepare vocab mazu in
  let tokens =
    match List.filter (fun b -> Array.length b.Clara.Prepare.tokens > 4) prep.Clara.Prepare.blocks with
    | b :: _ -> b.Clara.Prepare.tokens
    | [] -> [| 1; 2; 3; 4 |]
  in
  let lstm = Mlkit.Lstm.create ~vocab:64 99 in
  let stats = Synth.Ast_stats.of_corpus (Nf_lang.Corpus.table2 ()) in
  let packets = Workload.generate spec in
  let algo = Clara.Algo_id.train ~corpus:(Clara.Algo_corpus.labeled ~negatives:10 ()) () in
  [ Test.make ~name:"fig1:port+measure Mazu-NAT"
      (Staged.stage (fun () -> ignore (Nicsim.Nic.measure ~cores:8 ported)));
    Test.make ~name:"table1:synthesize program"
      (Staged.stage (fun () -> ignore (Synth.Generator.generate ~stats ~seed:77 "bench_syn")));
    Test.make ~name:"table2:prepare element"
      (Staged.stage (fun () -> ignore (Clara.Prepare.prepare (Clara.Vocab.create ()) mazu)));
    Test.make ~name:"fig8:lstm inference"
      (Staged.stage (fun () -> ignore (Mlkit.Lstm.predict lstm tokens)));
    Test.make ~name:"fig9:classify element"
      (Staged.stage (fun () -> ignore (Clara.Algo_id.classify algo mazu)));
    Test.make ~name:"fig10:nfcc compile iplookup"
      (Staged.stage (fun () -> ignore (Nicsim.Nfcc.compile ir)));
    Test.make ~name:"fig11:core sweep"
      (Staged.stage (fun () -> ignore (Nicsim.Multicore.sweep demand)));
    Test.make ~name:"fig12:placement ILP"
      (Staged.stage (fun () -> ignore (Clara.Placement.solve mazu ported)));
    Test.make ~name:"fig13:coalescing suggest"
      (Staged.stage (fun () -> ignore (Clara.Coalesce.suggest mazu ported.Nicsim.Nic.profile)));
    Test.make ~name:"fig14:colocate pair"
      (Staged.stage (fun () -> ignore (Nicsim.Colocate.colocate demand demand)));
    Test.make ~name:"fig15:reconfigure placement"
      (Staged.stage (fun () -> ignore (Nicsim.Nic.reconfigure ported Nicsim.Nic.naive_port)));
    Test.make ~name:"fig16:host interp 200 pkts"
      (Staged.stage (fun () ->
           let interp = Nf_lang.Interp.create ~mode:Nf_lang.State.Nic mazu in
           ignore (Nf_lang.Interp.run interp packets))) ]

let run_micro () =
  let open Bechamel in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  print_endline "Bechamel micro-benchmarks (monotonic clock, ns/run):";
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"clara" [ test ]) in
      let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name v ->
          match Analyze.OLS.estimates v with
          | Some [ ns ] -> Printf.printf "  %-45s %14.0f ns/run\n%!" name ns
          | Some _ | None -> Printf.printf "  %-45s (no estimate)\n%!" name)
        results)
    (micro_tests ())

let () =
  match Array.to_list Sys.argv with
  | [] | _ :: [] ->
    Experiments.Registry.run_all ();
    print_newline ();
    print_endline "All experiments complete. See EXPERIMENTS.md for paper-vs-measured notes."
  | _ :: [ "list" ] -> usage ()
  | _ :: [ "micro" ] -> run_micro ()
  | _ :: ids ->
    List.iter
      (fun id ->
        match Experiments.Registry.find id with
        | Some e -> e.Experiments.Registry.run ()
        | None ->
          Printf.printf "unknown experiment %s\n" id;
          usage ();
          exit 1)
      ids
