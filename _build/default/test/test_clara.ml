(** Tests for the Clara core: vocabulary compaction, program preparation,
    the instruction predictor, algorithm identification, scale-out
    suggestion, state placement, coalescing, colocation, and the
    end-to-end pipeline. *)

open Nf_lang

let spec = { Workload.default with Workload.n_packets = 200; Workload.proto = Workload.Mixed }

(* -- Vocab -- *)

let test_vocab_abstraction () =
  let w1 =
    Clara.Vocab.word { Nf_ir.Ir.res = Some 1; op = Nf_ir.Ir.Add; args = [ Nf_ir.Ir.Reg 7; Nf_ir.Ir.Imm 3 ]; ty = Nf_ir.Ir.I32; annot = Nf_ir.Ir.Compute }
  in
  let w2 =
    Clara.Vocab.word { Nf_ir.Ir.res = Some 9; op = Nf_ir.Ir.Add; args = [ Nf_ir.Ir.Reg 2; Nf_ir.Ir.Imm 5 ]; ty = Nf_ir.Ir.I32; annot = Nf_ir.Ir.Compute }
  in
  Alcotest.(check string) "registers and small literals abstracted" w1 w2;
  let w3 =
    Clara.Vocab.word { Nf_ir.Ir.res = Some 1; op = Nf_ir.Ir.Add; args = [ Nf_ir.Ir.Reg 7; Nf_ir.Ir.Imm 100000 ]; ty = Nf_ir.Ir.I32; annot = Nf_ir.Ir.Compute }
  in
  Alcotest.(check bool) "magnitude classes distinguished" true (w1 <> w3)

let test_vocab_header_fields_concrete () =
  let load field =
    Clara.Vocab.word
      { Nf_ir.Ir.res = Some 1; op = Nf_ir.Ir.Load; args = [ Nf_ir.Ir.Hdr field ]; ty = Nf_ir.Ir.I16; annot = Nf_ir.Ir.Mem_packet }
  in
  Alcotest.(check bool) "field names kept concrete" true (load "ip_len" <> load "tcp_sport")

let test_vocab_freeze () =
  let v = Clara.Vocab.create () in
  let a = Clara.Vocab.index v "alpha" in
  Clara.Vocab.freeze v;
  let b = Clara.Vocab.index v "beta" in
  Alcotest.(check int) "unseen maps to UNK after freeze" 0 b;
  Alcotest.(check int) "seen index stable" a (Clara.Vocab.index v "alpha")

let test_vocab_compaction_small () =
  let v = Clara.Vocab.create () in
  List.iter (fun e -> ignore (Clara.Prepare.prepare v e)) (Corpus.table2 ());
  let size = Clara.Vocab.size v in
  Alcotest.(check bool) "vocabulary stays compact (few hundred words)" true
    (size > 30 && size < 600)

(* -- Prepare -- *)

let test_prepare_blocks () =
  let v = Clara.Vocab.create () in
  let prep = Clara.Prepare.prepare v (Corpus.find "Mazu-NAT") in
  Alcotest.(check bool) "several blocks" true (List.length prep.Clara.Prepare.blocks > 5);
  Alcotest.(check bool) "api set extracted" true
    (List.mem "map_find.int_map" prep.Clara.Prepare.api_set);
  Alcotest.(check bool) "memory estimate positive" true (Clara.Prepare.memory_estimate prep > 0)

(* -- Predictor -- *)

let quick_dataset = lazy (Clara.Predictor.synthesize_dataset ~n:25 ())
let quick_predictor = lazy (Clara.Predictor.train ~epochs:5 (Lazy.force quick_dataset))

let test_predictor_dataset_shape () =
  let ds = Lazy.force quick_dataset in
  Alcotest.(check bool) "many examples" true (Array.length ds.Clara.Predictor.examples > 100);
  Array.iter
    (fun e ->
      Alcotest.(check bool) "targets nonnegative" true
        (e.Clara.Predictor.nic_compute >= 0.0 && e.Clara.Predictor.ir_mem >= 0.0))
    ds.Clara.Predictor.examples

let test_predictor_better_than_nothing () =
  let m = Lazy.force quick_predictor in
  let wmape = Clara.Predictor.wmape_on_element m (Corpus.find "tcpack") in
  Alcotest.(check bool) "prediction error below 60%" true (wmape < 0.6)

let test_predictor_memory_accuracy () =
  List.iter
    (fun name ->
      let acc = Clara.Predictor.memory_accuracy (Corpus.find name) in
      Alcotest.(check bool) (name ^ " memory count accurate") true (acc >= 0.9))
    [ "Mazu-NAT"; "aggcounter"; "tcpgen"; "iplookup_256"; "UDPCount" ]

let test_predictor_predicts_all_blocks () =
  let m = Lazy.force quick_predictor in
  let preds = Clara.Predictor.predict_element m (Corpus.find "aggcounter") in
  let truth = Clara.Predictor.ground_truth (Corpus.find "aggcounter") in
  Alcotest.(check int) "one prediction per block" (List.length truth) (List.length preds);
  List.iter (fun (_, c, m) -> Alcotest.(check bool) "nonnegative" true (c >= 0.0 && m >= 0.0)) preds

(* -- Algo_id -- *)

let quick_algo = lazy (Clara.Algo_id.train ~corpus:(Clara.Algo_corpus.labeled ~negatives:25 ()) ())

let test_algo_id_positive_variants () =
  let m = Lazy.force quick_algo in
  (* held-in smoke: classify canonical members of each class *)
  let check_label name expected elt =
    Alcotest.(check string) name (Clara.Algo_corpus.label_name expected)
      (Clara.Algo_corpus.label_name (Clara.Algo_id.classify m elt))
  in
  check_label "crc variant" Clara.Algo_corpus.Crc
    (Clara.Algo_corpus.crc_reflected ~width:32 ~poly:0xedb88320 ~bytes:8 "probe_crc");
  check_label "lpm variant" Clara.Algo_corpus.Lpm
    (Clara.Algo_corpus.lpm_binary_trie ~depth:12 "probe_lpm")

let test_algo_id_negative () =
  let m = Lazy.force quick_algo in
  Alcotest.(check string) "plain NAT is not an accelerator algorithm" "none"
    (Clara.Algo_corpus.label_name (Clara.Algo_id.classify m (Corpus.find "tcpack")))

let test_algo_id_detect_in_nf () =
  let m = Lazy.force quick_algo in
  let hits = Clara.Algo_id.detect m (Corpus.find "cmsketch") in
  Alcotest.(check bool) "CRC detected inside cmsketch" true
    (List.exists (fun (_, l) -> l = Clara.Algo_corpus.Crc) hits)

let test_algo_components () =
  let comps = Clara.Algo_id.components (Corpus.find "wepdecap") in
  Alcotest.(check bool) "whole + loops" true (List.length comps >= 3)

let test_algo_manual_features () =
  let f_crc = Clara.Algo_id.manual_features (Clara.Algo_corpus.crc_reflected ~width:16 ~poly:0xa001 ~bytes:8 "p") in
  let f_plain = Clara.Algo_id.manual_features (Corpus.find "udpipencap") in
  Alcotest.(check bool) "crc is bitop-denser" true (f_crc.(0) > f_plain.(0));
  let f_lpm = Clara.Algo_id.manual_features (Clara.Algo_corpus.lpm_binary_trie ~depth:8 "p") in
  Alcotest.(check (float 0.0)) "lpm pointer-chases" 1.0 f_lpm.(5)

(* -- Scaleout -- *)

let test_scaleout_features_finite () =
  let d = (Nicsim.Nic.port (Corpus.find "Mazu-NAT") spec).Nicsim.Nic.demand in
  Array.iter
    (fun v -> Alcotest.(check bool) "finite" true (Float.is_finite v))
    (Clara.Scaleout.features d)

let test_scaleout_suggestion_in_range () =
  let samples = Clara.Scaleout.training_samples ~n_programs:8 () in
  let m = Clara.Scaleout.train ~samples () in
  let d = (Nicsim.Nic.port (Corpus.find "UDPCount") spec).Nicsim.Nic.demand in
  let c = Clara.Scaleout.suggest m d in
  Alcotest.(check bool) "within 1..60" true (c >= 1 && c <= 60)

(* -- Placement -- *)

let test_placement_feasible_and_better () =
  let elt = Corpus.find "UDPCount" in
  let s = { Workload.small_flows with Workload.n_packets = 300 } in
  let placement, clara = Clara.Placement.apply elt s in
  Alcotest.(check int) "every structure placed" (List.length elt.Ast.state) (List.length placement);
  Alcotest.(check bool) "capacity feasible" true
    (Nicsim.Mem.feasible placement ~sizes:(Nicsim.Nic.state_sizes elt));
  let naive = Nicsim.Nic.port elt s in
  let th p = (Nicsim.Nic.peak p).Nicsim.Multicore.throughput_mpps in
  Alcotest.(check bool) "beats all-EMEM" true (th clara > th naive)

let test_placement_hot_structures_fast () =
  let elt = Corpus.find "UDPCount" in
  let s = { Workload.small_flows with Workload.n_packets = 300 } in
  let placement, _ = Clara.Placement.apply elt s in
  (* the per-packet counter is tiny and hot: it must not live in EMEM *)
  Alcotest.(check bool) "counter above EMEM" true
    (List.assoc "counter" placement <> Nicsim.Mem.EMEM)

let test_placement_stateless () =
  let elt = Corpus.find "anonipaddr" in
  let ported = Nicsim.Nic.port elt spec in
  Alcotest.(check int) "no structures, empty placement" 0
    (List.length (Clara.Placement.solve elt ported))

(* -- Coalesce -- *)

let coalesce_spec = { spec with Workload.n_flows = 64; Workload.n_packets = 800 }

let test_coalesce_packs_are_scalars () =
  let elt = Corpus.find "tcpgen" in
  let ported = Nicsim.Nic.port elt coalesce_spec in
  let packs = Clara.Coalesce.suggest elt ported.Nicsim.Nic.profile in
  let scalars = Clara.Coalesce.scalar_names elt in
  List.iter
    (fun pack ->
      Alcotest.(check bool) "pack size >= 2" true (List.length pack >= 2);
      List.iter
        (fun v -> Alcotest.(check bool) (v ^ " is a scalar") true (List.mem v scalars))
        pack)
    packs;
  (* packs are disjoint *)
  let all = List.concat packs in
  Alcotest.(check int) "disjoint" (List.length all) (List.length (List.sort_uniq compare all))

let test_coalesce_co_accessed_variables_cluster () =
  let elt = Corpus.find "webtcp" in
  let ported = Nicsim.Nic.port elt coalesce_spec in
  let packs = Clara.Coalesce.suggest elt ported.Nicsim.Nic.profile in
  let together a b =
    List.exists (fun p -> List.mem a p && List.mem b p) packs
  in
  Alcotest.(check bool) "request-path variables pack together" true
    (together "req_count" "resp_count")

let test_coalesce_improves () =
  let elt = Corpus.find "webtcp" in
  let _, clara = Clara.Coalesce.apply elt coalesce_spec in
  let naive = Nicsim.Nic.port elt coalesce_spec in
  Alcotest.(check bool) "memory accesses reduced" true
    (Nicsim.Perf.total_mem_accesses clara.Nicsim.Nic.demand
    < Nicsim.Perf.total_mem_accesses naive.Nicsim.Nic.demand)

let test_coalesce_pack_bytes () =
  let elt = Corpus.find "tcpgen" in
  Alcotest.(check int) "pack byte size" 8 (Clara.Coalesce.pack_access_bytes elt [ "sport"; "dport" ])

(* -- Colocation -- *)

let test_colocation_features () =
  let d1 = (Nicsim.Nic.port (Corpus.find "Mazu-NAT") spec).Nicsim.Nic.demand in
  let d2 = (Nicsim.Nic.port (Corpus.find "anonipaddr") spec).Nicsim.Nic.demand in
  let f = Clara.Colocation.pair_features d1 d2 in
  Alcotest.(check int) "feature count" 10 (Array.length f);
  Array.iter (fun v -> Alcotest.(check bool) "finite" true (Float.is_finite v)) f

let test_colocation_training_and_ranking () =
  let demands =
    Array.of_list
      (List.map
         (fun name -> (Nicsim.Nic.port (Corpus.find name) spec).Nicsim.Nic.demand)
         [ "Mazu-NAT"; "anonipaddr"; "UDPCount"; "aggcounter"; "tcpack"; "dpi" ])
  in
  let groups = Clara.Colocation.make_groups ~n_groups:6 ~group_size:4 Clara.Colocation.Total_throughput demands in
  let m = Clara.Colocation.train ~groups demands in
  let acc = Clara.Colocation.topk_accuracy m groups 3 in
  Alcotest.(check bool) "top-3 on training groups" true (acc >= 0.5)

(* -- Insights / pipeline -- *)

let test_insights_render () =
  let insight =
    {
      Clara.Insights.nf_name = "x";
      workload = "w";
      predicted_compute = 10.0;
      predicted_memory = 2.0;
      api_calls = [ "ip_header" ];
      accel = [ { Clara.Insights.component = "x/loop0"; algorithm = Clara.Algo_corpus.Crc } ];
      suggested_cores = Some 12;
      placement = [ ("tbl", Nicsim.Mem.IMEM) ];
      packs = [ [ "a"; "b" ] ];
    }
  in
  let s = Clara.Insights.render insight in
  List.iter
    (fun needle ->
      let contains =
        let nl = String.length needle and hl = String.length s in
        let rec scan i = i + nl <= hl && (String.sub s i nl = needle || scan (i + 1)) in
        scan 0
      in
      Alcotest.(check bool) ("mentions " ^ needle) true contains)
    [ "CRC"; "12 cores"; "IMEM"; "{a, b}" ]

let test_insights_accel_apis () =
  let insight =
    {
      Clara.Insights.nf_name = "x"; workload = "w"; predicted_compute = 0.0;
      predicted_memory = 0.0; api_calls = []; suggested_cores = None; placement = []; packs = [];
      accel = [ { Clara.Insights.component = "c"; algorithm = Clara.Algo_corpus.Lpm } ];
    }
  in
  Alcotest.(check (list string)) "lpm apis" [ "flow_cache_lookup"; "lpm_lookup" ]
    (Clara.Insights.accel_apis insight)

let test_pipeline_end_to_end () =
  let m = Clara.Pipeline.train ~quick:true ~with_scaleout:false () in
  let insight = Clara.Pipeline.analyze m (Corpus.find "cmsketch") spec in
  Alcotest.(check bool) "compute predicted" true (insight.Clara.Insights.predicted_compute > 0.0);
  Alcotest.(check bool) "placement proposed" true (insight.Clara.Insights.placement <> []);
  Alcotest.(check bool) "report renders" true
    (String.length (Clara.Insights.render insight) > 100)


(* -- qcheck properties over synthesized NFs -- *)

let synth_elt seed =
  let stats = Synth.Ast_stats.of_corpus (Corpus.table2 ()) in
  Synth.Generator.generate ~stats ~seed (Printf.sprintf "qc_%d" seed)

let qspec = { Workload.default with Workload.n_packets = 60; Workload.proto = Workload.Mixed }

let prop_coalescing_never_increases_accesses =
  QCheck.Test.make ~name:"coalescing never increases memory accesses" ~count:20
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let elt = synth_elt seed in
      let naive = Nicsim.Nic.port elt qspec in
      let packs = Clara.Coalesce.suggest elt naive.Nicsim.Nic.profile in
      let packed =
        Nicsim.Nic.reconfigure naive { Nicsim.Nic.naive_port with Nicsim.Nic.packs }
      in
      Nicsim.Perf.total_mem_accesses packed.Nicsim.Nic.demand
      <= Nicsim.Perf.total_mem_accesses naive.Nicsim.Nic.demand +. 1e-9)

let prop_placement_not_worse_than_naive =
  QCheck.Test.make ~name:"ILP placement never below all-EMEM peak throughput" ~count:12
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let elt = synth_elt seed in
      QCheck.assume (elt.Ast.state <> []);
      let naive = Nicsim.Nic.port elt qspec in
      let placement = Clara.Placement.solve elt naive in
      let placed =
        Nicsim.Nic.reconfigure naive
          { Nicsim.Nic.naive_port with Nicsim.Nic.placement = Some placement }
      in
      let peak p = (Nicsim.Nic.peak p).Nicsim.Multicore.throughput_mpps in
      peak placed >= peak naive -. 1e-6)

let prop_packs_partition_scalars =
  QCheck.Test.make ~name:"suggested packs are disjoint scalar subsets" ~count:20
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let elt = synth_elt seed in
      let ported = Nicsim.Nic.port elt qspec in
      let packs = Clara.Coalesce.suggest elt ported.Nicsim.Nic.profile in
      let scalars = Clara.Coalesce.scalar_names elt in
      let members = List.concat packs in
      List.for_all (fun v -> List.mem v scalars) members
      && List.length members = List.length (List.sort_uniq compare members))

let () =
  Alcotest.run "clara"
    [ ( "vocab",
        [ Alcotest.test_case "abstraction" `Quick test_vocab_abstraction;
          Alcotest.test_case "header fields concrete" `Quick test_vocab_header_fields_concrete;
          Alcotest.test_case "freeze" `Quick test_vocab_freeze;
          Alcotest.test_case "compaction" `Quick test_vocab_compaction_small ] );
      ("prepare", [ Alcotest.test_case "blocks" `Quick test_prepare_blocks ]);
      ( "predictor",
        [ Alcotest.test_case "dataset shape" `Slow test_predictor_dataset_shape;
          Alcotest.test_case "beats nothing" `Slow test_predictor_better_than_nothing;
          Alcotest.test_case "memory accuracy" `Quick test_predictor_memory_accuracy;
          Alcotest.test_case "predicts all blocks" `Slow test_predictor_predicts_all_blocks ] );
      ( "algo_id",
        [ Alcotest.test_case "positive variants" `Slow test_algo_id_positive_variants;
          Alcotest.test_case "negative" `Slow test_algo_id_negative;
          Alcotest.test_case "detect in NF" `Slow test_algo_id_detect_in_nf;
          Alcotest.test_case "components" `Quick test_algo_components;
          Alcotest.test_case "manual features" `Quick test_algo_manual_features ] );
      ( "scaleout",
        [ Alcotest.test_case "features finite" `Quick test_scaleout_features_finite;
          Alcotest.test_case "suggestion in range" `Slow test_scaleout_suggestion_in_range ] );
      ( "placement",
        [ Alcotest.test_case "feasible and better" `Quick test_placement_feasible_and_better;
          Alcotest.test_case "hot structures fast" `Quick test_placement_hot_structures_fast;
          Alcotest.test_case "stateless" `Quick test_placement_stateless ] );
      ( "coalesce",
        [ Alcotest.test_case "packs are scalars" `Quick test_coalesce_packs_are_scalars;
          Alcotest.test_case "co-accessed cluster" `Quick test_coalesce_co_accessed_variables_cluster;
          Alcotest.test_case "improves" `Quick test_coalesce_improves;
          Alcotest.test_case "pack bytes" `Quick test_coalesce_pack_bytes ] );
      ( "colocation",
        [ Alcotest.test_case "features" `Quick test_colocation_features;
          Alcotest.test_case "training and ranking" `Slow test_colocation_training_and_ranking ] );
      ( "insights",
        [ Alcotest.test_case "render" `Quick test_insights_render;
          Alcotest.test_case "accel apis" `Quick test_insights_accel_apis;
          Alcotest.test_case "pipeline end-to-end" `Slow test_pipeline_end_to_end ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_coalescing_never_increases_accesses; prop_placement_not_worse_than_naive;
            prop_packs_partition_scalars ] ) ]
