(** Unit and property tests for the util library: PRNG, statistics,
    distribution distances, and table rendering. *)

let check_float ?(eps = 1e-9) name expected actual =
  Alcotest.(check (float eps)) name expected actual

(* -- Rng -- *)

let test_rng_deterministic () =
  let a = Util.Rng.create 42 and b = Util.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Util.Rng.int a 1000) (Util.Rng.int b 1000)
  done

let test_rng_seed_sensitivity () =
  let a = Util.Rng.create 1 and b = Util.Rng.create 2 in
  let xs = List.init 20 (fun _ -> Util.Rng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Util.Rng.int b 1_000_000) in
  Alcotest.(check bool) "different seeds differ" true (xs <> ys)

let test_rng_int_bounds () =
  let rng = Util.Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Util.Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_float_bounds () =
  let rng = Util.Rng.create 8 in
  for _ = 1 to 10_000 do
    let v = Util.Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_rng_int_rejects_nonpositive () =
  let rng = Util.Rng.create 9 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Util.Rng.int rng 0))

let test_rng_split_independent () =
  let parent = Util.Rng.create 5 in
  let child = Util.Rng.split parent in
  let xs = List.init 10 (fun _ -> Util.Rng.int parent 1000) in
  let ys = List.init 10 (fun _ -> Util.Rng.int child 1000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_weighted_index () =
  let rng = Util.Rng.create 11 in
  let counts = Array.make 3 0 in
  for _ = 1 to 3000 do
    let i = Util.Rng.weighted_index rng [| 1.0; 0.0; 3.0 |] in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero-weight bucket never chosen" 0 counts.(1);
  Alcotest.(check bool) "heavier bucket dominates" true (counts.(2) > counts.(0))

let test_shuffle_permutation () =
  let rng = Util.Rng.create 13 in
  let arr = Array.init 50 (fun i -> i) in
  Util.Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_sample_without_replacement () =
  let rng = Util.Rng.create 17 in
  let s = Util.Rng.sample_without_replacement rng 10 5 in
  Alcotest.(check int) "size" 5 (Array.length s);
  let distinct = List.sort_uniq compare (Array.to_list s) in
  Alcotest.(check int) "distinct" 5 (List.length distinct)

let test_gaussian_moments () =
  let rng = Util.Rng.create 19 in
  let xs = Array.init 20_000 (fun _ -> Util.Rng.gaussian rng) in
  Alcotest.(check bool) "mean near 0" true (abs_float (Util.Stats.mean xs) < 0.05);
  Alcotest.(check bool) "stddev near 1" true (abs_float (Util.Stats.stddev xs -. 1.0) < 0.05)

(* -- Stats -- *)

let test_mean_variance () =
  check_float "mean" 2.5 (Util.Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  check_float ~eps:1e-6 "variance" (5.0 /. 3.0) (Util.Stats.variance [| 1.0; 2.0; 3.0; 4.0 |])

let test_percentile () =
  let xs = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  check_float "median" 3.0 (Util.Stats.median xs);
  check_float "p0" 1.0 (Util.Stats.percentile 0.0 xs);
  check_float "p100" 5.0 (Util.Stats.percentile 100.0 xs);
  check_float "p25 interpolates" 2.0 (Util.Stats.percentile 25.0 xs)

let test_argminmax () =
  let xs = [| 3.0; 9.0; 1.0; 9.0 |] in
  Alcotest.(check int) "argmax first winner" 1 (Util.Stats.argmax xs);
  Alcotest.(check int) "argmin" 2 (Util.Stats.argmin xs)

let test_normalize () =
  let p = Util.Stats.normalize [| 1.0; 3.0 |] in
  check_float "first" 0.25 p.(0);
  check_float "second" 0.75 p.(1);
  let u = Util.Stats.normalize [| 0.0; 0.0 |] in
  check_float "zero array becomes uniform" 0.5 u.(0)

let test_histogram () =
  let h = Util.Stats.histogram ~card:3 [ 0; 1; 1; 2; 2; 2 ] in
  Alcotest.(check (float 0.0)) "bucket 2" 3.0 h.(2);
  Alcotest.check_raises "out of range" (Invalid_argument "Stats.histogram: out of range")
    (fun () -> ignore (Util.Stats.histogram ~card:2 [ 5 ]))

let test_correlation () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  let ys = Array.map (fun x -> (2.0 *. x) +. 1.0 |> fun v -> v) xs in
  check_float ~eps:1e-9 "perfect positive" 1.0 (Util.Stats.correlation xs ys);
  let zs = Array.map (fun x -> -.x) xs in
  check_float ~eps:1e-9 "perfect negative" (-1.0) (Util.Stats.correlation xs zs)

(* -- Distance -- *)

let test_distance_identical () =
  let p = [| 0.2; 0.3; 0.5 |] in
  List.iter
    (fun (name, v) ->
      Alcotest.(check bool) (name ^ " ~0 on identical") true (abs_float v < 1e-6))
    (Util.Distance.all p (Array.copy p))

let test_distance_orders () =
  let p = [| 0.5; 0.5; 0.0 |] in
  let near = [| 0.45; 0.55; 0.0 |] in
  let far = [| 0.05; 0.05; 0.9 |] in
  List.iter2
    (fun (name, dn) (_, df) ->
      Alcotest.(check bool) (name ^ " orders near<far") true (dn < df))
    (Util.Distance.all p near)
    (Util.Distance.all p far)

let test_js_symmetric () =
  let p = [| 0.7; 0.2; 0.1 |] and q = [| 0.1; 0.6; 0.3 |] in
  check_float ~eps:1e-9 "JS symmetric" (Util.Distance.jensen_shannon p q)
    (Util.Distance.jensen_shannon q p)

let test_variational_bounds () =
  let p = [| 1.0; 0.0 |] and q = [| 0.0; 1.0 |] in
  Alcotest.(check bool) "TV close to 2 for disjoint" true (Util.Distance.variational p q > 1.9)

(* -- Table -- *)

let test_table_render () =
  let s = Util.Table.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "33"; "4" ] ] in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "three lines plus separator" 4 (List.length lines);
  (* all lines equal width *)
  let widths = List.map String.length lines in
  Alcotest.(check bool) "aligned" true (List.for_all (fun w -> w = List.hd widths) widths)

(* -- qcheck properties -- *)

let prop_normalize_sums_to_one =
  QCheck.Test.make ~name:"normalize sums to 1" ~count:200
    QCheck.(array_of_size (Gen.int_range 1 20) (float_range 0.0 100.0))
    (fun xs ->
      let p = Util.Stats.normalize xs in
      abs_float (Array.fold_left ( +. ) 0.0 p -. 1.0) < 1e-6)

let prop_distance_nonnegative =
  QCheck.Test.make ~name:"all distances nonnegative" ~count:200
    QCheck.(pair (array_of_size (Gen.return 8) (float_range 0.0 10.0))
              (array_of_size (Gen.return 8) (float_range 0.0 10.0)))
    (fun (p, q) ->
      QCheck.assume (Array.exists (fun v -> v > 0.0) p);
      QCheck.assume (Array.exists (fun v -> v > 0.0) q);
      List.for_all (fun (_, d) -> d >= -1e-9) (Util.Distance.all p q))

let prop_percentile_within_range =
  QCheck.Test.make ~name:"percentile stays within min..max" ~count:200
    QCheck.(pair (float_range 0.0 100.0) (array_of_size (Gen.int_range 1 30) (float_range (-50.0) 50.0)))
    (fun (p, xs) ->
      let v = Util.Stats.percentile p xs in
      v >= Util.Stats.min_arr xs -. 1e-9 && v <= Util.Stats.max_arr xs +. 1e-9)

let () =
  Alcotest.run "util"
    [ ( "rng",
        [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "rejects nonpositive bound" `Quick test_rng_int_rejects_nonpositive;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "weighted index" `Quick test_weighted_index;
          Alcotest.test_case "shuffle is permutation" `Quick test_shuffle_permutation;
          Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
          Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments ] );
      ( "stats",
        [ Alcotest.test_case "mean/variance" `Quick test_mean_variance;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "argmin/argmax" `Quick test_argminmax;
          Alcotest.test_case "normalize" `Quick test_normalize;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "correlation" `Quick test_correlation ] );
      ( "distance",
        [ Alcotest.test_case "identical is ~zero" `Quick test_distance_identical;
          Alcotest.test_case "orders near/far" `Quick test_distance_orders;
          Alcotest.test_case "JS symmetric" `Quick test_js_symmetric;
          Alcotest.test_case "variational bounds" `Quick test_variational_bounds ] );
      ("table", [ Alcotest.test_case "render alignment" `Quick test_table_render ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_normalize_sums_to_one; prop_distance_nonnegative; prop_percentile_within_range ]
      ) ]
