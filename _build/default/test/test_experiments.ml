(** Integration tests over the experiment harness: the registry is
    complete, the cheap experiments' data functions produce well-formed
    rows, and the headline relationships the paper reports hold. *)

let test_registry_complete () =
  let ids = List.map (fun e -> e.Experiments.Registry.id) Experiments.Registry.all in
  Alcotest.(check (list string)) "every table and figure present"
    [ "fig1"; "table1"; "table2"; "fig8"; "fig9"; "fig10"; "fig11"; "fig12"; "fig13"; "fig14";
      "fig15"; "fig16"; "ablation"; "portability"; "partial"; "tco" ]
    ids;
  Alcotest.(check bool) "find works" true (Experiments.Registry.find "fig12" <> None);
  Alcotest.(check bool) "unknown id" true (Experiments.Registry.find "fig99" = None)

let test_fig1_variants () =
  let vs = Experiments.Exp_fig1.variants () in
  Alcotest.(check bool) "13 variants, 2-4 per NF" true (List.length vs = 13);
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (v.Experiments.Exp_fig1.nf ^ "/" ^ v.Experiments.Exp_fig1.desc ^ " latency positive")
        true
        (v.Experiments.Exp_fig1.latency_us > 0.0))
    vs;
  (* LPM with flow cache must be the fastest LPM variant *)
  let lpm = List.filter (fun v -> v.Experiments.Exp_fig1.nf = "LPM") vs in
  let cache = List.find (fun v -> v.Experiments.Exp_fig1.desc = "flow cache + engine") lpm in
  List.iter
    (fun v ->
      if v.Experiments.Exp_fig1.desc <> "flow cache + engine" then
        Alcotest.(check bool) "flow cache fastest" true
          (cache.Experiments.Exp_fig1.latency_us < v.Experiments.Exp_fig1.latency_us))
    lpm

let test_table1_clara_closer () =
  let rows = Experiments.Exp_table1.results ~n:25 () in
  Alcotest.(check int) "six metrics" 6 (List.length rows);
  List.iter
    (fun (metric, clara, baseline) ->
      Alcotest.(check bool) (metric ^ ": Clara closer") true (clara < baseline))
    rows

let test_table2_rows () =
  let rows = List.map Experiments.Exp_table2.row (Nf_lang.Corpus.table2 ()) in
  Alcotest.(check int) "17 rows" 17 (List.length rows);
  List.iter
    (fun row ->
      Alcotest.(check int) "six columns" 6 (List.length row);
      match row with
      | _ :: loc :: instr :: _ ->
        Alcotest.(check bool) "loc positive" true (int_of_string loc > 0);
        Alcotest.(check bool) "instr positive" true (int_of_string instr > 0)
      | _ -> Alcotest.fail "bad row")
    rows

let test_fig10_lpm_rows () =
  let rows = Experiments.Exp_fig10.lpm_rows () in
  Alcotest.(check int) "seven rule counts" 7 (List.length rows);
  List.iter
    (fun (_, (naive : Nicsim.Multicore.point), (clara : Nicsim.Multicore.point)) ->
      Alcotest.(check bool) "Clara port wins" true
        (clara.Nicsim.Multicore.latency_us < naive.Nicsim.Multicore.latency_us))
    rows;
  (* the naive port degrades as the table grows *)
  let first = match rows with (_, n, _) :: _ -> n | [] -> Alcotest.fail "rows" in
  let last = match List.rev rows with (_, n, _) :: _ -> n | [] -> Alcotest.fail "rows" in
  Alcotest.(check bool) "naive latency grows with rules" true
    (last.Nicsim.Multicore.latency_us > first.Nicsim.Multicore.latency_us)

let test_fig10_crc_rows () =
  List.iter
    (fun (_, (naive : Nicsim.Multicore.point), (clara : Nicsim.Multicore.point)) ->
      Alcotest.(check bool) "accelerated port at least as fast" true
        (clara.Nicsim.Multicore.throughput_mpps >= naive.Nicsim.Multicore.throughput_mpps))
    (Experiments.Exp_fig10.crc_accel_rows ())

let test_fig12_placement_wins () =
  let small = { Workload.small_flows with Workload.n_packets = 300 } in
  let rows = Experiments.Exp_fig12.compute ~spec:small () in
  List.iter
    (fun r ->
      Alcotest.(check bool) (r.Experiments.Exp_fig12.nf ^ " throughput no worse") true
        (r.Experiments.Exp_fig12.clara.Nicsim.Multicore.throughput_mpps
        >= r.Experiments.Exp_fig12.naive.Nicsim.Multicore.throughput_mpps -. 1e-6);
      Alcotest.(check bool) (r.Experiments.Exp_fig12.nf ^ " latency no worse") true
        (r.Experiments.Exp_fig12.clara.Nicsim.Multicore.latency_us
        <= r.Experiments.Exp_fig12.naive.Nicsim.Multicore.latency_us +. 1e-6))
    rows

let test_fig13_coalescing_helps () =
  let rows = Experiments.Exp_fig13.compute () in
  (* on aggregate, packing must not hurt and must help at least somewhere *)
  let improved =
    List.exists
      (fun r -> r.Experiments.Exp_fig13.clara_lat < r.Experiments.Exp_fig13.naive_lat -. 1e-9)
      rows
  in
  Alcotest.(check bool) "some latency improvement" true improved;
  List.iter
    (fun r ->
      Alcotest.(check bool) (r.Experiments.Exp_fig13.nf ^ " no regression") true
        (r.Experiments.Exp_fig13.clara_lat <= r.Experiments.Exp_fig13.naive_lat +. 1e-6))
    rows

let () =
  Alcotest.run "experiments"
    [ ( "registry",
        [ Alcotest.test_case "complete" `Quick test_registry_complete ] );
      ( "cheap experiments",
        [ Alcotest.test_case "fig1 variants" `Slow test_fig1_variants;
          Alcotest.test_case "table1 Clara closer" `Slow test_table1_clara_closer;
          Alcotest.test_case "table2 rows" `Quick test_table2_rows;
          Alcotest.test_case "fig10 lpm sweep" `Slow test_fig10_lpm_rows;
          Alcotest.test_case "fig10 crc accel" `Slow test_fig10_crc_rows;
          Alcotest.test_case "fig12 placement wins" `Slow test_fig12_placement_wins;
          Alcotest.test_case "fig13 coalescing helps" `Slow test_fig13_coalescing_helps ] ) ]
