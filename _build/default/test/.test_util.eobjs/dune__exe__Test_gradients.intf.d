test/test_gradients.mli:
