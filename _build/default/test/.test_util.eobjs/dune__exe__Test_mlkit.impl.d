test/test_mlkit.ml: Alcotest Array Automl Bayes Cnn Crossval Float Gen La List Lstm Metrics Mlkit Nn QCheck QCheck_alcotest Rank Simple String Tree Util
