test/test_ir.ml: Alcotest Array Ast Build Builder Corpus Interp Ir List Nf_frontend Nf_ir Nf_lang Nicsim Printf QCheck QCheck_alcotest State String Synth Workload
