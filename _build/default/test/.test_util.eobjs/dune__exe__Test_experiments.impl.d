test/test_experiments.ml: Alcotest Experiments List Nf_lang Nicsim Workload
