test/test_clara.ml: Alcotest Array Ast Clara Corpus Float Lazy List Nf_ir Nf_lang Nicsim Printf QCheck QCheck_alcotest String Synth Workload
