test/test_corpus_behavior.ml: Alcotest Array Char Corpus Interp List Nf_lang Packet State
