test/test_p4lite.ml: Alcotest Array Ast Clara Interp List Nf_frontend Nf_ir Nf_lang Nicsim P4lite Packet State Workload
