test/test_ilp.ml: Alcotest Array Ilp List QCheck QCheck_alcotest Util
