test/test_nf_lang.ml: Alcotest Api Ast Build Corpus Hashtbl Interp List Nf_lang Packet Pp Printf QCheck QCheck_alcotest State String Synth Workload
