test/test_corpus_behavior.mli:
