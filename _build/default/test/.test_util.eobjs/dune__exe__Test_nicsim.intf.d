test/test_nicsim.mli:
