test/test_gradients.ml: Alcotest Array Cnn List Lstm Mlkit Nn Printf Util
