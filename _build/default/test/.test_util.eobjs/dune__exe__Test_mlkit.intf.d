test/test_mlkit.mli:
