test/test_reports.ml: Alcotest Ast Clara Corpus Interp List Nf_lang Profile_report State String Workload
