test/test_integration.ml: Alcotest Array Ast Clara Corpus Filename Interp List Nf_lang Nicsim State Sys Workload
