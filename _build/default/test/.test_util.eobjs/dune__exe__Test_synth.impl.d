test/test_synth.ml: Alcotest Array Ast Clara Corpus Interp List Nf_frontend Nf_ir Nf_lang Nicsim Pp State Synth Util Workload
