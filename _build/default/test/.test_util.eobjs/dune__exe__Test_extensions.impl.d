test/test_extensions.ml: Alcotest Array Ast Build Clara Corpus Filename Float Interp List Nf_frontend Nf_ir Nf_lang Nicsim Packet Printf QCheck QCheck_alcotest State Synth Sys Workload
