test/test_clara.mli:
