test/test_nf_lang.mli:
