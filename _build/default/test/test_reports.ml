(** Tests for the human-facing report modules: workload profile reports
    and the CLI-visible rendering paths. *)

open Nf_lang

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let profile_of name =
  let elt = Corpus.find name in
  let spec = { Workload.default with Workload.n_packets = 150; Workload.proto = Workload.Mixed } in
  let interp = Interp.create ~mode:State.Nic elt in
  (elt, Interp.run interp (Workload.generate spec))

let test_hot_statements_ordered () =
  let _, p = profile_of "firewall" in
  let hot = Profile_report.hot_statements ~n:5 p in
  Alcotest.(check bool) "nonempty" true (hot <> []);
  let rec descending = function
    | (_, a) :: ((_, b) :: _ as rest) -> a >= b && descending rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted by count" true (descending hot)

let test_structure_frequencies () =
  let elt, p = profile_of "UDPCount" in
  let freqs = Profile_report.structure_frequencies elt p in
  Alcotest.(check int) "one row per structure" (List.length elt.Ast.state) (List.length freqs);
  (* the per-packet counter is among the hottest scalars *)
  (match freqs with
  | (_, top) :: _ -> Alcotest.(check bool) "hottest has accesses" true (top > 0.0)
  | [] -> Alcotest.fail "no rows");
  let rec descending = function
    | (_, a) :: ((_, b) :: _ as rest) -> a >= b && descending rest
    | _ -> true
  in
  Alcotest.(check bool) "hottest first" true (descending freqs)

let test_statement_text_resolves () =
  let elt, p = profile_of "aggcounter" in
  match Profile_report.hot_statements ~n:1 p with
  | (sid, _) :: _ ->
    let text = Profile_report.statement_text elt sid in
    Alcotest.(check bool) "real source text" true (text <> "<synthetic>")
  | [] -> Alcotest.fail "no hot statements"

let test_render_mentions_key_facts () =
  let elt, p = profile_of "Mazu-NAT" in
  let s = Profile_report.render elt p in
  List.iter
    (fun needle -> Alcotest.(check bool) ("mentions " ^ needle) true (contains s needle))
    [ "Mazu-NAT"; "150 packets"; "int_map"; "probes per operation"; "framework API calls" ]

let test_render_stateless () =
  let elt, p = profile_of "anonipaddr" in
  let s = Profile_report.render elt p in
  Alcotest.(check bool) "flags statelessness" true (contains s "stateless element")

let test_insight_summary () =
  let elt = Corpus.find "cmsketch" in
  let insight =
    {
      Clara.Insights.nf_name = elt.Ast.name;
      workload = "w";
      predicted_compute = 1.0;
      predicted_memory = 1.0;
      api_calls = [];
      accel = [];
      suggested_cores = Some 7;
      placement = [];
      packs = [];
    }
  in
  let s = Clara.Insights.summary insight elt in
  Alcotest.(check bool) "mentions cores" true (contains s "7 cores");
  Alcotest.(check bool) "mentions structures" true (contains s "4 state structures")

let () =
  Alcotest.run "reports"
    [ ( "profile_report",
        [ Alcotest.test_case "hot statements ordered" `Quick test_hot_statements_ordered;
          Alcotest.test_case "structure frequencies" `Quick test_structure_frequencies;
          Alcotest.test_case "statement text" `Quick test_statement_text_resolves;
          Alcotest.test_case "render key facts" `Quick test_render_mentions_key_facts;
          Alcotest.test_case "stateless rendering" `Quick test_render_stateless ] );
      ("insights", [ Alcotest.test_case "summary" `Quick test_insight_summary ]) ]
