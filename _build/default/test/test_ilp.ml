(** Tests for the 0/1 ILP branch-and-bound solver, including an exactness
    property against brute-force enumeration. *)

let mk ~n_items ~n_bins ~cost ~size ~capacity =
  { Ilp.n_items; n_bins; cost; size; capacity }

let test_trivial () =
  let p = mk ~n_items:0 ~n_bins:2 ~cost:(fun _ _ -> 0.0) ~size:(fun _ -> 1) ~capacity:(fun _ -> 1) in
  match Ilp.solve p with
  | Some { Ilp.assignment; objective } ->
    Alcotest.(check int) "empty assignment" 0 (Array.length assignment);
    Alcotest.(check (float 0.0)) "zero objective" 0.0 objective
  | None -> Alcotest.fail "empty problem is feasible"

let test_picks_cheapest () =
  let p =
    mk ~n_items:1 ~n_bins:3
      ~cost:(fun _ b -> [| 5.0; 1.0; 3.0 |].(b))
      ~size:(fun _ -> 1)
      ~capacity:(fun _ -> 10)
  in
  match Ilp.solve p with
  | Some { Ilp.assignment; objective } ->
    Alcotest.(check int) "cheapest bin" 1 assignment.(0);
    Alcotest.(check (float 1e-9)) "objective" 1.0 objective
  | None -> Alcotest.fail "feasible"

let test_capacity_forces_spread () =
  (* both items prefer bin 0, but it only fits one *)
  let p =
    mk ~n_items:2 ~n_bins:2
      ~cost:(fun _ b -> if b = 0 then 1.0 else 10.0)
      ~size:(fun _ -> 1)
      ~capacity:(fun b -> if b = 0 then 1 else 10)
  in
  match Ilp.solve p with
  | Some { Ilp.assignment; objective } ->
    Alcotest.(check bool) "one in each" true (assignment.(0) <> assignment.(1));
    Alcotest.(check (float 1e-9)) "objective 11" 11.0 objective
  | None -> Alcotest.fail "feasible"

let test_infeasible () =
  let p =
    mk ~n_items:2 ~n_bins:1 ~cost:(fun _ _ -> 1.0) ~size:(fun _ -> 2) ~capacity:(fun _ -> 3)
  in
  Alcotest.(check bool) "too small bin" true (Ilp.solve p = None)

let test_forbidden_assignment () =
  let p =
    mk ~n_items:1 ~n_bins:2
      ~cost:(fun _ b -> if b = 0 then infinity else 2.0)
      ~size:(fun _ -> 1)
      ~capacity:(fun _ -> 10)
  in
  match Ilp.solve p with
  | Some { Ilp.assignment; _ } -> Alcotest.(check int) "avoids forbidden bin" 1 assignment.(0)
  | None -> Alcotest.fail "bin 1 is allowed"

let test_enumerate_counts () =
  let p =
    mk ~n_items:2 ~n_bins:2 ~cost:(fun _ _ -> 1.0) ~size:(fun _ -> 1) ~capacity:(fun _ -> 10)
  in
  Alcotest.(check int) "2^2 assignments" 4 (List.length (Ilp.enumerate p))

let prop_solve_matches_enumeration =
  QCheck.Test.make ~name:"branch-and-bound finds the enumerated optimum" ~count:150
    QCheck.(triple (int_range 1 5) (int_range 1 4) (int_range 0 1_000_000))
    (fun (n_items, n_bins, seed) ->
      let rng = Util.Rng.create seed in
      let costs =
        Array.init n_items (fun _ -> Array.init n_bins (fun _ -> Util.Rng.float_range rng 0.0 50.0))
      in
      let sizes = Array.init n_items (fun _ -> 1 + Util.Rng.int rng 5) in
      let caps = Array.init n_bins (fun _ -> 1 + Util.Rng.int rng 10) in
      let p =
        mk ~n_items ~n_bins
          ~cost:(fun i b -> costs.(i).(b))
          ~size:(fun i -> sizes.(i))
          ~capacity:(fun b -> caps.(b))
      in
      let solved = Ilp.solve p in
      let all = Ilp.enumerate p in
      match (solved, all) with
      | None, [] -> true
      | Some { Ilp.objective; _ }, _ :: _ ->
        let best = List.fold_left (fun acc s -> min acc s.Ilp.objective) infinity all in
        abs_float (objective -. best) < 1e-6
      | Some _, [] | None, _ :: _ -> false)

let prop_solution_respects_capacity =
  QCheck.Test.make ~name:"solutions respect capacities" ~count:150
    QCheck.(pair (int_range 1 6) (int_range 0 1_000_000))
    (fun (n_items, seed) ->
      let rng = Util.Rng.create seed in
      let n_bins = 3 in
      let sizes = Array.init n_items (fun _ -> 1 + Util.Rng.int rng 4) in
      let caps = Array.init n_bins (fun _ -> 2 + Util.Rng.int rng 8) in
      let p =
        mk ~n_items ~n_bins
          ~cost:(fun i b -> float_of_int ((i * 7) + b))
          ~size:(fun i -> sizes.(i))
          ~capacity:(fun b -> caps.(b))
      in
      match Ilp.solve p with
      | None -> true
      | Some { Ilp.assignment; _ } ->
        Array.for_all
          (fun b ->
            let used = ref 0 in
            Array.iteri (fun i bin -> if bin = b then used := !used + sizes.(i)) assignment;
            !used <= caps.(b))
          (Array.init n_bins (fun b -> b)))

let () =
  Alcotest.run "ilp"
    [ ( "solve",
        [ Alcotest.test_case "trivial" `Quick test_trivial;
          Alcotest.test_case "picks cheapest" `Quick test_picks_cheapest;
          Alcotest.test_case "capacity forces spread" `Quick test_capacity_forces_spread;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "forbidden assignment" `Quick test_forbidden_assignment;
          Alcotest.test_case "enumerate counts" `Quick test_enumerate_counts ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_solve_matches_enumeration; prop_solution_respects_capacity ] ) ]
