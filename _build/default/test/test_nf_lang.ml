(** Tests for the NF language substrate: packet model, runtime state (Click
    vs NIC semantics), the host interpreter and its profiling, the corpus,
    and the pretty printer. *)

open Nf_lang

(* -- Packet -- *)

let test_packet_field_masking () =
  let p = Packet.create () in
  Packet.set_field p Ast.Ip_ttl 0x1ff;
  Alcotest.(check int) "8-bit field masked" 0xff (Packet.get_field p Ast.Ip_ttl);
  Packet.set_field p Ast.Tcp_sport 0x12345;
  Alcotest.(check int) "16-bit field masked" 0x2345 (Packet.get_field p Ast.Tcp_sport)

let test_packet_length () =
  let p = Packet.create ~payload_len:10 () in
  Alcotest.(check int) "eth + ip_len" (14 + 40 + 10) (Packet.length p)

let test_packet_payload_bounds () =
  let p = Packet.create ~payload_len:4 () in
  Packet.set_payload_byte p 2 0xAB;
  Alcotest.(check int) "read back" 0xAB (Packet.get_payload_byte p 2);
  Alcotest.(check int) "oob read is 0" 0 (Packet.get_payload_byte p 99);
  Packet.set_payload_byte p 99 1 (* must not raise *)

let test_flow_key_uses_proto () =
  let p = Packet.create () in
  p.Packet.ip_proto <- Packet.udp_proto;
  p.Packet.udp_sport <- 1111;
  let _, _, proto, sport, _ = Packet.flow_key p in
  Alcotest.(check int) "udp proto" Packet.udp_proto proto;
  Alcotest.(check int) "udp sport" 1111 sport

let test_ip_checksum_changes () =
  let p = Packet.create () in
  let c1 = Packet.ip_checksum p in
  p.Packet.ip_ttl <- p.Packet.ip_ttl - 1;
  let c2 = Packet.ip_checksum p in
  Alcotest.(check bool) "checksum depends on ttl" true (c1 <> c2);
  Alcotest.(check bool) "16-bit" true (c1 >= 0 && c1 < 0x10000)

(* -- State: maps in Host vs Nic mode -- *)

let map_decl = Build.map_decl "m" ~key_widths:[ 32; 32 ] ~val_fields:[ ("v", 32) ] ~capacity:64

let test_host_map_roundtrip () =
  let st = State.create ~mode:State.Host [ map_decl ] in
  let m = State.map_of st "m" in
  ignore (State.insert m [| 1; 2 |] [| 42 |]);
  let found, _ = State.find m [| 1; 2 |] in
  Alcotest.(check bool) "found" true found;
  Alcotest.(check int) "value" 42 (State.read m "v");
  let missing, _ = State.find m [| 9; 9 |] in
  Alcotest.(check bool) "missing" false missing

let test_host_map_grows () =
  let st = State.create ~mode:State.Host [ map_decl ] in
  let m = State.map_of st "m" in
  for i = 0 to 199 do
    ignore (State.insert m [| i; i |] [| i |])
  done;
  Alcotest.(check int) "all inserted (elastic)" 200 (State.map_size m);
  let found, _ = State.find m [| 150; 150 |] in
  Alcotest.(check bool) "finds after growth" true found

let test_nic_map_bounded () =
  let st = State.create ~mode:State.Nic [ map_decl ] in
  let m = State.map_of st "m" in
  for i = 0 to 199 do
    ignore (State.insert m [| i; i |] [| i |])
  done;
  Alcotest.(check bool) "overflow drops inserts" true (State.map_size m <= 64)

let test_nic_map_probe_bound () =
  let st = State.create ~mode:State.Nic [ map_decl ] in
  let m = State.map_of st "m" in
  for i = 0 to 63 do
    ignore (State.insert m [| i; 0 |] [| i |])
  done;
  let _, probes = State.find m [| 1234; 5678 |] in
  Alcotest.(check bool) "probes bounded by bucket slots" true
    (probes <= State.nic_bucket_slots)

let test_map_update_in_place () =
  let st = State.create ~mode:State.Nic [ map_decl ] in
  let m = State.map_of st "m" in
  ignore (State.insert m [| 7; 7 |] [| 1 |]);
  ignore (State.insert m [| 7; 7 |] [| 2 |]);
  Alcotest.(check int) "size stays 1" 1 (State.map_size m);
  ignore (State.find m [| 7; 7 |]);
  Alcotest.(check int) "updated" 2 (State.read m "v")

let test_map_erase_invalidates () =
  let st = State.create ~mode:State.Nic [ map_decl ] in
  let m = State.map_of st "m" in
  ignore (State.insert m [| 3; 4 |] [| 9 |]);
  ignore (State.find m [| 3; 4 |]);
  State.erase m;
  let found, _ = State.find m [| 3; 4 |] in
  Alcotest.(check bool) "erased" false found;
  Alcotest.(check int) "size decremented" 0 (State.map_size m)

let test_map_write_field () =
  let st = State.create ~mode:State.Host [ map_decl ] in
  let m = State.map_of st "m" in
  ignore (State.insert m [| 1; 1 |] [| 5 |]);
  ignore (State.find m [| 1; 1 |]);
  State.write m "v" 77;
  Alcotest.(check int) "field written" 77 (State.read m "v")

let test_vector_modes () =
  let decl = Build.vector "vec" ~capacity:4 in
  let host = State.create ~mode:State.Host [ decl ] in
  let hv = State.vec_of host "vec" in
  for i = 1 to 10 do
    State.vec_append hv i
  done;
  Alcotest.(check int) "host vector grows" 10 (State.vec_length hv);
  let nic = State.create ~mode:State.Nic [ decl ] in
  let nv = State.vec_of nic "vec" in
  for i = 1 to 10 do
    State.vec_append nv i
  done;
  Alcotest.(check int) "nic vector capped" 4 (State.vec_length nv);
  Alcotest.(check int) "get" 2 (State.vec_get nv 1);
  State.vec_set nv 1 99;
  Alcotest.(check int) "set" 99 (State.vec_get nv 1);
  Alcotest.(check int) "oob get is 0" 0 (State.vec_get nv 50)

(* -- Interpreter -- *)

let counter_element () =
  let open Build in
  element "counter" ~state:[ scalar "count" ]
    [ set_g "count" (g "count" + i 1);
      when_ (g "count" > i 2) [ drop ];
      emit 0 ]

let test_interp_counts_and_verdicts () =
  let interp = Interp.create (counter_element ()) in
  let pkts = List.init 5 (fun _ -> Packet.create ()) in
  let profile = Interp.run interp pkts in
  Alcotest.(check int) "packets" 5 profile.Interp.packets;
  Alcotest.(check int) "first two emitted" 2 profile.Interp.emitted;
  Alcotest.(check int) "rest dropped" 3 profile.Interp.dropped;
  Alcotest.(check int) "count accessed every packet" (5 + 5 + 5)
    (Interp.global_accesses profile "count")

let loop_element () =
  let open Build in
  element "looper" ~state:[ array "tbl" 16 ]
    [ for_ "j" (i 0) (i 4) [ arr_set "tbl" (l "j") (l "j" + i 1) ]; emit 0 ]

let test_interp_loop_profile () =
  let elt = loop_element () in
  let interp = Interp.create elt in
  let profile = Interp.run interp [ Packet.create (); Packet.create () ] in
  (* the For statement sid *)
  let for_sid =
    match (List.hd elt.Ast.handler).Ast.node with
    | Ast.For (_, _, _, _) -> (List.hd elt.Ast.handler).Ast.sid
    | _ -> Alcotest.fail "expected For"
  in
  Alcotest.(check int) "cond evaluated (iters+1) per packet" (2 * 5)
    (Interp.cond_count profile for_sid);
  Alcotest.(check int) "array written 4x per packet" 8 (Interp.global_accesses profile "tbl")

let test_interp_while_fuel () =
  let open Build in
  let elt = element "spin" [ let_ "x" (i 1); while_ (l "x" > i 0) [ let_ "x" (i 1) ] ] in
  let interp = Interp.create elt in
  Alcotest.check_raises "fuel exhausted" (Interp.Fuel_exhausted "spin") (fun () ->
      ignore (Interp.push interp (Packet.create ())))

let test_interp_subroutine_and_return () =
  let open Build in
  let elt =
    element "subby" ~state:[ scalar "hits" ]
      ~subs:[ ("bump", [ set_g "hits" (g "hits" + i 1); return_ ]) ]
      [ call "bump"; set_g "hits" (g "hits" + i 100); emit 0 ]
  in
  let interp = Interp.create elt in
  (match Interp.push interp (Packet.create ()) with
  | Interp.Dropped -> ()
  | Interp.Emitted _ -> Alcotest.fail "return should have skipped the emit");
  Alcotest.(check int) "only sub ran" 1 !(State.scalar_ref interp.Interp.state "hits")

let test_interp_header_mutation () =
  let elt =
    let open Build in
    element "ttl" [ set_hdr Ast.Ip_ttl (hdr Ast.Ip_ttl - i 1); emit 0 ]
  in
  let interp = Interp.create elt in
  let p = Packet.create () in
  let before = p.Packet.ip_ttl in
  ignore (Interp.push interp p);
  Alcotest.(check int) "ttl decremented" (before - 1) p.Packet.ip_ttl

let test_interp_short_circuit () =
  let open Build in
  (* the right operand of && must not be evaluated when the left is false:
     here it would read a global, which we can observe in the profile *)
  let elt =
    element "sc" ~state:[ scalar "guard" ]
      [ when_ (i 0 <> i 0 && g "guard" = i 1) [ drop ]; emit 0 ]
  in
  let interp = Interp.create elt in
  let profile = Interp.run interp [ Packet.create () ] in
  Alcotest.(check int) "guard not read" 0 (Interp.global_accesses profile "guard")

let test_interp_unbound_local_reads_zero () =
  let open Build in
  let elt =
    element "uninit" [ when_ (hdr Ast.Ip_ttl > i 200) [ let_ "x" (i 5) ]; if_ (l "x" = i 0) [ emit 0 ] [ drop ] ]
  in
  let interp = Interp.create elt in
  match Interp.push interp (Packet.create ()) with
  | Interp.Emitted 0 -> ()
  | Interp.Emitted _ | Interp.Dropped -> Alcotest.fail "uninitialized local should read 0"

let test_interp_mean_probes () =
  let elt =
    let open Build in
    element "prober"
      ~state:[ map_decl "flows" ~key_widths:[ 32 ] ~val_fields:[ ("c", 32) ] ~capacity:64 ]
      [ map_find "flows" [ hdr Ast.Ip_src ] "hit";
        when_ (l "hit" = i 0) [ map_insert "flows" [ hdr Ast.Ip_src ] [ i 1 ] ];
        emit 0 ]
  in
  let interp = Interp.create ~mode:State.Nic elt in
  let spec = { Workload.default with Workload.n_packets = 200 } in
  let profile = Interp.run interp (Workload.generate spec) in
  let probes = Interp.mean_probes profile "flows" in
  Alcotest.(check bool) "probes within [1, bucket slots]" true
    (probes >= 1.0 && probes <= float_of_int State.nic_bucket_slots)

(* -- Api -- *)

let test_api_crc_nonzero_and_deterministic () =
  let p = Packet.create ~payload_len:16 () in
  Packet.set_payload_byte p 0 0x31;
  let a = Api.eval_expr ~time:0 p "crc32_payload" [ 0; 8 ] in
  let b = Api.eval_expr ~time:5 p "crc32_payload" [ 0; 8 ] in
  Alcotest.(check int) "deterministic" a b;
  Packet.set_payload_byte p 1 0xFF;
  let c = Api.eval_expr ~time:0 p "crc32_payload" [ 0; 8 ] in
  Alcotest.(check bool) "sensitive to payload" true (a <> c)

let test_api_hash32_order_sensitive () =
  let p = Packet.create () in
  let a = Api.eval_expr ~time:0 p "hash32" [ 1; 2 ] in
  let b = Api.eval_expr ~time:0 p "hash32" [ 2; 1 ] in
  Alcotest.(check bool) "order matters" true (a <> b)

let test_api_checksum_update () =
  let p = Packet.create () in
  p.Packet.ip_csum <- 0;
  Api.exec_stmt p "checksum_update_ip" [];
  Alcotest.(check bool) "checksum stored" true (p.Packet.ip_csum <> 0)

let test_api_classify_total () =
  List.iter
    (fun name -> ignore (Api.classify name))
    (Api.expr_apis @ Api.stmt_apis @ [ "ip_header"; "map_find"; "vec_get"; "send" ])

(* -- Corpus -- *)

let test_corpus_names_unique () =
  let names = List.map (fun e -> e.Ast.name) (Corpus.all ()) in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_corpus_table2_count () =
  Alcotest.(check int) "17 Table-2 elements" 17 (List.length (Corpus.table2 ()))

let test_corpus_all_interpret () =
  let spec = { Workload.default with Workload.n_packets = 100; Workload.proto = Workload.Mixed } in
  let packets = Workload.generate spec in
  List.iter
    (fun elt ->
      let interp = Interp.create ~mode:State.Nic elt in
      let profile = Interp.run interp packets in
      Alcotest.(check int) (elt.Ast.name ^ " processed all") 100 profile.Interp.packets)
    (Corpus.all ())

let test_corpus_find_parameterized () =
  let e = Corpus.find "iplookup_64" in
  Alcotest.(check string) "parameterized lookup" "iplookup_64" e.Ast.name;
  Alcotest.check_raises "unknown element"
    (Failure "Corpus.find: unknown element nosuch") (fun () -> ignore (Corpus.find "nosuch"))

let test_corpus_stateful_flags () =
  Alcotest.(check bool) "anonipaddr stateless" false (Ast.is_stateful (Corpus.find "anonipaddr"));
  Alcotest.(check bool) "Mazu-NAT stateful" true (Ast.is_stateful (Corpus.find "Mazu-NAT"))

let test_state_sizes_positive () =
  List.iter
    (fun elt ->
      List.iter
        (fun d ->
          Alcotest.(check bool)
            (elt.Ast.name ^ "/" ^ Ast.state_name d ^ " size > 0")
            true
            (Ast.state_size_bytes d > 0))
        elt.Ast.state)
    (Corpus.all ())

(* -- Pp -- *)

let test_pp_loc_positive () =
  List.iter
    (fun elt ->
      let loc = Pp.loc elt in
      Alcotest.(check bool) (elt.Ast.name ^ " loc reasonable") true (loc > 3))
    (Corpus.all ())

let test_pp_contains_class () =
  let s = Pp.to_string (Corpus.find "cmsketch") in
  Alcotest.(check bool) "class header" true
    (String.length s > 0 && String.sub s 0 5 = "class")

(* -- workload -- *)

let test_workload_deterministic () =
  let spec = { Workload.default with Workload.n_packets = 50 } in
  let a = Workload.generate spec and b = Workload.generate spec in
  List.iter2
    (fun (x : Packet.t) (y : Packet.t) ->
      Alcotest.(check bool) "same flow key" true (Packet.flow_key x = Packet.flow_key y))
    a b

let test_workload_flow_count () =
  let spec = { Workload.default with Workload.n_packets = 500; Workload.n_flows = 4 } in
  let pkts = Workload.generate spec in
  let keys = List.sort_uniq compare (List.map Packet.flow_key pkts) in
  Alcotest.(check bool) "at most 4 flows" true (List.length keys <= 4)

let test_workload_cache_hit_ratio () =
  Alcotest.(check (float 1e-9)) "all flows fit" 1.0
    (Workload.cache_hit_ratio { Workload.default with Workload.n_flows = 10 } ~cache_flows:100);
  let r =
    Workload.cache_hit_ratio
      { Workload.default with Workload.n_flows = 1000; Workload.flow_dist = Workload.Uniform }
      ~cache_flows:100
  in
  Alcotest.(check (float 1e-9)) "uniform ratio" 0.1 r;
  let z =
    Workload.cache_hit_ratio
      { Workload.default with Workload.n_flows = 1000; Workload.flow_dist = Workload.Zipf 1.2 }
      ~cache_flows:100
  in
  Alcotest.(check bool) "zipf beats uniform" true (z > r)

let test_workload_syn_first () =
  let spec = { Workload.default with Workload.n_packets = 100; Workload.n_flows = 5 } in
  let pkts = Workload.generate spec in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (p : Packet.t) ->
      let key = Packet.flow_key p in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        Alcotest.(check int) "first packet of a flow is SYN" 0x02 p.Packet.tcp_flags
      end)
    pkts

(* -- qcheck: interpreter robustness over synthesized programs -- *)

let prop_synth_programs_interpret =
  QCheck.Test.make ~name:"synthesized programs interpret safely" ~count:25
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let stats = Synth.Ast_stats.of_corpus (Corpus.table2 ()) in
      let elt = Synth.Generator.generate ~stats ~seed (Printf.sprintf "q_%d" seed) in
      let interp = Interp.create ~mode:State.Nic elt in
      let spec = { Workload.default with Workload.n_packets = 30 } in
      let profile = Interp.run interp (Workload.generate spec) in
      profile.Interp.packets = 30)

let prop_map_find_after_insert =
  QCheck.Test.make ~name:"nic map: find succeeds right after insert (no overflow)" ~count:100
    QCheck.(pair (int_range 0 1000) (int_range 0 1000))
    (fun (a, b) ->
      let st = State.create ~mode:State.Nic [ map_decl ] in
      let m = State.map_of st "m" in
      ignore (State.insert m [| a; b |] [| a + b |]);
      fst (State.find m [| a; b |]))

let () =
  Alcotest.run "nf_lang"
    [ ( "packet",
        [ Alcotest.test_case "field masking" `Quick test_packet_field_masking;
          Alcotest.test_case "length" `Quick test_packet_length;
          Alcotest.test_case "payload bounds" `Quick test_packet_payload_bounds;
          Alcotest.test_case "flow key proto" `Quick test_flow_key_uses_proto;
          Alcotest.test_case "ip checksum" `Quick test_ip_checksum_changes ] );
      ( "state",
        [ Alcotest.test_case "host map roundtrip" `Quick test_host_map_roundtrip;
          Alcotest.test_case "host map grows" `Quick test_host_map_grows;
          Alcotest.test_case "nic map bounded" `Quick test_nic_map_bounded;
          Alcotest.test_case "nic probe bound" `Quick test_nic_map_probe_bound;
          Alcotest.test_case "update in place" `Quick test_map_update_in_place;
          Alcotest.test_case "erase invalidates" `Quick test_map_erase_invalidates;
          Alcotest.test_case "write field" `Quick test_map_write_field;
          Alcotest.test_case "vector modes" `Quick test_vector_modes ] );
      ( "interp",
        [ Alcotest.test_case "counts and verdicts" `Quick test_interp_counts_and_verdicts;
          Alcotest.test_case "loop profile" `Quick test_interp_loop_profile;
          Alcotest.test_case "while fuel" `Quick test_interp_while_fuel;
          Alcotest.test_case "subroutine + return" `Quick test_interp_subroutine_and_return;
          Alcotest.test_case "header mutation" `Quick test_interp_header_mutation;
          Alcotest.test_case "short circuit" `Quick test_interp_short_circuit;
          Alcotest.test_case "uninitialized local reads zero" `Quick test_interp_unbound_local_reads_zero;
          Alcotest.test_case "mean probes" `Quick test_interp_mean_probes ] );
      ( "api",
        [ Alcotest.test_case "crc deterministic" `Quick test_api_crc_nonzero_and_deterministic;
          Alcotest.test_case "hash order-sensitive" `Quick test_api_hash32_order_sensitive;
          Alcotest.test_case "checksum update" `Quick test_api_checksum_update;
          Alcotest.test_case "classify total" `Quick test_api_classify_total ] );
      ( "corpus",
        [ Alcotest.test_case "unique names" `Quick test_corpus_names_unique;
          Alcotest.test_case "table2 count" `Quick test_corpus_table2_count;
          Alcotest.test_case "all interpret" `Quick test_corpus_all_interpret;
          Alcotest.test_case "parameterized find" `Quick test_corpus_find_parameterized;
          Alcotest.test_case "stateful flags" `Quick test_corpus_stateful_flags;
          Alcotest.test_case "state sizes" `Quick test_state_sizes_positive ] );
      ( "pp",
        [ Alcotest.test_case "loc positive" `Quick test_pp_loc_positive;
          Alcotest.test_case "renders class" `Quick test_pp_contains_class ] );
      ( "workload",
        [ Alcotest.test_case "deterministic" `Quick test_workload_deterministic;
          Alcotest.test_case "flow count" `Quick test_workload_flow_count;
          Alcotest.test_case "cache hit ratio" `Quick test_workload_cache_hit_ratio;
          Alcotest.test_case "SYN first" `Quick test_workload_syn_first ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_synth_programs_interpret; prop_map_find_after_insert ] ) ]
