(** Tests for the corpus-fitted program synthesizer and its statistics
    extraction. *)

open Nf_lang

let stats () = Synth.Ast_stats.of_corpus (Corpus.table2 ())

let test_stats_nonempty () =
  let s = stats () in
  Alcotest.(check bool) "statement kinds observed" true
    (Array.fold_left ( +. ) 0.0 s.Synth.Ast_stats.stmt_kinds > 50.0);
  Alcotest.(check bool) "handler length positive" true (s.Synth.Ast_stats.mean_handler_len > 3.0);
  Alcotest.(check bool) "stateful fraction sensible" true
    (s.Synth.Ast_stats.stateful_fraction > 0.3 && s.Synth.Ast_stats.stateful_fraction <= 1.0)

let test_stats_field_popularity () =
  let s = stats () in
  (* ip_src/ip_dst are among the most used fields in the corpus *)
  let idx f = Synth.Ast_stats.field_index f in
  Alcotest.(check bool) "ip_dst used heavily" true
    (s.Synth.Ast_stats.hdr_fields.(idx Ast.Ip_dst) >= 5.0)

let test_generator_deterministic () =
  let s = stats () in
  let a = Synth.Generator.generate ~stats:s ~seed:5 "x" in
  let b = Synth.Generator.generate ~stats:s ~seed:5 "x" in
  Alcotest.(check string) "same pretty-print" (Pp.to_string a) (Pp.to_string b);
  let c = Synth.Generator.generate ~stats:s ~seed:6 "x" in
  Alcotest.(check bool) "seed changes output" true (Pp.to_string a <> Pp.to_string c)

let test_generator_batch () =
  let batch = Synth.Generator.batch ~seed:100 10 in
  Alcotest.(check int) "batch size" 10 (List.length batch);
  let names = List.sort_uniq compare (List.map (fun e -> e.Ast.name) batch) in
  Alcotest.(check int) "unique names" 10 (List.length names)

let test_generated_programs_compile_and_run () =
  let spec = { Workload.default with Workload.n_packets = 40 } in
  let packets = Workload.generate spec in
  List.iter
    (fun elt ->
      let f = Nf_frontend.Lower.lower_element elt in
      Alcotest.(check bool) "nonempty IR" true (Nf_ir.Ir.count_total f > 3);
      let compiled = Nicsim.Nfcc.compile f in
      Alcotest.(check bool) "compiles" true (Nicsim.Nfcc.count_total compiled > 0);
      let interp = Interp.create ~mode:State.Nic elt in
      let profile = Interp.run interp packets in
      Alcotest.(check int) "interprets" 40 profile.Interp.packets)
    (Synth.Generator.batch ~seed:321 15)

let test_fitted_closer_than_baseline () =
  (* Table-1 relationship at the word-distribution level *)
  let vocab = Clara.Vocab.create () in
  let words elts =
    List.concat_map
      (fun e ->
        let f = Nf_frontend.Lower.lower_element e in
        List.concat_map (fun (_, t) -> Array.to_list t) (Clara.Vocab.encode_func vocab f))
      elts
  in
  let real = words (Corpus.table2 ()) in
  let clara = words (Synth.Generator.batch ~seed:777 30) in
  let base = words (Synth.Generator.baseline_batch ~seed:778 30) in
  let card = Clara.Vocab.size vocab in
  let h = Util.Stats.histogram ~card in
  let d_clara = Util.Distance.jensen_shannon (h clara) (h real) in
  let d_base = Util.Distance.jensen_shannon (h base) (h real) in
  Alcotest.(check bool) "corpus-fitted generator is closer" true (d_clara < d_base)

let test_uniform_stats_complete () =
  let u = Synth.Ast_stats.uniform in
  Alcotest.(check int) "stmt kinds" Synth.Ast_stats.stmt_kind_count
    (Array.length u.Synth.Ast_stats.stmt_kinds);
  Alcotest.(check bool) "all kinds enabled" true
    (Array.for_all (fun w -> w > 0.0) u.Synth.Ast_stats.stmt_kinds)

let () =
  Alcotest.run "synth"
    [ ( "stats",
        [ Alcotest.test_case "nonempty" `Quick test_stats_nonempty;
          Alcotest.test_case "field popularity" `Quick test_stats_field_popularity;
          Alcotest.test_case "uniform complete" `Quick test_uniform_stats_complete ] );
      ( "generator",
        [ Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
          Alcotest.test_case "batch" `Quick test_generator_batch;
          Alcotest.test_case "compile and run" `Quick test_generated_programs_compile_and_run;
          Alcotest.test_case "fitted closer than baseline" `Slow test_fitted_closer_than_baseline ] ) ]
