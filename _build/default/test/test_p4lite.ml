(** Tests for the P4-lite match-action front-end: compilation to the NF
    AST, runtime table programming, action semantics, and Clara analyses
    applying unchanged to compiled pipelines. *)

open Nf_lang

let packet ?(src = 0x0a000001) ?(dst = 0xc0a80001) () =
  let p = Packet.create () in
  p.Packet.ip_src <- src;
  p.Packet.ip_dst <- dst;
  p

let router () = P4lite.compile P4lite.simple_router

let test_compiles_to_element () =
  let elt = router () in
  Alcotest.(check string) "name" "p4_router" elt.Ast.name;
  Alcotest.(check bool) "stateful" true (Ast.is_stateful elt);
  (* one map + hit/miss counters per table, plus the counter array *)
  Alcotest.(check bool) "tables became maps" true
    (List.exists (fun d -> Ast.state_name d = "ipv4_fwd") elt.Ast.state);
  Alcotest.(check bool) "counter array present" true
    (List.exists (fun d -> Ast.state_name d = "nh_counters") elt.Ast.state);
  (* the compiled element lowers and verifies like any other NF *)
  let ir = Nf_frontend.Lower.lower_element elt in
  Alcotest.(check (list string)) "well-formed IR" []
    (List.map (fun v -> v.Nf_ir.Verify.message) (Nf_ir.Verify.check ir))

let test_default_actions () =
  let interp = Interp.create ~mode:State.Nic (router ()) in
  (* empty tables: ACL no-op, fwd decrements TTL, egress defaults to port 0 *)
  let p = packet () in
  let before_ttl = p.Packet.ip_ttl in
  (match Interp.push interp p with
  | Interp.Emitted 0 -> ()
  | Interp.Emitted n -> Alcotest.failf "unexpected port %d" n
  | Interp.Dropped -> Alcotest.fail "default pipeline forwards");
  Alcotest.(check int) "ttl decremented by the default action" (before_ttl - 1) p.Packet.ip_ttl;
  Alcotest.(check int) "miss counted" 1
    !(State.scalar_ref interp.Interp.state "ipv4_fwd_misses")

let test_acl_entry_drops () =
  let interp = Interp.create ~mode:State.Nic (router ()) in
  P4lite.table_add P4lite.simple_router interp ~table:"acl" ~key:[ 0x0a0000bad land 0xffffffff ]
    P4lite.Drop_packet ~param:0;
  (match Interp.push interp (packet ~src:(0x0a0000bad land 0xffffffff) ()) with
  | Interp.Dropped -> ()
  | Interp.Emitted _ -> Alcotest.fail "ACL entry must drop");
  Alcotest.(check int) "hit counted" 1 !(State.scalar_ref interp.Interp.state "acl_hits");
  (* other sources still pass *)
  match Interp.push interp (packet ()) with
  | Interp.Emitted 0 -> ()
  | Interp.Emitted _ | Interp.Dropped -> Alcotest.fail "unlisted source passes"

let test_egress_steering () =
  let interp = Interp.create ~mode:State.Nic (router ()) in
  P4lite.table_add P4lite.simple_router interp ~table:"egress" ~key:[ 0xc0a80001 ] (P4lite.Forward 2) ~param:0;
  (match Interp.push interp (packet ~dst:0xc0a80001 ()) with
  | Interp.Emitted 2 -> ()
  | Interp.Emitted n -> Alcotest.failf "wrong egress %d" n
  | Interp.Dropped -> Alcotest.fail "steered packet must forward");
  match Interp.push interp (packet ~dst:0xc0a80099 ()) with
  | Interp.Emitted 0 -> ()
  | Interp.Emitted _ | Interp.Dropped -> Alcotest.fail "default egress is port 0"

let test_count_action () =
  let interp = Interp.create ~mode:State.Nic (router ()) in
  P4lite.table_add P4lite.simple_router interp ~table:"ipv4_fwd" ~key:[ 0xc0a80001 ] (P4lite.Count "nh_counters")
    ~param:7;
  for _ = 1 to 3 do
    ignore (Interp.push interp (packet ~dst:0xc0a80001 ()))
  done;
  let counters = State.array_of interp.Interp.state "nh_counters" in
  Alcotest.(check int) "per-next-hop counter" 3 counters.(7)

let test_set_field_action () =
  let interp = Interp.create ~mode:State.Nic (router ()) in
  P4lite.table_add P4lite.simple_router interp ~table:"ipv4_fwd" ~key:[ 0xc0a80001 ] (P4lite.Set_field Ast.Ip_tos)
    ~param:0x2e;
  let p = packet ~dst:0xc0a80001 () in
  ignore (Interp.push interp p);
  Alcotest.(check int) "DSCP rewritten from the entry parameter" 0x2e p.Packet.ip_tos

let test_clara_analyzes_p4 () =
  (* the compiled pipeline flows through Clara like any Click element *)
  let elt = router () in
  let spec = { Workload.default with Workload.n_packets = 300; Workload.proto = Workload.Mixed } in
  let ported = Nicsim.Nic.port elt spec in
  Alcotest.(check bool) "demand assembled" true (ported.Nicsim.Nic.demand.Nicsim.Perf.compute > 0.0);
  let placement = Clara.Placement.solve elt ported in
  Alcotest.(check int) "all structures placed" (List.length elt.Ast.state)
    (List.length placement);
  Alcotest.(check bool) "hot table counters leave EMEM" true
    (List.assoc "ipv4_fwd_misses" placement <> Nicsim.Mem.EMEM)

let () =
  Alcotest.run "p4lite"
    [ ( "compile",
        [ Alcotest.test_case "compiles to element" `Quick test_compiles_to_element;
          Alcotest.test_case "default actions" `Quick test_default_actions ] );
      ( "actions",
        [ Alcotest.test_case "acl drop" `Quick test_acl_entry_drops;
          Alcotest.test_case "egress steering" `Quick test_egress_steering;
          Alcotest.test_case "count" `Quick test_count_action;
          Alcotest.test_case "set field" `Quick test_set_field_action ] );
      ("clara", [ Alcotest.test_case "end-to-end analysis" `Quick test_clara_analyzes_p4 ]) ]
