(** Tests for the extension modules: pcap traces, the IR verifier and
    optimizer, SmartNIC platform profiles, and partial offloading. *)

open Nf_lang

(* -- Trace (pcap) -- *)

let roundtrip_spec =
  { Workload.default with Workload.n_packets = 40; Workload.proto = Workload.Mixed }

let test_trace_roundtrip () =
  let packets = Workload.generate roundtrip_spec in
  let path = Filename.temp_file "clara_trace" ".pcap" in
  Workload.Trace.save path packets;
  let back = Workload.Trace.load path in
  Sys.remove path;
  Alcotest.(check int) "packet count" (List.length packets) (List.length back);
  List.iter2
    (fun (a : Packet.t) (b : Packet.t) ->
      Alcotest.(check bool) "flow key preserved" true (Packet.flow_key a = Packet.flow_key b);
      Alcotest.(check int) "ip_len" a.Packet.ip_len b.Packet.ip_len;
      Alcotest.(check int) "ttl" a.Packet.ip_ttl b.Packet.ip_ttl;
      (* flags only exist on the wire for TCP frames *)
      if a.Packet.ip_proto = Packet.tcp_proto then
        Alcotest.(check int) "tcp flags" a.Packet.tcp_flags b.Packet.tcp_flags;
      Alcotest.(check int) "payload byte" (Packet.get_payload_byte a 3) (Packet.get_payload_byte b 3))
    packets back

let test_trace_rejects_garbage () =
  let path = Filename.temp_file "clara_garbage" ".pcap" in
  let oc = open_out_bin path in
  output_string oc "not a pcap file at all";
  close_out oc;
  (try
     ignore (Workload.Trace.load path);
     Alcotest.fail "should reject garbage"
   with Workload.Trace.Malformed _ -> ());
  Sys.remove path

let test_trace_drives_interpreter () =
  (* a saved trace replays identically through an NF *)
  let packets = Workload.generate roundtrip_spec in
  let path = Filename.temp_file "clara_replay" ".pcap" in
  Workload.Trace.save path packets;
  let replayed = Workload.Trace.load path in
  Sys.remove path;
  let run pkts =
    let interp = Interp.create ~mode:State.Nic (Corpus.find "firewall") in
    let p = Interp.run interp pkts in
    (p.Interp.emitted, p.Interp.dropped)
  in
  Alcotest.(check (pair int int)) "same verdicts" (run packets) (run replayed)

(* -- Verify -- *)

let test_verify_accepts_lowered_corpus () =
  List.iter
    (fun elt ->
      let f = Nf_frontend.Lower.lower_element elt in
      Alcotest.(check (list string)) (elt.Ast.name ^ " verifies") []
        (List.map (fun v -> v.Nf_ir.Verify.message) (Nf_ir.Verify.check f)))
    (Corpus.all ())

let test_verify_rejects_broken () =
  let b = Nf_ir.Builder.create "bad" in
  ignore
    (Nf_ir.Builder.emit_value b ~op:Nf_ir.Ir.Add
       ~args:[ Nf_ir.Ir.Reg 999; Nf_ir.Ir.Imm 1 ]
       ~ty:Nf_ir.Ir.I32 ~annot:Nf_ir.Ir.Compute);
  let f = Nf_ir.Builder.finish b in
  Alcotest.(check bool) "undefined register flagged" true (Nf_ir.Verify.check f <> [])

let test_verify_annot_mismatch () =
  let b = Nf_ir.Builder.create "bad2" in
  ignore
    (Nf_ir.Builder.emit_value b ~op:Nf_ir.Ir.Load ~args:[ Nf_ir.Ir.Slot "x" ]
       ~ty:Nf_ir.Ir.I32 ~annot:Nf_ir.Ir.Compute);
  let f = Nf_ir.Builder.finish b in
  Alcotest.(check bool) "load annotated compute flagged" true
    (List.exists
       (fun v -> v.Nf_ir.Verify.message = "memory opcode annotated as compute")
       (Nf_ir.Verify.check f))

(* -- Opt -- *)

let lower stmts =
  Nf_frontend.Lower.lower_element
    (let open Build in
     element "o" stmts)

let test_opt_constant_folding () =
  let f = lower Build.[ let_ "x" (i 3 + i 4); emit 0 ] in
  let o = Nf_ir.Opt.optimize f in
  Alcotest.(check bool) "fewer instructions" true
    (Nf_ir.Ir.count_total o < Nf_ir.Ir.count_total f)

let test_opt_forwarding_removes_loads () =
  let f = lower Build.[ let_ "x" (hdr Ast.Ip_src); let_ "y" (l "x" + l "x"); emit 0 ] in
  let o = Nf_ir.Opt.optimize f in
  Alcotest.(check bool) "stateless loads eliminated" true
    (Nf_ir.Ir.count_stateless_mem o < Nf_ir.Ir.count_stateless_mem f)

let test_opt_preserves_structure () =
  let f = Nf_frontend.Lower.lower_element (Corpus.find "firewall") in
  let o = Nf_ir.Opt.optimize f in
  Alcotest.(check int) "same block count" (Array.length f.Nf_ir.Ir.blocks)
    (Array.length o.Nf_ir.Ir.blocks);
  Alcotest.(check int) "stateful accesses preserved" (Nf_ir.Ir.count_stateful_mem f)
    (Nf_ir.Ir.count_stateful_mem o);
  Alcotest.(check bool) "original untouched" true (Nf_ir.Ir.count_total f > Nf_ir.Ir.count_total o)

(* -- Profiles -- *)

let demand_of name =
  let spec = { Workload.default with Workload.n_packets = 200; Workload.proto = Workload.Mixed } in
  (Nicsim.Nic.port (Corpus.find name) spec).Nicsim.Nic.demand

let test_profiles_knees_in_range () =
  let d = demand_of "Mazu-NAT" in
  List.iter
    (fun p ->
      let knee = Nicsim.Profiles.optimal_cores p d in
      Alcotest.(check bool)
        (p.Nicsim.Profiles.name ^ " knee within its core range")
        true
        (knee >= 1 && knee <= p.Nicsim.Profiles.nic.Nicsim.Multicore.n_cores))
    Nicsim.Profiles.all

let test_profiles_differ () =
  let d = demand_of "UDPCount" in
  let peaks =
    List.map
      (fun p -> (Nicsim.Profiles.peak p d).Nicsim.Multicore.throughput_mpps)
      Nicsim.Profiles.all
  in
  Alcotest.(check bool) "platforms do not all coincide" true
    (List.length (List.sort_uniq compare (List.map (fun x -> Float.round (x *. 10.0)) peaks)) > 1)

(* -- Partial offloading -- *)

let partial_spec =
  { Workload.default with Workload.n_packets = 200; Workload.proto = Workload.Mixed }

let test_partial_full_plans_always_feasible () =
  let evals = Clara.Partial.analyze (Corpus.find "anonipaddr") partial_spec in
  let plans = List.map (fun e -> e.Clara.Partial.plan) evals in
  Alcotest.(check bool) "full NIC present" true (List.mem Clara.Partial.Full_nic plans);
  Alcotest.(check bool) "host-only present" true (List.mem Clara.Partial.Full_host plans)

let test_partial_splits_respect_state () =
  (* cmsketch touches its sketch arrays across the handler: shared-state
     splits must be rejected except where state is disjoint *)
  let evals = Clara.Partial.analyze (Corpus.find "cmsketch") partial_spec in
  List.iter
    (fun (e : Clara.Partial.evaluation) ->
      match e.Clara.Partial.plan with
      | Clara.Partial.Split k ->
        let elt = Corpus.find "cmsketch" in
        let prefix = List.filteri (fun i _ -> i < k) elt.Ast.handler in
        let suffix = List.filteri (fun i _ -> i >= k) elt.Ast.handler in
        let shared =
          List.filter
            (fun g -> List.mem g (Clara.Partial.globals_of suffix))
            (Clara.Partial.globals_of prefix)
        in
        Alcotest.(check (list string)) "no shared state across PCIe" [] shared
      | Clara.Partial.Full_nic | Clara.Partial.Full_host -> ())
    evals

let test_partial_host_pays_crossing () =
  let evals = Clara.Partial.analyze (Corpus.find "anonipaddr") partial_spec in
  let find plan = List.find (fun e -> e.Clara.Partial.plan = plan) evals in
  let host = find Clara.Partial.Full_host in
  Alcotest.(check bool) "host latency includes two PCIe crossings" true
    (host.Clara.Partial.latency_us >= 2.0 *. Clara.Partial.default_link.Clara.Partial.crossing_us)

let test_partial_recommend_sane () =
  List.iter
    (fun name ->
      let best = Clara.Partial.recommend (Corpus.find name) partial_spec in
      Alcotest.(check bool) (name ^ " positive throughput") true
        (best.Clara.Partial.throughput_mpps > 0.0))
    [ "dpi"; "firewall"; "heavy_hitter"; "anonipaddr" ]

let test_partial_compute_light_stays_on_nic () =
  (* anonipaddr at 64B packets: the wire limits everything, so the NIC's
     lower latency must win the recommendation *)
  let best = Clara.Partial.recommend (Corpus.find "anonipaddr") partial_spec in
  (match best.Clara.Partial.plan with
  | Clara.Partial.Full_nic -> ()
  | p -> Alcotest.failf "expected full NIC, got %s" (Clara.Partial.plan_name p))


(* -- Energy / TCO -- *)

let test_energy_model () =
  let d = demand_of "UDPCount" in
  let point = Nicsim.Multicore.measure d ~cores:20 in
  let w = Nicsim.Energy.power_w Nicsim.Energy.smartnic d point in
  Alcotest.(check bool) "power above static floor" true
    (w > Nicsim.Energy.smartnic.Nicsim.Energy.static_w);
  let uj = Nicsim.Energy.energy_per_packet_uj Nicsim.Energy.smartnic d point in
  Alcotest.(check bool) "finite energy per packet" true (Float.is_finite uj && uj > 0.0);
  (* more cores at the same throughput burn more energy per packet *)
  let p8 = Nicsim.Multicore.measure d ~cores:8 in
  let uj8 = Nicsim.Energy.energy_per_packet_uj Nicsim.Energy.smartnic d p8 in
  ignore uj8;
  (* the host platform is less efficient per packet for the same work *)
  let host_w =
    Nicsim.Energy.host_power_w Nicsim.Energy.x86_host ~cores:4
      ~mpps:point.Nicsim.Multicore.throughput_mpps
      ~mem_accesses_per_pkt:(Nicsim.Perf.total_mem_accesses d)
  in
  let host_uj = host_w /. (point.Nicsim.Multicore.throughput_mpps *. 1e6) *. 1e6 in
  Alcotest.(check bool) "host burns more energy per packet" true (host_uj > uj)

let test_tco_grows_with_watts () =
  let cheap = Nicsim.Energy.tco_usd Nicsim.Energy.smartnic ~watts:10.0 ~years:3.0 ~usd_per_kwh:0.12 in
  let hot = Nicsim.Energy.tco_usd Nicsim.Energy.smartnic ~watts:100.0 ~years:3.0 ~usd_per_kwh:0.12 in
  Alcotest.(check bool) "electricity dominates at higher draw" true (hot > cheap);
  Alcotest.(check bool) "capex floor" true
    (cheap >= Nicsim.Energy.smartnic.Nicsim.Energy.capex_usd)

(* qcheck: verifier accepts everything the generator+frontend produce *)
let prop_synth_lowering_verifies =
  QCheck.Test.make ~name:"synthesized programs pass the IR verifier" ~count:30
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let stats = Synth.Ast_stats.of_corpus (Corpus.table2 ()) in
      let elt = Synth.Generator.generate ~stats ~seed (Printf.sprintf "qv_%d" seed) in
      Nf_ir.Verify.check (Nf_frontend.Lower.lower_element elt) = [])

let prop_optimizer_preserves_wellformedness =
  QCheck.Test.make ~name:"optimizer output stays well-formed" ~count:30
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let stats = Synth.Ast_stats.of_corpus (Corpus.table2 ()) in
      let elt = Synth.Generator.generate ~stats ~seed (Printf.sprintf "qo_%d" seed) in
      let o = Nf_ir.Opt.optimize (Nf_frontend.Lower.lower_element elt) in
      Nf_ir.Verify.check o = [])

let () =
  Alcotest.run "extensions"
    [ ( "trace",
        [ Alcotest.test_case "roundtrip" `Quick test_trace_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_trace_rejects_garbage;
          Alcotest.test_case "drives interpreter" `Quick test_trace_drives_interpreter ] );
      ( "verify",
        [ Alcotest.test_case "accepts corpus" `Quick test_verify_accepts_lowered_corpus;
          Alcotest.test_case "rejects undefined reg" `Quick test_verify_rejects_broken;
          Alcotest.test_case "annot mismatch" `Quick test_verify_annot_mismatch ] );
      ( "opt",
        [ Alcotest.test_case "constant folding" `Quick test_opt_constant_folding;
          Alcotest.test_case "slot forwarding" `Quick test_opt_forwarding_removes_loads;
          Alcotest.test_case "preserves structure" `Quick test_opt_preserves_structure ] );
      ( "profiles",
        [ Alcotest.test_case "knees in range" `Quick test_profiles_knees_in_range;
          Alcotest.test_case "platforms differ" `Quick test_profiles_differ ] );
      ( "energy",
        [ Alcotest.test_case "power and per-packet energy" `Quick test_energy_model;
          Alcotest.test_case "tco grows with watts" `Quick test_tco_grows_with_watts ] );
      ( "partial",
        [ Alcotest.test_case "full plans feasible" `Quick test_partial_full_plans_always_feasible;
          Alcotest.test_case "splits respect state" `Quick test_partial_splits_respect_state;
          Alcotest.test_case "host pays crossing" `Quick test_partial_host_pays_crossing;
          Alcotest.test_case "recommendations sane" `Quick test_partial_recommend_sane;
          Alcotest.test_case "compute-light stays on NIC" `Quick test_partial_compute_light_stays_on_nic ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_synth_lowering_verifies; prop_optimizer_preserves_wellformedness ] ) ]
