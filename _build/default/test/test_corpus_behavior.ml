(** Behavioural tests for the NF corpus: beyond "it runs", these verify
    that each element implements its protocol logic — NAT translation
    consistency, SYN-cookie round trips, token-bucket policing, DNS
    caching, load-balancer pinning, VXLAN decap and flow export. *)

open Nf_lang

let tcp_packet ?(src = 0x0a000005) ?(dst = 0xc0a80107) ?(sport = 4242) ?(dport = 80)
    ?(flags = 0x10) () =
  let p = Packet.create () in
  p.Packet.ip_src <- src;
  p.Packet.ip_dst <- dst;
  p.Packet.ip_proto <- Packet.tcp_proto;
  p.Packet.tcp_sport <- sport;
  p.Packet.tcp_dport <- dport;
  p.Packet.tcp_flags <- flags;
  p

let udp_packet ?(src = 0x0a000005) ?(dst = 0xc0a80107) ?(sport = 4242) ?(dport = 53) () =
  let p = Packet.create () in
  p.Packet.ip_src <- src;
  p.Packet.ip_dst <- dst;
  p.Packet.ip_proto <- Packet.udp_proto;
  p.Packet.udp_sport <- sport;
  p.Packet.udp_dport <- dport;
  p

let counter interp name = !(State.scalar_ref interp.Interp.state name)

(* -- Mazu-NAT -- *)

let test_nat_consistent_binding () =
  let interp = Interp.create ~mode:State.Nic (Corpus.find "Mazu-NAT") in
  let p1 = tcp_packet () in
  ignore (Interp.push interp p1);
  let translated_src = p1.Packet.ip_src in
  let translated_port = p1.Packet.tcp_sport in
  Alcotest.(check int) "source rewritten to the NAT ip" 0xc0a80101 translated_src;
  (* the same flow gets the same binding on the next packet *)
  let p2 = tcp_packet () in
  ignore (Interp.push interp p2);
  Alcotest.(check int) "binding is stable" translated_port p2.Packet.tcp_sport;
  (* a different flow gets a different port *)
  let p3 = tcp_packet ~sport:5555 () in
  ignore (Interp.push interp p3);
  Alcotest.(check bool) "distinct flows get distinct ports" true
    (p3.Packet.tcp_sport <> translated_port)

let test_nat_reverse_path () =
  let interp = Interp.create ~mode:State.Nic (Corpus.find "Mazu-NAT") in
  let out = tcp_packet () in
  ignore (Interp.push interp out);
  let ext_port = out.Packet.tcp_sport in
  (* a reply from outside to the allocated binding must reach the host *)
  let back = tcp_packet ~src:0xc0a80107 ~dst:0xc0a80101 ~sport:80 ~dport:ext_port () in
  (match Interp.push interp back with
  | Interp.Emitted 1 -> ()
  | Interp.Emitted n -> Alcotest.failf "wrong port %d" n
  | Interp.Dropped -> Alcotest.fail "reply should traverse the NAT");
  Alcotest.(check int) "destination restored" 0x0a000005 back.Packet.ip_dst;
  Alcotest.(check int) "port restored" 4242 back.Packet.tcp_dport

let test_nat_unsolicited_dropped () =
  let interp = Interp.create ~mode:State.Nic (Corpus.find "Mazu-NAT") in
  let stray = tcp_packet ~src:0xc0a80107 ~dst:0xc0a80101 ~sport:80 ~dport:9999 () in
  (match Interp.push interp stray with
  | Interp.Dropped -> ()
  | Interp.Emitted _ -> Alcotest.fail "unsolicited inbound must not pass");
  Alcotest.(check bool) "ttl decremented on processed packets" true (stray.Packet.ip_ttl <= 63)

let test_nat_udp_and_tcp_pools_disjoint () =
  let interp = Interp.create ~mode:State.Nic (Corpus.find "Mazu-NAT") in
  let t = tcp_packet () in
  ignore (Interp.push interp t);
  let u = udp_packet ~sport:777 () in
  ignore (Interp.push interp u);
  Alcotest.(check bool) "tcp pool around 10000" true
    (t.Packet.tcp_sport >= 10000 && t.Packet.tcp_sport < 32000);
  Alcotest.(check bool) "udp pool around 32000" true (u.Packet.tcp_sport >= 32000)

let test_nat_icmp_passthrough () =
  let interp = Interp.create ~mode:State.Nic (Corpus.find "Mazu-NAT") in
  let p = tcp_packet () in
  p.Packet.ip_proto <- 1;
  (match Interp.push interp p with
  | Interp.Emitted 0 -> ()
  | Interp.Emitted _ | Interp.Dropped -> Alcotest.fail "ICMP should pass");
  Alcotest.(check int) "icmp counter" 1 (counter interp "icmp_passed")

(* -- synproxy -- *)

let test_synproxy_cookie_roundtrip () =
  let interp = Interp.create ~mode:State.Nic (Corpus.find "synproxy") in
  let syn = tcp_packet ~flags:0x02 () in
  (match Interp.push interp syn with
  | Interp.Emitted 0 -> ()
  | Interp.Emitted _ | Interp.Dropped -> Alcotest.fail "SYN must be answered");
  Alcotest.(check int) "SYN/ACK flags" 0x12 syn.Packet.tcp_flags;
  let cookie = syn.Packet.tcp_seq in
  (* the client echoes cookie+1 in a packet with the SYN's orientation *)
  let ack = tcp_packet ~flags:0x10 () in
  ack.Packet.tcp_ack <- (cookie + 1) land 0xffffffff;
  (match Interp.push interp ack with
  | Interp.Emitted 1 -> ()
  | Interp.Emitted _ | Interp.Dropped -> Alcotest.fail "valid cookie must pass");
  Alcotest.(check int) "valid handshakes counted" 1 (counter interp "acks_valid");
  (* subsequent packets of the established flow bypass validation *)
  let datap = tcp_packet ~flags:0x18 () in
  (match Interp.push interp datap with
  | Interp.Emitted 1 -> ()
  | Interp.Emitted _ | Interp.Dropped -> Alcotest.fail "established flow must pass")

let test_synproxy_bogus_ack_dropped () =
  let interp = Interp.create ~mode:State.Nic (Corpus.find "synproxy") in
  let ack = tcp_packet ~flags:0x10 () in
  ack.Packet.tcp_ack <- 12345;
  (match Interp.push interp ack with
  | Interp.Dropped -> ()
  | Interp.Emitted _ -> Alcotest.fail "bogus cookie must be dropped");
  Alcotest.(check int) "bogus counted" 1 (counter interp "acks_bogus")

(* -- ratelimiter -- *)

let test_ratelimiter_polices_single_flow () =
  let interp = Interp.create ~mode:State.Nic (Corpus.find "ratelimiter") in
  (* hammer one flow within a single virtual tick window *)
  let outcomes =
    List.init 400 (fun _ -> Interp.push interp (tcp_packet ()))
  in
  let dropped = List.length (List.filter (fun a -> a = Interp.Dropped) outcomes) in
  ignore dropped;
  Alcotest.(check bool) "some packets policed" true (counter interp "policed" > 0 || dropped > 0);
  Alcotest.(check bool) "some packets conform" true (counter interp "conforming" > 0)

let test_ratelimiter_fresh_flows_conform () =
  let interp = Interp.create ~mode:State.Nic (Corpus.find "ratelimiter") in
  List.iteri
    (fun k () ->
      match Interp.push interp (tcp_packet ~src:(0x0a000000 + k) ()) with
      | Interp.Emitted _ -> ()
      | Interp.Dropped -> Alcotest.fail "first packet of a flow must conform")
    (List.init 30 (fun _ -> ()))

(* -- loadbalancer -- *)

let test_loadbalancer_pins_connections () =
  let interp = Interp.create ~mode:State.Nic (Corpus.find "loadbalancer") in
  let p1 = tcp_packet () in
  ignore (Interp.push interp p1);
  let backend1 = p1.Packet.ip_dst in
  let p2 = tcp_packet () in
  ignore (Interp.push interp p2);
  Alcotest.(check int) "same flow, same backend" backend1 p2.Packet.ip_dst;
  Alcotest.(check int) "pin hit counted" 1 (counter interp "pinned_hits");
  Alcotest.(check int) "one connection" 1 (counter interp "new_conns")

let test_loadbalancer_drops_udp () =
  let interp = Interp.create ~mode:State.Nic (Corpus.find "loadbalancer") in
  match Interp.push interp (udp_packet ()) with
  | Interp.Dropped -> ()
  | Interp.Emitted _ -> Alcotest.fail "udp is not balanced"

(* -- vxlan_gateway -- *)

let test_vxlan_bad_vni_dropped () =
  let interp = Interp.create ~mode:State.Nic (Corpus.find "vxlan_gateway") in
  let p = udp_packet ~dport:4789 () in
  Packet.set_payload_byte p 4 0x42;
  (match Interp.push interp p with
  | Interp.Dropped -> ()
  | Interp.Emitted _ -> Alcotest.fail "unknown VNI must be dropped");
  Alcotest.(check int) "bad vni counted" 1 (counter interp "bad_vni")

let test_vxlan_encap_direction () =
  let interp = Interp.create ~mode:State.Nic (Corpus.find "vxlan_gateway") in
  (* non-VXLAN traffic takes the encap path; with an empty vni_table the
     route misses and the packet is dropped *)
  (match Interp.push interp (tcp_packet ()) with
  | Interp.Dropped -> ()
  | Interp.Emitted _ -> Alcotest.fail "no route, must drop");
  Alcotest.(check int) "nothing encapped yet" 0 (counter interp "encapped")

(* -- flowmonitor -- *)

let test_flowmonitor_accounting () =
  let interp = Interp.create ~mode:State.Nic (Corpus.find "flowmonitor") in
  for _ = 1 to 5 do
    ignore (Interp.push interp (tcp_packet ()))
  done;
  Alcotest.(check int) "one active flow" 1 (counter interp "active_flows");
  (* FIN tears it down *)
  ignore (Interp.push interp (tcp_packet ~flags:0x11 ()));
  Alcotest.(check int) "teardown on FIN" 0 (counter interp "active_flows")

let test_flowmonitor_exports_heavy_flows () =
  let interp = Interp.create ~mode:State.Nic (Corpus.find "flowmonitor") in
  (* threshold is 2048 bytes; each packet is 80 wire bytes *)
  for _ = 1 to 40 do
    ignore (Interp.push interp (tcp_packet ()))
  done;
  Alcotest.(check bool) "heavy flow exported" true (counter interp "exported" > 0);
  Alcotest.(check bool) "export ring populated" true
    (State.vec_length (State.vec_of interp.Interp.state "export_ring") > 0)

(* -- DNSProxy -- *)

let dns_query ?(qr = 0) ?(rcode = 0) ?(name_byte = 0x61) () =
  let p = udp_packet ~dport:(if qr = 0 then 53 else 4242) ~sport:(if qr = 0 then 4242 else 53) () in
  p.Packet.ip_len <- 28 + 26;
  p.Packet.udp_len <- 8 + 26;
  Packet.set_payload_byte p 0 0x12;
  Packet.set_payload_byte p 1 0x34;
  Packet.set_payload_byte p 2 (qr lsl 7);
  Packet.set_payload_byte p 3 rcode;
  (* one 3-byte label *)
  Packet.set_payload_byte p 12 3;
  Packet.set_payload_byte p 13 name_byte;
  Packet.set_payload_byte p 14 0x62;
  Packet.set_payload_byte p 15 0x63;
  Packet.set_payload_byte p 16 0;
  (* the answer A record bytes used by the cache *)
  Packet.set_payload_byte p 28 1;
  Packet.set_payload_byte p 29 2;
  Packet.set_payload_byte p 30 3;
  Packet.set_payload_byte p 31 4;
  p

let test_dnsproxy_cache_flow () =
  let interp = Interp.create ~mode:State.Nic (Corpus.find "DNSProxy") in
  (* first query misses and goes upstream (port 1) *)
  (match Interp.push interp (dns_query ()) with
  | Interp.Emitted 1 -> ()
  | Interp.Emitted _ | Interp.Dropped -> Alcotest.fail "miss should forward upstream");
  Alcotest.(check int) "miss recorded" 1 (counter interp "cache_misses");
  (* the upstream response installs the mapping *)
  ignore (Interp.push interp (dns_query ~qr:1 ()));
  (* the same question is now answered from the cache (port 0, swapped) *)
  let q2 = dns_query () in
  (match Interp.push interp q2 with
  | Interp.Emitted 0 -> ()
  | Interp.Emitted _ | Interp.Dropped -> Alcotest.fail "hit should answer directly");
  Alcotest.(check int) "hit recorded" 1 (counter interp "cache_hits");
  Alcotest.(check int) "addresses swapped back to the client" 0x0a000005 q2.Packet.ip_dst

let test_dnsproxy_negative_cache () =
  let interp = Interp.create ~mode:State.Nic (Corpus.find "DNSProxy") in
  ignore (Interp.push interp (dns_query ()));
  (* upstream says NXDOMAIN *)
  ignore (Interp.push interp (dns_query ~qr:1 ~rcode:3 ()));
  let q = dns_query () in
  (match Interp.push interp q with
  | Interp.Emitted 0 -> ()
  | Interp.Emitted _ | Interp.Dropped -> Alcotest.fail "negative hit answers directly");
  Alcotest.(check int) "negative hit" 1 (counter interp "neg_hits");
  Alcotest.(check int) "NXDOMAIN rcode in the reply" 3 (Packet.get_payload_byte q 3)

let test_dnsproxy_case_insensitive_names () =
  let interp = Interp.create ~mode:State.Nic (Corpus.find "DNSProxy") in
  ignore (Interp.push interp (dns_query ~name_byte:0x61 ()));
  ignore (Interp.push interp (dns_query ~qr:1 ~name_byte:0x61 ()));
  (* the same name in upper case must hit the same cache entry *)
  match Interp.push interp (dns_query ~name_byte:0x41 ()) with
  | Interp.Emitted 0 -> ()
  | Interp.Emitted _ | Interp.Dropped -> Alcotest.fail "case-folded name should hit"

(* -- WebGen -- *)

let test_webgen_session_lifecycle () =
  let interp = Interp.create ~mode:State.Nic (Corpus.find "WebGen") in
  let pkt () =
    let p = tcp_packet () in
    (* 200 OK status byte at payload[9] *)
    Packet.set_payload_byte p 9 (Char.code '2');
    p
  in
  (* new session, then request/response pairs until 4 requests are done *)
  ignore (Interp.push interp (pkt ()));
  for _ = 1 to 8 do
    ignore (Interp.push interp (pkt ()))
  done;
  Alcotest.(check int) "four requests sent" 4 (counter interp "requests");
  Alcotest.(check bool) "keepalive reuse counted" true (counter interp "keepalive_reuse" > 0);
  Alcotest.(check int) "session closed" 0 (counter interp "active_sessions")

let test_webgen_5xx_retries () =
  let interp = Interp.create ~mode:State.Nic (Corpus.find "WebGen") in
  let pkt () =
    let p = tcp_packet () in
    Packet.set_payload_byte p 9 (Char.code '5');
    p
  in
  for _ = 1 to 10 do
    ignore (Interp.push interp (pkt ()))
  done;
  Alcotest.(check bool) "retries happen" true (counter interp "retries" > 0);
  Alcotest.(check bool) "5xx counted" true (counter interp "errors_5xx" > 0)

(* -- heavy_hitter -- *)

let test_heavy_hitter_flags_elephants () =
  let interp = Interp.create ~mode:State.Nic (Corpus.find "heavy_hitter") in
  let outcomes = List.init 200 (fun _ -> Interp.push interp (tcp_packet ())) in
  let flagged = List.filter (fun a -> a = Interp.Emitted 1) outcomes in
  Alcotest.(check bool) "elephant flow flagged after threshold" true (List.length flagged > 0);
  Alcotest.(check bool) "mice not flagged" true
    (match Interp.push interp (tcp_packet ~sport:9191 ~src:0x0a0000ff ()) with
    | Interp.Emitted 0 -> true
    | Interp.Emitted _ | Interp.Dropped -> false)

(* -- iplookup semantics -- *)

let test_iplookup_default_route () =
  (* empty tries: every lookup falls back to the default route (port 0) *)
  let interp = Interp.create ~mode:State.Nic (Corpus.find "iplookup_64") in
  (match Interp.push interp (tcp_packet ()) with
  | Interp.Emitted 0 -> ()
  | Interp.Emitted _ | Interp.Dropped -> Alcotest.fail "default route expected");
  Alcotest.(check int) "default counted" 1 (counter interp "default_routes")


let test_dnsproxy_upstream_budget () =
  let interp = Interp.create ~mode:State.Nic (Corpus.find "DNSProxy") in
  (* exhaust the upstream budget with distinct-name misses *)
  let served_locally = ref 0 in
  for k = 1 to 300 do
    match Interp.push interp (dns_query ~name_byte:(0x61 + (k mod 26)) ()) with
    | Interp.Emitted 0 -> incr served_locally  (* SERVFAIL back to the client *)
    | Interp.Emitted _ | Interp.Dropped -> ()
  done;
  Alcotest.(check bool) "over-budget queries answered with SERVFAIL" true
    (counter interp "upstream_dropped" > 0)

let test_dnsproxy_truncated_not_cached () =
  let interp = Interp.create ~mode:State.Nic (Corpus.find "DNSProxy") in
  ignore (Interp.push interp (dns_query ()));
  (* truncated upstream response must not populate the cache *)
  let tc = dns_query ~qr:1 () in
  Packet.set_payload_byte tc 2 (0x80 lor 0x02);
  ignore (Interp.push interp tc);
  Alcotest.(check int) "truncation counted" 1 (counter interp "truncated");
  (match Interp.push interp (dns_query ()) with
  | Interp.Emitted 1 -> ()  (* still a miss: goes upstream again *)
  | Interp.Emitted _ | Interp.Dropped -> Alcotest.fail "truncated answers must not be cached")

let test_nat_port_pool_wraps () =
  let interp = Interp.create ~mode:State.Nic (Corpus.find "Mazu-NAT") in
  (* burn through the TCP pool (10000..31999 is too big to exhaust here, so
     pre-position the allocator near the top) *)
  State.scalar_ref interp.Interp.state "next_tcp_port" := 31998;
  ignore (Interp.push interp (tcp_packet ~sport:1 ()));
  ignore (Interp.push interp (tcp_packet ~sport:2 ()));
  ignore (Interp.push interp (tcp_packet ~sport:3 ()));
  Alcotest.(check bool) "pool wrapped" true (counter interp "port_wraps" >= 1);
  Alcotest.(check bool) "allocator back at the pool base" true
    (!(State.scalar_ref interp.Interp.state "next_tcp_port") < 32000)

let test_webgen_uri_mix_counted () =
  let interp = Interp.create ~mode:State.Nic (Corpus.find "WebGen") in
  for _ = 1 to 6 do
    let p = tcp_packet () in
    Packet.set_payload_byte p 9 (Char.code '2');
    ignore (Interp.push interp p)
  done;
  let mix = State.array_of interp.Interp.state "uri_mix" in
  Alcotest.(check bool) "requests attributed to URI templates" true
    (Array.fold_left ( + ) 0 mix > 0)

let () =
  Alcotest.run "corpus-behavior"
    [ ( "mazu-nat",
        [ Alcotest.test_case "consistent binding" `Quick test_nat_consistent_binding;
          Alcotest.test_case "reverse path" `Quick test_nat_reverse_path;
          Alcotest.test_case "unsolicited dropped" `Quick test_nat_unsolicited_dropped;
          Alcotest.test_case "udp/tcp pools" `Quick test_nat_udp_and_tcp_pools_disjoint;
          Alcotest.test_case "icmp passthrough" `Quick test_nat_icmp_passthrough;
          Alcotest.test_case "port pool wraps" `Quick test_nat_port_pool_wraps ] );
      ( "synproxy",
        [ Alcotest.test_case "cookie roundtrip" `Quick test_synproxy_cookie_roundtrip;
          Alcotest.test_case "bogus ack dropped" `Quick test_synproxy_bogus_ack_dropped ] );
      ( "ratelimiter",
        [ Alcotest.test_case "polices hot flow" `Quick test_ratelimiter_polices_single_flow;
          Alcotest.test_case "fresh flows conform" `Quick test_ratelimiter_fresh_flows_conform ] );
      ( "loadbalancer",
        [ Alcotest.test_case "pins connections" `Quick test_loadbalancer_pins_connections;
          Alcotest.test_case "drops udp" `Quick test_loadbalancer_drops_udp ] );
      ( "vxlan",
        [ Alcotest.test_case "bad vni dropped" `Quick test_vxlan_bad_vni_dropped;
          Alcotest.test_case "encap requires route" `Quick test_vxlan_encap_direction ] );
      ( "flowmonitor",
        [ Alcotest.test_case "accounting + teardown" `Quick test_flowmonitor_accounting;
          Alcotest.test_case "exports heavy flows" `Quick test_flowmonitor_exports_heavy_flows ] );
      ( "dnsproxy",
        [ Alcotest.test_case "cache flow" `Quick test_dnsproxy_cache_flow;
          Alcotest.test_case "negative cache" `Quick test_dnsproxy_negative_cache;
          Alcotest.test_case "case-insensitive" `Quick test_dnsproxy_case_insensitive_names;
          Alcotest.test_case "upstream budget" `Quick test_dnsproxy_upstream_budget;
          Alcotest.test_case "truncated not cached" `Quick test_dnsproxy_truncated_not_cached ] );
      ( "webgen",
        [ Alcotest.test_case "session lifecycle" `Quick test_webgen_session_lifecycle;
          Alcotest.test_case "5xx retries" `Quick test_webgen_5xx_retries;
          Alcotest.test_case "uri mix counted" `Quick test_webgen_uri_mix_counted ] );
      ( "others",
        [ Alcotest.test_case "heavy hitter flags elephants" `Quick test_heavy_hitter_flags_elephants;
          Alcotest.test_case "iplookup default route" `Quick test_iplookup_default_route ] ) ]
