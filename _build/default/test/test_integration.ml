(** Cross-cutting integration tests: Clara's combined insights never hurt
    across the whole corpus, the toolchain is bit-for-bit deterministic,
    and pcap-trace-driven analysis matches generated-workload analysis. *)

open Nf_lang

let spec = { Workload.small_flows with Workload.n_packets = 300 }

(* 1: applying placement + packing insights never loses peak throughput *)
let test_insights_never_hurt () =
  List.iter
    (fun (elt : Ast.element) ->
      let naive = Nicsim.Nic.port elt spec in
      let placement =
        if elt.Ast.state = [] then None else Some (Clara.Placement.solve elt naive)
      in
      let packs = Clara.Coalesce.suggest elt naive.Nicsim.Nic.profile in
      let tuned =
        Nicsim.Nic.reconfigure naive { Nicsim.Nic.accel_apis = []; placement; packs }
      in
      let peak p = (Nicsim.Nic.peak p).Nicsim.Multicore.throughput_mpps in
      Alcotest.(check bool)
        (elt.Ast.name ^ ": tuned port at least as fast")
        true
        (peak tuned >= peak naive -. 1e-6))
    (Corpus.table2 ())

(* 2: end-to-end determinism of the port pipeline *)
let test_port_deterministic () =
  let demand name =
    (Nicsim.Nic.port (Corpus.find name) spec).Nicsim.Nic.demand
  in
  List.iter
    (fun name ->
      let a = demand name and b = demand name in
      Alcotest.(check (float 0.0)) (name ^ " compute identical") a.Nicsim.Perf.compute
        b.Nicsim.Perf.compute;
      Array.iteri
        (fun i v -> Alcotest.(check (float 0.0)) "levels identical" b.Nicsim.Perf.levels.(i) v)
        a.Nicsim.Perf.levels)
    [ "Mazu-NAT"; "firewall"; "DNSProxy" ]

let test_training_deterministic () =
  let predict () =
    let ds = Clara.Predictor.synthesize_dataset ~n:12 () in
    let m = Clara.Predictor.train ~epochs:3 ds in
    List.map (fun (_, c, _) -> c) (Clara.Predictor.predict_element m (Corpus.find "tcpack"))
  in
  let a = predict () and b = predict () in
  List.iter2 (fun x y -> Alcotest.(check (float 0.0)) "same prediction" x y) a b

(* 3: a saved pcap trace drives the same analysis as the live workload *)
let test_trace_driven_analysis_matches () =
  let elt = Corpus.find "UDPCount" in
  let packets = Workload.generate spec in
  let path = Filename.temp_file "clara_analysis" ".pcap" in
  Workload.Trace.save path packets;
  let replayed = Workload.Trace.load path in
  Sys.remove path;
  let profile pkts =
    let interp = Interp.create ~mode:State.Nic elt in
    Interp.run interp pkts
  in
  let p1 = profile packets and p2 = profile replayed in
  List.iter
    (fun d ->
      let name = Ast.state_name d in
      Alcotest.(check int)
        (name ^ " accesses equal under replay")
        (Interp.global_accesses p1 name)
        (Interp.global_accesses p2 name))
    elt.Ast.state;
  (* coalescing decisions agree too *)
  Alcotest.(check bool) "same packs" true
    (Clara.Coalesce.suggest elt p1 = Clara.Coalesce.suggest elt p2)

(* 4: every corpus NF flows through the complete naive-port pipeline with a
   sane operating point *)
let test_corpus_operating_points_sane () =
  List.iter
    (fun (elt : Ast.element) ->
      let ported = Nicsim.Nic.port elt { spec with Workload.n_packets = 150 } in
      let peak = Nicsim.Nic.peak ported in
      Alcotest.(check bool) (elt.Ast.name ^ " peak positive") true
        (peak.Nicsim.Multicore.throughput_mpps > 0.0);
      Alcotest.(check bool) (elt.Ast.name ^ " below line rate") true
        (peak.Nicsim.Multicore.throughput_mpps <= 60.0);
      Alcotest.(check bool) (elt.Ast.name ^ " latency sane") true
        (peak.Nicsim.Multicore.latency_us > 0.0 && peak.Nicsim.Multicore.latency_us < 10_000.0))
    (Corpus.all ())

let () =
  Alcotest.run "integration"
    [ ( "insights",
        [ Alcotest.test_case "never hurt across the corpus" `Slow test_insights_never_hurt ] );
      ( "determinism",
        [ Alcotest.test_case "port pipeline" `Quick test_port_deterministic;
          Alcotest.test_case "training" `Slow test_training_deterministic ] );
      ( "traces",
        [ Alcotest.test_case "trace-driven analysis" `Quick test_trace_driven_analysis_matches ] );
      ( "corpus",
        [ Alcotest.test_case "operating points sane" `Slow test_corpus_operating_points_sane ] ) ]
