(** Tests for the SmartNIC simulator: the NFCC-like compiler's instruction
    selection rules, memory hierarchy, API cost derivation, the demand
    model, multicore contention, and colocation. *)

open Nf_lang
open Nicsim

let lower stmts =
  Nf_frontend.Lower.lower_element
    (let open Build in
     element "t" stmts)

let lower_state state stmts =
  Nf_frontend.Lower.lower_element
    (let open Build in
     element "t" ~state stmts)

let nic_instrs f = Nfcc.all_instrs (Nfcc.compile f)

(* -- NFCC instruction selection -- *)

let test_nfcc_shift_fusion () =
  (* (x << 2) + y fuses: the shift disappears into alu_shf *)
  let fused = lower Build.[ let_ "r" (hdr Ast.Ip_dst + (hdr Ast.Ip_src lsl i 2)); emit 0 ] in
  let apart = lower Build.[ let_ "a" (hdr Ast.Ip_src lsl i 2); let_ "r" (l "a" + hdr Ast.Ip_dst); emit 0 ] in
  let count_op op f = List.length (List.filter (fun i -> i.Isa.op = op) (nic_instrs f)) in
  Alcotest.(check int) "fused alu_shf present" 1 (count_op Isa.Alu_shf fused);
  Alcotest.(check int) "no fusion across a local" 0 (count_op Isa.Alu_shf apart)

let test_nfcc_mul_expansion () =
  let pow2 = lower Build.[ let_ "r" (hdr Ast.Ip_src * i 8); emit 0 ] in
  let small = lower Build.[ let_ "r" (hdr Ast.Ip_src * i 7); emit 0 ] in
  let big = lower Build.[ let_ "r" (hdr Ast.Ip_src * i 1000000); emit 0 ] in
  let steps f = List.length (List.filter (fun i -> i.Isa.op = Isa.Mul_step) (nic_instrs f)) in
  Alcotest.(check int) "pow2 multiply is a shift" 0 (steps pow2);
  Alcotest.(check int) "small multiply: 2 steps" 2 (steps small);
  Alcotest.(check int) "large multiply: 4 steps" 4 (steps big)

let test_nfcc_immediate_expansion () =
  let count f = Isa.count_compute (nic_instrs f) in
  let small = lower Build.[ let_ "r" (hdr Ast.Ip_src + i 5); emit 0 ] in
  let big = lower Build.[ let_ "r" (hdr Ast.Ip_src + i 0x123456); emit 0 ] in
  Alcotest.(check bool) "large immediates cost extra instructions" true (count big > count small)

let test_nfcc_cmp_branch_fusion () =
  let f = lower Build.[ when_ (hdr Ast.Ip_ttl > i 3) [ drop ]; emit 0 ] in
  let brcmp = List.length (List.filter (fun i -> i.Isa.op = Isa.Br_cmp) (nic_instrs f)) in
  Alcotest.(check bool) "fused compare-branch" true (brcmp >= 1)

let test_nfcc_register_allocation () =
  (* few locals: all register-allocated, no LMEM traffic *)
  let small = lower Build.[ let_ "a" (i 1); let_ "b" (l "a" + i 1); emit 0 ] in
  Alcotest.(check int) "no spills with few locals" 0 (Isa.count_local_mem (nic_instrs small));
  (* many locals: some spill *)
  let many =
    lower
      (List.init 30 (fun k -> Build.let_ (Printf.sprintf "v%d" k) (Build.i k))
      @ [ (let open Build in
           let_ "sum" (List.fold_left (fun acc k -> Build.(acc + l (Printf.sprintf "v%d" k))) (i 0) (List.init 30 (fun k -> k))) );
          Build.emit 0 ])
  in
  Alcotest.(check bool) "spills appear past the register budget" true
    (Isa.count_local_mem (nic_instrs many) > 0)

let test_nfcc_stateful_mem_mapping () =
  let f =
    lower_state
      Build.[ scalar "a"; scalar "b" ]
      Build.[ set_g "a" (g "b" + i 1); emit 0 ]
  in
  let compiled = Nfcc.compile f in
  Alcotest.(check int) "one load + one store" 2 (Nfcc.count_mem compiled);
  let targets = List.sort compare (List.map fst (Nfcc.mem_by_target compiled)) in
  Alcotest.(check (list string)) "targets named" [ "a"; "b" ] targets

let test_nfcc_payload_goes_to_ctm () =
  let f = lower Build.[ let_ "x" (payload (i 3)); emit 0 ] in
  let compiled = Nfcc.compile f in
  let pkt_refs =
    List.filter (fun i -> Isa.mem_target i = Some Mem.packet_buffer) (Nfcc.all_instrs compiled)
  in
  Alcotest.(check int) "payload read hits the packet buffer" 1 (List.length pkt_refs);
  Alcotest.(check int) "packet buffer not counted as NF state" 0 (Nfcc.count_mem compiled)

let test_nfcc_burst_merge () =
  (* consecutive reads of the same array merge into one command *)
  let f =
    lower_state
      Build.[ array "t" 64 ]
      Build.[ let_ "s" (arr_get "t" (i 0) + arr_get "t" (i 1)); emit 0 ]
  in
  Alcotest.(check int) "two adjacent reads merge into one" 1 (Nfcc.count_mem (Nfcc.compile f))

let test_nfcc_accel_replaces_call () =
  let elt =
    let open Build in
    element "crc" [ let_ "c" (api "crc32_payload" [ i 0; i 8 ]); emit 0 ]
  in
  let f = Nf_frontend.Lower.lower_element elt in
  let plain = Nfcc.compile f in
  let accel = Nfcc.compile ~config:(Accel.accel_config [ "crc32_payload" ]) f in
  let has_accel c =
    List.exists (fun i -> match i.Isa.op with Isa.Accel_call _ -> true | _ -> false) (Nfcc.all_instrs c)
  in
  Alcotest.(check bool) "plain build has no accel calls" false (has_accel plain);
  Alcotest.(check bool) "accel build hands off to the engine" true (has_accel accel)

let test_nfcc_deterministic () =
  let f = Nf_frontend.Lower.lower_element (Corpus.find "Mazu-NAT") in
  let a = Nfcc.compile f and b = Nfcc.compile f in
  Alcotest.(check int) "deterministic output size" (Nfcc.count_total a) (Nfcc.count_total b)

(* -- Mem -- *)

let test_mem_monotone () =
  let lat = List.map Mem.base_latency Mem.all_levels in
  let rec increasing = function a :: (b :: _ as rest) -> a < b && increasing rest | _ -> true in
  Alcotest.(check bool) "latencies increase down the hierarchy" true (increasing lat);
  let cap = List.map Mem.capacity_bytes Mem.all_levels in
  Alcotest.(check bool) "capacities increase" true (increasing (List.map float_of_int cap))

let test_mem_emem_cache () =
  Alcotest.(check (float 1e-9)) "hit ratio 1 -> cache latency" Mem.emem_cache_hit_latency
    (Mem.emem_latency ~hit_ratio:1.0);
  Alcotest.(check (float 1e-9)) "hit ratio 0 -> dram latency" (Mem.base_latency Mem.EMEM)
    (Mem.emem_latency ~hit_ratio:0.0)

let test_mem_placement_defaults () =
  Alcotest.(check bool) "unplaced structure defaults to EMEM" true
    (Mem.level_of [] "whatever" = Mem.EMEM);
  Alcotest.(check bool) "packet buffer pinned to CTM" true
    (Mem.level_of [ (Mem.packet_buffer, Mem.EMEM) ] Mem.packet_buffer = Mem.CTM)

let test_mem_feasible () =
  let sizes = [ ("big", Mem.capacity_bytes Mem.CLS + 1) ] in
  Alcotest.(check bool) "oversized placement infeasible" false
    (Mem.feasible [ ("big", Mem.CLS) ] ~sizes);
  Alcotest.(check bool) "EMEM fits" true (Mem.feasible [ ("big", Mem.EMEM) ] ~sizes)

(* -- Api_cost -- *)

let test_api_cost_positive () =
  let elt = Corpus.find "Mazu-NAT" in
  let f = Nf_frontend.Lower.lower_element elt in
  List.iter
    (fun (call, impl) ->
      let p = Api_cost.profile_of_impl impl in
      Alcotest.(check bool) (call ^ " fixed cycles > 0") true (p.Api_cost.fixed.Api_cost.cycles > 0.0))
    (Nf_frontend.Api_ir.impls_for_element elt f)

let test_api_cost_probe_scaling () =
  let elt = Corpus.find "firewall" in
  let f = Nf_frontend.Lower.lower_element elt in
  let impls = Nf_frontend.Api_ir.impls_for_element elt f in
  let p = Api_cost.profile_of_impl (List.assoc "map_find.conn_track" impls) in
  let profile = Interp.new_profile () in
  let spec = Workload.default in
  let base = Api_cost.call_cost p profile spec in
  (* per-unit part contributes: cost with 1 probe < cost formula with more
     probes (simulate by a profile that recorded 4-probe operations) *)
  Alcotest.(check bool) "cycles positive" true (base.Api_cost.cycles > 0.0)

(* -- Perf / demand -- *)

let spec = { Workload.default with Workload.n_packets = 200; Workload.proto = Workload.Mixed }

let test_demand_basics () =
  let ported = Nic.port (Corpus.find "Mazu-NAT") spec in
  let d = ported.Nic.demand in
  Alcotest.(check bool) "compute positive" true (d.Perf.compute > 0.0);
  Alcotest.(check bool) "naive port stresses EMEM" true (d.Perf.levels.(Mem.level_index Mem.EMEM) > 1.0);
  Alcotest.(check bool) "intensity positive" true (Perf.arithmetic_intensity d > 0.0)

let test_demand_placement_moves_levels () =
  let elt = Corpus.find "aggcounter" in
  let naive = Nic.port elt spec in
  let imem_placement = List.map (fun n -> (n, Mem.IMEM)) (Nic.state_names elt) in
  let placed = Nic.reconfigure naive { Nic.naive_port with Nic.placement = Some imem_placement } in
  Alcotest.(check (float 1e-9)) "EMEM emptied" 0.0
    placed.Nic.demand.Perf.levels.(Mem.level_index Mem.EMEM);
  Alcotest.(check bool) "IMEM populated" true
    (placed.Nic.demand.Perf.levels.(Mem.level_index Mem.IMEM)
    > naive.Nic.demand.Perf.levels.(Mem.level_index Mem.IMEM))

let test_demand_packing_reduces_accesses () =
  let elt = Corpus.find "webtcp" in
  let s = { spec with Workload.n_flows = 32; Workload.n_packets = 600 } in
  let naive = Nic.port elt s in
  let packed =
    Nic.reconfigure naive
      { Nic.naive_port with Nic.packs = [ [ "req_count"; "resp_count"; "bytes_in"; "bytes_out" ] ] }
  in
  Alcotest.(check bool) "packing reduces memory accesses" true
    (Perf.total_mem_accesses packed.Nic.demand < Perf.total_mem_accesses naive.Nic.demand)

let test_demand_accel_shifts_work () =
  let s = spec in
  let naive = Nic.port (Corpus.find "cmsketch_accel") s in
  let accel =
    Nic.port ~config:{ Nic.naive_port with Nic.accel_apis = [ "crc32_payload" ] }
      (Corpus.find "cmsketch_accel") s
  in
  Alcotest.(check bool) "engine ops appear" true (accel.Nic.demand.Perf.accel_ops <> []);
  Alcotest.(check bool) "core compute drops" true
    (accel.Nic.demand.Perf.compute < naive.Nic.demand.Perf.compute)

let test_demand_reconfigure_matches_port () =
  let elt = Corpus.find "UDPCount" in
  let naive = Nic.port elt spec in
  let placement = List.map (fun n -> (n, Mem.IMEM)) (Nic.state_names elt) in
  let config = { Nic.naive_port with Nic.placement = Some placement } in
  let a = Nic.reconfigure naive config in
  let b = Nic.port ~config elt spec in
  Alcotest.(check (float 1e-6)) "same compute" b.Nic.demand.Perf.compute a.Nic.demand.Perf.compute;
  Array.iteri
    (fun i v -> Alcotest.(check (float 1e-6)) "same levels" b.Nic.demand.Perf.levels.(i) v)
    a.Nic.demand.Perf.levels

(* -- Multicore -- *)

let test_multicore_monotone_throughput () =
  let d = (Nic.port (Corpus.find "Mazu-NAT") spec).Nic.demand in
  let points = Multicore.sweep d in
  let rec nondecreasing = function
    | (a : Multicore.point) :: (b :: _ as rest) ->
      b.Multicore.throughput_mpps >= a.Multicore.throughput_mpps -. 1e-6 && nondecreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "throughput nondecreasing in cores" true (nondecreasing points)

let test_multicore_wire_cap () =
  let d = (Nic.port (Corpus.find "anonipaddr") spec).Nic.demand in
  let p = Multicore.measure d ~cores:60 in
  let wire_mpps = Multicore.default_nic.Multicore.wire_gbps *. 1000.0 /. (8.0 *. float_of_int (d.Perf.wire_bytes + 20)) in
  Alcotest.(check bool) "never exceeds line rate" true (p.Multicore.throughput_mpps <= wire_mpps +. 1e-6)

let test_multicore_latency_grows_past_knee () =
  let d = (Nic.port (Corpus.find "firewall") { spec with Workload.n_flows = 100_000 }).Nic.demand in
  let p10 = Multicore.measure d ~cores:10 in
  let p60 = Multicore.measure d ~cores:60 in
  Alcotest.(check bool) "saturated latency grows" true
    (p60.Multicore.latency_us >= p10.Multicore.latency_us)

let test_multicore_optimal_in_range () =
  List.iter
    (fun name ->
      let d = (Nic.port (Corpus.find name) spec).Nic.demand in
      let c = Multicore.optimal_cores d in
      Alcotest.(check bool) (name ^ " optimal in 1..60") true (c >= 1 && c <= 60))
    [ "Mazu-NAT"; "anonipaddr"; "UDPCount"; "dpi" ]

let test_multicore_cores_to_saturate () =
  let d = (Nic.port (Corpus.find "UDPCount") spec).Nic.demand in
  let c = Multicore.cores_to_saturate d in
  Alcotest.(check bool) "in range" true (c >= 1 && c <= 60)

let test_faster_memory_means_lower_latency () =
  let elt = Corpus.find "aggcounter" in
  let naive = Nic.port elt { spec with Workload.n_flows = 100_000 } in
  let imem = Nic.reconfigure naive
      { Nic.naive_port with Nic.placement = Some (List.map (fun n -> (n, Mem.IMEM)) (Nic.state_names elt)) }
  in
  let l_naive = (Multicore.measure naive.Nic.demand ~cores:8).Multicore.latency_us in
  let l_imem = (Multicore.measure imem.Nic.demand ~cores:8).Multicore.latency_us in
  Alcotest.(check bool) "IMEM beats EMEM under misses" true (l_imem < l_naive)

(* -- Colocate -- *)

let test_colocate_degrades () =
  let d1 = (Nic.port (Corpus.find "Mazu-NAT") spec).Nic.demand in
  let d2 = (Nic.port (Corpus.find "UDPCount") spec).Nic.demand in
  let r = Colocate.colocate d1 d2 in
  Alcotest.(check bool) "coloc throughput below solo" true
    (r.Colocate.t1.Multicore.throughput_mpps <= r.Colocate.solo1.Multicore.throughput_mpps +. 1e-6);
  Alcotest.(check bool) "total loss in [0,1]" true
    (let l = Colocate.total_throughput_loss r in
     l >= -1e-6 && l <= 1.0)

let test_colocate_memory_bound_pairs_worse () =
  let mem_d = (Nic.port (Corpus.find "firewall") { spec with Workload.n_flows = 100_000 }).Nic.demand in
  let cpu_d = (Nic.port (Corpus.find "anonipaddr") spec).Nic.demand in
  let mm = Colocate.total_throughput_loss (Colocate.colocate mem_d mem_d) in
  let cc = Colocate.total_throughput_loss (Colocate.colocate cpu_d cpu_d) in
  Alcotest.(check bool) "memory-bound pair degrades more" true (mm > cc)

(* -- Accel -- *)

let test_accel_tables () =
  List.iter
    (fun e ->
      Alcotest.(check bool) (Accel.engine_name e ^ " bandwidth positive") true (Accel.bandwidth e > 0.0);
      Alcotest.(check bool) "latency positive" true (Accel.latency e ~payload_bytes:64 > 0.0))
    [ Accel.Crc; Accel.Checksum; Accel.Lpm; Accel.Flow_cache ];
  Alcotest.(check bool) "crc latency grows with payload" true
    (Accel.latency Accel.Crc ~payload_bytes:1024 > Accel.latency Accel.Crc ~payload_bytes:64)

(* qcheck: demand assembly is total and nonnegative over synth programs *)
let prop_demand_nonnegative =
  QCheck.Test.make ~name:"demands are finite and nonnegative" ~count:20
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let stats = Synth.Ast_stats.of_corpus (Corpus.table2 ()) in
      let elt = Synth.Generator.generate ~stats ~seed (Printf.sprintf "qd_%d" seed) in
      let ported = Nic.port elt { spec with Workload.n_packets = 40 } in
      let d = ported.Nic.demand in
      d.Perf.compute > 0.0
      && Array.for_all (fun v -> v >= 0.0 && Float.is_finite v) d.Perf.levels)

let prop_throughput_monotone_in_cores =
  QCheck.Test.make ~name:"throughput monotone in cores" ~count:15
    QCheck.(pair (int_range 0 10_000) (int_range 1 59))
    (fun (seed, cores) ->
      let stats = Synth.Ast_stats.of_corpus (Corpus.table2 ()) in
      let elt = Synth.Generator.generate ~stats ~seed (Printf.sprintf "qm_%d" seed) in
      let d = (Nic.port elt { spec with Workload.n_packets = 40 }).Nic.demand in
      let a = Multicore.measure d ~cores in
      let b = Multicore.measure d ~cores:(cores + 1) in
      b.Multicore.throughput_mpps >= a.Multicore.throughput_mpps -. 1e-6)


let prop_compiled_size_bounded =
  QCheck.Test.make ~name:"NFCC output size bounded by IR size" ~count:25
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let stats = Synth.Ast_stats.of_corpus (Corpus.table2 ()) in
      let elt = Synth.Generator.generate ~stats ~seed (Printf.sprintf "qn_%d" seed) in
      let f = Nf_frontend.Lower.lower_element elt in
      let c = Nfcc.compile f in
      (* every compiled instruction traces back to at most a bounded
         expansion of one IR instruction (multiplies expand 5x worst) *)
      Nfcc.count_total c <= 5 * Nf_ir.Ir.count_total f
      && Nfcc.count_total c > 0)

let prop_accel_removes_inline_cost =
  QCheck.Test.make ~name:"accelerating an API call never adds compute" ~count:15
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let stats = Synth.Ast_stats.of_corpus (Corpus.table2 ()) in
      let elt = Synth.Generator.generate ~stats ~seed (Printf.sprintf "qa_%d" seed) in
      let f = Nf_frontend.Lower.lower_element elt in
      let plain = Nfcc.compile f in
      let accel =
        Nfcc.compile ~config:(Accel.accel_config [ "crc16_payload"; "hash32"; "checksum_update_ip" ]) f
      in
      Nfcc.count_total accel <= Nfcc.count_total plain)

let prop_cache_hit_monotone =
  QCheck.Test.make ~name:"cache hit ratio monotone in cache size" ~count:50
    QCheck.(triple (int_range 10 100_000) (int_range 1 50_000) (int_range 1 50_000))
    (fun (flows, c1, c2) ->
      let lo = min c1 c2 and hi = max c1 c2 in
      let spec = { Workload.default with Workload.n_flows = flows } in
      Workload.cache_hit_ratio spec ~cache_flows:lo
      <= Workload.cache_hit_ratio spec ~cache_flows:hi +. 1e-9)

let () =
  Alcotest.run "nicsim"
    [ ( "nfcc",
        [ Alcotest.test_case "shift fusion" `Quick test_nfcc_shift_fusion;
          Alcotest.test_case "mul expansion" `Quick test_nfcc_mul_expansion;
          Alcotest.test_case "immediate expansion" `Quick test_nfcc_immediate_expansion;
          Alcotest.test_case "cmp-branch fusion" `Quick test_nfcc_cmp_branch_fusion;
          Alcotest.test_case "register allocation" `Quick test_nfcc_register_allocation;
          Alcotest.test_case "stateful mem mapping" `Quick test_nfcc_stateful_mem_mapping;
          Alcotest.test_case "payload to CTM" `Quick test_nfcc_payload_goes_to_ctm;
          Alcotest.test_case "burst merge" `Quick test_nfcc_burst_merge;
          Alcotest.test_case "accel call" `Quick test_nfcc_accel_replaces_call;
          Alcotest.test_case "deterministic" `Quick test_nfcc_deterministic ] );
      ( "mem",
        [ Alcotest.test_case "monotone hierarchy" `Quick test_mem_monotone;
          Alcotest.test_case "emem cache" `Quick test_mem_emem_cache;
          Alcotest.test_case "placement defaults" `Quick test_mem_placement_defaults;
          Alcotest.test_case "feasibility" `Quick test_mem_feasible ] );
      ( "api_cost",
        [ Alcotest.test_case "positive costs" `Quick test_api_cost_positive;
          Alcotest.test_case "probe scaling" `Quick test_api_cost_probe_scaling ] );
      ( "demand",
        [ Alcotest.test_case "basics" `Quick test_demand_basics;
          Alcotest.test_case "placement moves levels" `Quick test_demand_placement_moves_levels;
          Alcotest.test_case "packing reduces accesses" `Quick test_demand_packing_reduces_accesses;
          Alcotest.test_case "accel shifts work" `Quick test_demand_accel_shifts_work;
          Alcotest.test_case "reconfigure = port" `Quick test_demand_reconfigure_matches_port ] );
      ( "multicore",
        [ Alcotest.test_case "monotone throughput" `Quick test_multicore_monotone_throughput;
          Alcotest.test_case "wire cap" `Quick test_multicore_wire_cap;
          Alcotest.test_case "latency past knee" `Quick test_multicore_latency_grows_past_knee;
          Alcotest.test_case "optimal in range" `Quick test_multicore_optimal_in_range;
          Alcotest.test_case "cores to saturate" `Quick test_multicore_cores_to_saturate;
          Alcotest.test_case "faster memory lower latency" `Quick test_faster_memory_means_lower_latency ] );
      ( "colocate",
        [ Alcotest.test_case "degrades" `Quick test_colocate_degrades;
          Alcotest.test_case "memory-bound pairs worse" `Quick test_colocate_memory_bound_pairs_worse ] );
      ("accel", [ Alcotest.test_case "tables" `Quick test_accel_tables ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_demand_nonnegative; prop_throughput_monotone_in_cores;
            prop_compiled_size_bounded; prop_accel_removes_inline_cost;
            prop_cache_hit_monotone ] ) ]
