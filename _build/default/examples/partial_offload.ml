(** Partial offloading advisor (§6 extension).

    Run with: dune exec examples/partial_offload.exe

    For each NF, Clara enumerates deployment plans — full NIC offload,
    host-only, and every state-disjoint split of the handler — prices each
    with the NIC simulator, an x86 host model and the PCIe link, and
    recommends where the NF (or which half of it) should run. *)

let nfs = [ "anonipaddr"; "dpi"; "firewall"; "cmsketch"; "heavy_hitter" ]

let () =
  print_endline "== Clara partial-offloading advisor ==";
  let spec =
    { Workload.default with
      Workload.n_packets = 400;
      Workload.proto = Workload.Mixed;
      Workload.payload_len = 200 }
  in
  let rows =
    List.map
      (fun name ->
        let elt = Nf_lang.Corpus.find name in
        let evals = Clara.Partial.analyze elt spec in
        let best = List.hd evals in
        let full_nic =
          List.find (fun e -> e.Clara.Partial.plan = Clara.Partial.Full_nic) evals
        in
        [ name;
          Clara.Partial.plan_name best.Clara.Partial.plan;
          Printf.sprintf "%.2f" best.Clara.Partial.throughput_mpps;
          Printf.sprintf "%.2f" best.Clara.Partial.latency_us;
          Printf.sprintf "%.2f" full_nic.Clara.Partial.throughput_mpps;
          Printf.sprintf "%.2f" full_nic.Clara.Partial.latency_us ])
      nfs
  in
  Util.Table.print ~align:Util.Table.Left
    ~header:[ "NF"; "recommended plan"; "Th"; "Lat"; "full-NIC Th"; "full-NIC Lat" ]
    rows;
  print_endline
    "\n(200B payloads make byte-scanning NFs expensive on the wimpy NIC cores:\nDPI-style work migrates to the host or a split, while cheap header NFs\nstay fully offloaded.)"
