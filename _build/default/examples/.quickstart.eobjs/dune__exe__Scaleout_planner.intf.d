examples/scaleout_planner.mli:
