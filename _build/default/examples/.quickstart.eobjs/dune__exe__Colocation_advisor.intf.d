examples/colocation_advisor.mli:
