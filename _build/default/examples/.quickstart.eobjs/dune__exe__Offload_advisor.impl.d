examples/offload_advisor.ml: Clara List Multicore Nf_lang Nic Nicsim Printf Util Workload
