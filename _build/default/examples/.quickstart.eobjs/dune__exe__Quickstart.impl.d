examples/quickstart.ml: Clara List Nf_lang Printf String Workload
