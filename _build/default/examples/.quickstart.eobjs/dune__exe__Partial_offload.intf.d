examples/partial_offload.mli:
