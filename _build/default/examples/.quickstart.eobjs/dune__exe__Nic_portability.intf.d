examples/nic_portability.mli:
