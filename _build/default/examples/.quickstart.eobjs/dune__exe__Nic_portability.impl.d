examples/nic_portability.ml: List Nf_lang Nicsim Printf Util Workload
