examples/quickstart.mli:
