examples/scaleout_planner.ml: Clara List Multicore Nf_lang Nic Nicsim Printf Util Workload
