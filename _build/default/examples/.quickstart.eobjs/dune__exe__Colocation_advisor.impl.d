examples/colocation_advisor.ml: Array Clara Colocate List Multicore Nf_lang Nic Nicsim Printf Synth Util Workload
