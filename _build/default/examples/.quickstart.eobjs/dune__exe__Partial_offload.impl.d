examples/partial_offload.ml: Clara List Nf_lang Printf Util Workload
