examples/offload_advisor.mli:
