(** Scale-out planner: pick core counts without sweeping the hardware.

    Run with: dune exec examples/scaleout_planner.exe

    Trains Clara's GBDT cost model on synthesized NFs (the TVM-style
    'separate the algorithm from the schedule' phase, §4.2), then plans
    core assignments for real NFs under two traffic profiles and compares
    each suggestion against an exhaustive hardware sweep. *)

open Nicsim

let nfs = [ "Mazu-NAT"; "UDPCount"; "WebGen"; "firewall"; "dpi" ]

let () =
  print_endline "== Clara scale-out planner ==";
  print_endline "Training the GBDT cost model on synthesized deployments...";
  let samples = Clara.Scaleout.training_samples ~n_programs:25 () in
  let model = Clara.Scaleout.train ~samples () in
  let plan spec_name spec =
    Printf.printf "\nWorkload: %s\n" spec_name;
    let rows =
      List.map
        (fun name ->
          let ported = Nic.port (Nf_lang.Corpus.find name) spec in
          let suggested = Clara.Scaleout.suggest model ported.Nic.demand in
          let optimal = Multicore.optimal_cores ported.Nic.demand in
          let at n = Nic.measure ~cores:n ported in
          let s = at suggested and o = at optimal in
          [ name; string_of_int suggested; string_of_int optimal;
            Printf.sprintf "%.2f" s.Multicore.throughput_mpps;
            Printf.sprintf "%.2f" o.Multicore.throughput_mpps;
            Printf.sprintf "%.1f%%"
              (100.0 *. abs_float (s.Multicore.throughput_mpps -. o.Multicore.throughput_mpps)
              /. max 1e-9 o.Multicore.throughput_mpps) ])
        nfs
    in
    Util.Table.print ~align:Util.Table.Left
      ~header:[ "NF"; "Clara cores"; "optimal"; "Th@Clara"; "Th@optimal"; "Th gap" ]
      rows
  in
  plan "large flows (cache-friendly)" { Workload.large_flows with Workload.n_packets = 500 };
  plan "small flows (cache-hostile)" { Workload.small_flows with Workload.n_packets = 500 };
  print_endline
    "\nThe planner's value: each row of 'optimal' required a 60-point hardware sweep;\nClara's suggestion needed only the (simulated) program analysis."
