(** Offload advisor: apply Clara's insights and measure the payoff.

    Run with: dune exec examples/offload_advisor.exe

    For a set of NFs, this example compares a naive port (faithful
    translation, all state in EMEM, no accelerators) against the port
    Clara's insight bundle suggests — accelerator rewrites, ILP state
    placement and coalesced variable packs — on the simulated SmartNIC. *)

open Nicsim

let nfs = [ "cmsketch"; "UDPCount"; "webtcp"; "firewall" ]

(* the accelerated rewrite of an NF, when the corpus provides one *)
let accel_variant name =
  match name with "cmsketch" -> Some "cmsketch_accel" | "wepdecap" -> Some "wepdecap_accel" | _ -> None

let () =
  print_endline "== Clara offload advisor ==";
  print_endline "Training models (quick mode, no scale-out model)...";
  let models = Clara.Pipeline.train ~quick:true ~with_scaleout:false () in
  let spec =
    { Workload.default with
      Workload.n_packets = 800;
      Workload.proto = Workload.Mixed;
      Workload.n_flows = 4096 }
  in
  let rows =
    List.map
      (fun name ->
        let elt = Nf_lang.Corpus.find name in
        let insight = Clara.Pipeline.analyze models elt spec in
        (* build the Clara port: detected accelerators pick the rewritten
           element variant; placement and packs come from the bundle *)
        let config = Clara.Insights.to_port_config insight in
        let clara_elt =
          match (insight.Clara.Insights.accel, accel_variant name) with
          | _ :: _, Some variant -> Nf_lang.Corpus.find variant
          | _ -> elt
        in
        let naive = Nic.port elt spec in
        let clara = Nic.port ~config clara_elt spec in
        let n = Nic.peak naive and c = Nic.peak clara in
        Printf.printf "\n--- %s ---\n%s\n" name (Clara.Insights.render insight);
        [ name;
          Printf.sprintf "%.2f" n.Multicore.throughput_mpps;
          Printf.sprintf "%.2f" c.Multicore.throughput_mpps;
          Printf.sprintf "%.2fx" (c.Multicore.throughput_mpps /. n.Multicore.throughput_mpps);
          Printf.sprintf "%.2f" n.Multicore.latency_us;
          Printf.sprintf "%.2f" c.Multicore.latency_us ])
      nfs
  in
  print_newline ();
  Util.Table.print ~align:Util.Table.Left
    ~header:[ "NF"; "naive Th"; "Clara Th"; "gain"; "naive Lat"; "Clara Lat" ]
    rows;
  print_endline "\n(Th in Mpps at the peak operating point; Lat in microseconds.)"
