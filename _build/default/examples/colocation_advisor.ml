(** Colocation advisor: rank NF pairs before deploying them together.

    Run with: dune exec examples/colocation_advisor.exe

    Given a set of candidate NFs to colocate on one SmartNIC, Clara's
    LambdaMART ranker (trained on synthesized NF pairs) predicts which
    pairing suffers the least interference; the advisor then validates the
    ranking against the simulator's measured degradation (§4.5). *)

open Nicsim

let candidates = [ "Mazu-NAT"; "DNSProxy"; "UDPCount"; "WebGen"; "heavy_hitter" ]

let () =
  print_endline "== Clara colocation advisor ==";
  let spec =
    { Workload.default with
      Workload.n_packets = 500;
      Workload.proto = Workload.Mixed;
      Workload.n_flows = 8192 }
  in
  (* training pool: synthesized NFs under the same workload *)
  print_endline "Measuring synthesized NF pairs for ranking supervision...";
  let pool =
    List.filter_map
      (fun elt ->
        match Nic.port elt spec with
        | p -> Some p.Nic.demand
        | exception _ -> None)
      (Synth.Generator.batch ~seed:808 25)
    |> Array.of_list
  in
  let model = Clara.Colocation.train ~objective:Clara.Colocation.Total_throughput pool in
  (* candidate pairs *)
  let demands =
    List.map (fun n -> (n, (Nic.port (Nf_lang.Corpus.find n) spec).Nic.demand)) candidates
  in
  let rec pairs = function
    | [] -> []
    | (n1, d1) :: rest -> List.map (fun (n2, d2) -> ((n1, n2), (d1, d2))) rest @ pairs rest
  in
  let all_pairs = pairs demands in
  let order = Clara.Colocation.rank model (List.map snd all_pairs) in
  print_endline "\nClara's ranking (best colocation partner first), with measured ground truth:";
  let rows =
    List.map
      (fun idx ->
        let (n1, n2), (d1, d2) = List.nth all_pairs idx in
        let r = Colocate.colocate d1 d2 in
        [ n1 ^ " + " ^ n2;
          Printf.sprintf "%.1f%%" (100.0 *. Colocate.total_throughput_loss r);
          Printf.sprintf "%.2f+%.2f" r.Colocate.t1.Multicore.throughput_mpps
            r.Colocate.t2.Multicore.throughput_mpps ])
      order
  in
  Util.Table.print ~align:Util.Table.Left
    ~header:[ "pair (Clara rank order)"; "measured total loss"; "coloc Th (Mpps)" ]
    rows;
  print_endline
    "\nA good ranking lists pairs with low measured loss first; memory-intense pairs\n(contending for EMEM bandwidth) should sink to the bottom."
