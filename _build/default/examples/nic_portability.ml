(** SmartNIC portability study (§6 extension).

    Run with: dune exec examples/nic_portability.exe

    The same unported NF targets three SoC-SmartNIC profiles.  Clara's
    schedule (core-count) suggestions are platform-specific: the knee of
    the latency curve moves with the core complex and memory fabric. *)

let nfs = [ "Mazu-NAT"; "flowmonitor"; "loadbalancer"; "dpi" ]

let () =
  print_endline "== SmartNIC portability study ==";
  let spec =
    { Workload.default with
      Workload.n_packets = 500;
      Workload.proto = Workload.Mixed;
      Workload.n_flows = 8192 }
  in
  List.iter
    (fun profile ->
      Printf.printf "\n%s\n" profile.Nicsim.Profiles.name;
      let rows =
        List.map
          (fun name ->
            let d = (Nicsim.Nic.port (Nf_lang.Corpus.find name) spec).Nicsim.Nic.demand in
            let knee = Nicsim.Profiles.optimal_cores profile d in
            let at_knee = Nicsim.Profiles.measure profile d ~cores:knee in
            [ name; string_of_int knee;
              Printf.sprintf "%.2f" at_knee.Nicsim.Multicore.throughput_mpps;
              Printf.sprintf "%.2f" at_knee.Nicsim.Multicore.latency_us ])
          nfs
      in
      Util.Table.print ~align:Util.Table.Left
        ~header:[ "NF"; "knee (cores)"; "Th@knee (Mpps)"; "Lat@knee (us)" ]
        rows)
    Nicsim.Profiles.all;
  print_endline
    "\nA schedule tuned for the Agilio (many wimpy cores) is wrong for a\nBlueField-like part (few fast cores) — the reason Clara retrains its\ncost models per platform (§6)."
