(** Quickstart: train Clara and analyze one unported NF.

    Run with: dune exec examples/quickstart.exe

    This is the paper's headline workflow (Figure 2): take a legacy Click
    element that has never been ported, and produce offloading insights —
    predicted performance parameters plus porting strategies — without
    touching the (simulated) SmartNIC. *)

let () =
  print_endline "== Clara quickstart ==";
  print_endline "Training Clara's models on synthesized NF programs (quick mode)...";
  let models = Clara.Pipeline.train ~quick:true () in
  (* The NF under study: the Mazu-NAT element, unported. *)
  let nat = Nf_lang.Corpus.find "Mazu-NAT" in
  Printf.printf "\nUnported input (%d LoC of Click-style source):\n\n" (Nf_lang.Pp.loc nat);
  (* show the first lines of the element source *)
  let lines = String.split_on_char '\n' (Nf_lang.Pp.to_string nat) in
  List.iteri (fun k line -> if k < 12 then print_endline ("  " ^ line)) lines;
  Printf.printf "  ... (%d more lines)\n\n" (max 0 (List.length lines - 12));
  (* analyze under a mixed workload *)
  let spec =
    { Workload.default with Workload.n_packets = 600; Workload.proto = Workload.Mixed }
  in
  print_endline (Clara.Pipeline.report models nat spec);
  (* validate the prediction against the "hardware" ground truth *)
  let wmape = Clara.Predictor.wmape_on_element models.Clara.Pipeline.predictor nat in
  let mem_acc = Clara.Predictor.memory_accuracy nat in
  Printf.printf
    "\nValidation against the NIC compiler: per-block compute WMAPE %.1f%%, memory-count accuracy %.1f%%\n"
    (100.0 *. wmape) (100.0 *. mem_acc)
